"""Unit tests for the chunked parallel mapping helper."""

import os
import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.kernels.parallel import (
    available_cpus,
    parallel_map_chunks,
    resolve_n_jobs,
)


class TestResolveNJobs:
    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    def test_minus_one_means_cpu_count(self):
        assert resolve_n_jobs(-1) >= 1

    def test_minus_one_respects_affinity(self):
        """-1 must track the scheduler mask (cgroup/affinity aware), not
        the raw machine CPU count."""
        if hasattr(os, "sched_getaffinity"):
            assert resolve_n_jobs(-1) == len(os.sched_getaffinity(0))
        else:  # pragma: no cover - non-Linux fallback
            assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_available_cpus_bounded_by_machine(self):
        assert 1 <= available_cpus() <= max(1, os.cpu_count() or 1)

    def test_available_cpus_memoized(self, monkeypatch):
        """The count is sampled once per process: DatasetStats.cpus
        reads it on every plan-cache miss, so the syscall must not be
        repeated.  refresh=True re-samples after an affinity change."""
        import repro.kernels.parallel as parallel

        truth = available_cpus(refresh=True)

        def boom(pid):  # pragma: no cover - must never be called
            raise AssertionError("affinity re-sampled despite memoization")

        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(os, "sched_getaffinity", boom)
        monkeypatch.setattr(os, "cpu_count", boom)
        assert available_cpus() == truth  # served from the cache

        monkeypatch.setattr(parallel, "_CPU_CACHE", None)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(
                os, "sched_getaffinity", lambda pid: {0, 1, 2}
            )
        assert available_cpus() == 3
        assert parallel._CPU_CACHE == 3
        monkeypatch.undo()
        assert available_cpus(refresh=True) == truth

    @pytest.mark.parametrize("bad", [0, -2, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(InvalidParameterError):
            resolve_n_jobs(bad)


class TestParallelMapChunks:
    def test_sequential_path_preserves_order(self):
        assert parallel_map_chunks(lambda x: x * x, range(10), n_jobs=1) == [
            x * x for x in range(10)
        ]

    def test_parallel_path_preserves_order(self):
        items = list(range(37))
        assert parallel_map_chunks(lambda x: x + 1, items, n_jobs=4) == [
            x + 1 for x in items
        ]

    def test_explicit_chunk_size(self):
        items = list(range(10))
        assert parallel_map_chunks(
            lambda x: -x, items, n_jobs=3, chunk_size=4
        ) == [-x for x in items]

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(InvalidParameterError):
            parallel_map_chunks(lambda x: x, [1, 2], n_jobs=2, chunk_size=0)

    def test_empty_and_singleton_inputs(self):
        assert parallel_map_chunks(lambda x: x, [], n_jobs=4) == []
        assert parallel_map_chunks(lambda x: x, [5], n_jobs=4) == [5]

    def test_actually_uses_worker_threads(self):
        seen: set[str] = set()
        barrier = threading.Barrier(2, timeout=10)

        def record(x):
            seen.add(threading.current_thread().name)
            if x < 2:
                barrier.wait()
            return x

        parallel_map_chunks(record, range(8), n_jobs=2, chunk_size=1)
        assert len(seen) >= 2

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError("kernel worker failure")

        with pytest.raises(ValueError, match="kernel worker failure"):
            parallel_map_chunks(boom, range(4), n_jobs=2)
