"""Unit tests for the blocked batch membership kernels."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.kernels.membership import (
    AUTO_BLOCK_BYTES,
    auto_block_size,
    batch_lambda_counts,
    batch_verify_membership,
    batch_window_membership,
    resolve_block_size,
)


@pytest.fixture()
def small():
    pts = np.array(
        [[5, 30], [7.5, 42], [2.5, 70], [7.5, 90], [24, 20], [20, 50], [26, 70], [16, 80]],
        dtype=np.float64,
    )
    q = np.array([8.5, 55.0])
    return pts, q


class TestBatchWindowMembership:
    def test_empty_products_means_all_members(self, small):
        _pts, q = small
        custs = np.array([[1.0, 2.0], [3.0, 4.0]])
        mask = batch_window_membership(np.empty((0, 2)), custs, q)
        assert mask.tolist() == [True, True]

    def test_empty_customers(self, small):
        pts, q = small
        mask = batch_window_membership(pts, np.empty((0, 2)), q)
        assert mask.shape == (0,)

    def test_monochromatic_matches_paper_example(self, small):
        pts, q = small
        mask = batch_window_membership(
            pts,
            pts,
            q,
            DominancePolicy.STRICT,
            self_positions=np.arange(len(pts), dtype=np.int64),
        )
        # Fig. 1: customer 0 is the why-not point, most others are members.
        assert mask.dtype == bool and mask.shape == (8,)
        assert not mask[0]

    def test_self_exclusion_subset_semantics(self, small):
        """Verifying a candidate subset excludes each candidate's own row."""
        pts, q = small
        cand = np.array([1, 4, 6], dtype=np.int64)
        sub = batch_window_membership(
            pts, pts[cand], q, self_positions=cand
        )
        full = batch_window_membership(
            pts, pts, q, self_positions=np.arange(len(pts), dtype=np.int64)
        )
        assert np.array_equal(sub, full[cand])

    def test_block_size_is_execution_detail(self, small):
        pts, q = small
        reference = batch_window_membership(pts, pts, q)
        for bs in (1, 2, 3, 8, 100):
            assert np.array_equal(
                batch_window_membership(pts, pts, q, block_size=bs), reference
            )

    def test_rejects_bad_block_size(self, small):
        pts, q = small
        with pytest.raises(InvalidParameterError):
            batch_window_membership(pts, pts, q, block_size=0)

    def test_rejects_bad_self_positions(self, small):
        pts, q = small
        with pytest.raises(InvalidParameterError):
            batch_window_membership(
                pts, pts, q, self_positions=np.array([0], dtype=np.int64)
            )
        with pytest.raises(InvalidParameterError):
            batch_window_membership(
                pts,
                pts,
                q,
                self_positions=np.full(len(pts), len(pts), dtype=np.int64),
            )


class TestBatchLambdaCounts:
    def test_zero_count_iff_member(self, small):
        pts, q = small
        sp = np.arange(len(pts), dtype=np.int64)
        counts = batch_lambda_counts(pts, pts, q, self_positions=sp)
        mask = batch_window_membership(pts, pts, q, self_positions=sp)
        assert np.array_equal(counts == 0, mask)

    def test_counts_without_exclusion_include_self_windows(self, small):
        pts, q = small
        plain = batch_lambda_counts(pts, pts, q)
        sp = np.arange(len(pts), dtype=np.int64)
        excluded = batch_lambda_counts(pts, pts, q, self_positions=sp)
        assert np.all(plain >= excluded)

    def test_empty_inputs(self, small):
        pts, q = small
        assert batch_lambda_counts(np.empty((0, 2)), pts, q).tolist() == [0] * 8
        assert batch_lambda_counts(pts, np.empty((0, 2)), q).shape == (0,)


class TestBatchVerifyMembership:
    def test_boundary_candidate_forgiven_under_tolerance(self):
        """A product half an ulp inside the window boundary blocks under
        WEAK's exact test but not under the verification slack."""
        pts = np.array([[1.0 - 5e-13, 1.0]])
        cust = np.array([[0.0, 0.0]])
        q = np.array([1.0, 1.0])
        exact = batch_window_membership(pts, cust, q, DominancePolicy.WEAK)
        tolerant = batch_verify_membership(pts, cust, q, DominancePolicy.WEAK)
        assert not exact[0]
        assert tolerant[0]


class TestAutoBlockSize:
    def test_low_dims_pick_512(self):
        for d in (2, 3, 4):
            assert auto_block_size(d) == 512

    def test_mid_dims_pick_256(self):
        for d in (5, 6, 7, 8):
            assert auto_block_size(d) == 256

    def test_floor_and_cap(self):
        # Very wide rows still get a usable tile, and the result can
        # never exceed the dispatch-amortisation cap.
        assert auto_block_size(10_000) == 128
        for d in range(1, 64):
            assert 128 <= auto_block_size(d) <= 2048

    def test_power_of_two(self):
        for d in range(1, 32):
            width = auto_block_size(d)
            assert width & (width - 1) == 0

    def test_working_set_fits_budget(self):
        # The per-cell byte model times the chosen width squared must
        # stay within the target (that is the whole point).
        for d in range(2, 16):
            width = auto_block_size(d)
            per_cell = 11 + 2 * max(0, d - 2)
            assert width * width * per_cell <= AUTO_BLOCK_BYTES

    def test_rejects_bad_dim(self):
        with pytest.raises(InvalidParameterError):
            auto_block_size(0)

    def test_resolve_passthrough_and_auto(self):
        assert resolve_block_size(64, 2) == 64
        assert resolve_block_size(None, 2) == auto_block_size(2)
        assert resolve_block_size(None, 6) == auto_block_size(6)

    def test_block_size_does_not_change_results(self):
        rng = np.random.default_rng(17)
        products = rng.random((40, 2))
        customers = rng.random((30, 2))
        q = np.array([0.5, 0.5])
        auto = batch_window_membership(
            products, customers, q, block_size=resolve_block_size(None, 2)
        )
        tiny = batch_window_membership(products, customers, q, block_size=3)
        np.testing.assert_array_equal(auto, tiny)
