"""Tests for the figure builders over the worked example."""

import xml.dom.minidom

import pytest

from repro.viz.figures import (
    render_modification_figure,
    render_safe_region_figure,
    render_scene_figure,
    render_window_figure,
)


def well_formed(scene) -> str:
    svg = scene.render()
    xml.dom.minidom.parseString(svg)
    return svg


class TestFigureBuilders:
    def test_scene_figure(self, paper_engine, paper_q):
        svg = well_formed(render_scene_figure(paper_engine, paper_q))
        assert "RSL(q)" in svg
        assert "query q" in svg

    def test_window_figure_shows_culprits(self, paper_engine, paper_q):
        svg = well_formed(render_window_figure(paper_engine, 0, paper_q))
        assert "culprits" in svg
        assert "window" in svg

    def test_window_figure_member_has_no_culprits(self, paper_engine, paper_q):
        svg = well_formed(render_window_figure(paper_engine, 1, paper_q))
        assert "culprits" not in svg

    def test_safe_region_figure(self, paper_engine, paper_q):
        svg = well_formed(render_safe_region_figure(paper_engine, paper_q))
        assert "SR(q)" in svg

    def test_safe_region_with_why_not_overlay(self, paper_engine, paper_q):
        svg = well_formed(
            render_safe_region_figure(paper_engine, paper_q, why_not=6)
        )
        assert "anti-dominance" in svg

    def test_approximate_safe_region(self, paper_engine, paper_q):
        svg = well_formed(
            render_safe_region_figure(
                paper_engine, paper_q, approximate=True, k=2
            )
        )
        assert "Approximate" in svg

    @pytest.mark.parametrize("method", ["mwp", "mqp", "mwq"])
    def test_modification_figures(self, paper_engine, paper_q, method):
        svg = well_formed(
            render_modification_figure(paper_engine, 0, paper_q, method=method)
        )
        assert "why-not point" in svg

    def test_unknown_method_rejected(self, paper_engine, paper_q):
        with pytest.raises(ValueError):
            render_modification_figure(paper_engine, 0, paper_q, method="zap")

    def test_mwq_zero_cost_arrow(self, paper_engine, paper_q):
        svg = well_formed(
            render_modification_figure(paper_engine, 0, paper_q, method="mwq")
        )
        assert "zero cost" in svg
