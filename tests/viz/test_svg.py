"""Tests for the SVG builder."""

import xml.dom.minidom

import pytest

from repro.viz.svg import SvgDocument, _fmt


def parse(doc: SvgDocument):
    return xml.dom.minidom.parseString(doc.render())


class TestFormatting:
    def test_fmt_strips_trailing_zeros(self):
        assert _fmt(1.500) == "1.5"
        assert _fmt(2.0) == "2"
        assert _fmt(0.0) == "0"

    def test_fmt_keeps_precision(self):
        assert _fmt(0.123) == "0.123"


class TestPrimitives:
    def test_document_well_formed(self):
        doc = SvgDocument(100, 80)
        doc.rect(1, 2, 3, 4)
        doc.circle(10, 10, 5)
        doc.line(0, 0, 5, 5)
        doc.polyline([(0, 0), (1, 1), (2, 0)])
        doc.text(3, 3, "hello <world> & 'friends'")
        doc.arrow(0, 0, 20, 20)
        parse(doc)  # Raises on malformed XML.

    def test_escaping(self):
        doc = SvgDocument(10, 10)
        doc.text(0, 0, "<&>")
        svg = doc.render()
        assert "<&>" not in svg
        assert "&lt;&amp;&gt;" in svg

    def test_background(self):
        doc = SvgDocument(10, 10, background="#abc")
        assert "#abc" in doc.render()
        bare = SvgDocument(10, 10, background=None)
        assert "#abc" not in bare.render()

    def test_negative_sizes_clamped(self):
        doc = SvgDocument(10, 10)
        doc.rect(0, 0, -5, -5)
        dom = parse(doc)
        rects = dom.getElementsByTagName("rect")
        assert rects[-1].getAttribute("width") == "0"

    def test_dash_attribute(self):
        doc = SvgDocument(10, 10)
        doc.rect(0, 0, 5, 5, dash="3,2")
        assert 'stroke-dasharray="3,2"' in doc.render()

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        path = tmp_path / "t.svg"
        doc.save(str(path))
        assert path.read_text().startswith("<?xml")

    def test_viewbox_matches_size(self):
        doc = SvgDocument(123, 45)
        assert 'viewBox="0 0 123 45"' in doc.render()
