"""Tests for the data-space plot scenes."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.region import BoxRegion
from repro.viz.scene import PlotScene


def unit_scene(**kwargs):
    return PlotScene(Box([0, 0], [10, 10]), **kwargs)


class TestMapping:
    def test_corners_map_to_plot_frame(self):
        scene = unit_scene(width=500, height=400, margin=50)
        assert scene.to_px([0, 0]) == (50.0, 350.0)   # Bottom-left.
        assert scene.to_px([10, 10]) == (450.0, 50.0)  # Top-right.

    def test_y_axis_flipped(self):
        scene = unit_scene()
        _x, y_low = scene.to_px([5, 0])
        _x, y_high = scene.to_px([5, 10])
        assert y_low > y_high

    def test_rejects_3d_bounds(self):
        with pytest.raises(InvalidParameterError):
            PlotScene(Box([0, 0, 0], [1, 1, 1]))

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(InvalidParameterError):
            PlotScene(Box([0, 0], [0, 1]))


class TestDrawing:
    def test_full_scene_well_formed(self):
        scene = unit_scene(title="demo", labels=("price", "mileage"))
        scene.add_points(np.array([[1, 1], [2, 3]]), label="pts",
                         names=["a", "b"])
        scene.add_marker([5, 5], label="q", name="q")
        scene.add_box(Box([1, 1], [4, 4]), label="window")
        scene.add_region(
            BoxRegion([Box([6, 6], [8, 8]), Box([7, 1], [9, 3])]),
            label="region",
        )
        scene.add_staircase(np.array([[1, 8], [4, 4], [8, 1]]), label="sky")
        scene.add_movement([5, 5], [7, 7], label="move")
        xml.dom.minidom.parseString(scene.render())

    def test_out_of_bounds_box_clipped(self):
        scene = unit_scene()
        scene.add_box(Box([-5, -5], [20, 20]))
        scene.add_box(Box([50, 50], [60, 60]))  # Fully outside: skipped.
        xml.dom.minidom.parseString(scene.render())

    def test_empty_staircase_no_crash(self):
        scene = unit_scene()
        scene.add_staircase(np.empty((0, 2)))
        xml.dom.minidom.parseString(scene.render())

    def test_legend_deduplicates(self):
        scene = unit_scene()
        scene.add_points(np.array([[1, 1]]), label="pts")
        scene.add_points(np.array([[2, 2]]), label="pts")
        svg = scene.render()
        assert svg.count(">pts<") == 1

    def test_title_rendered(self):
        scene = unit_scene(title="My Figure")
        assert "My Figure" in scene.render()

    def test_save(self, tmp_path):
        scene = unit_scene()
        path = tmp_path / "scene.svg"
        scene.save(str(path))
        assert path.read_text().startswith("<?xml")
