"""Failure injection and degenerate-input robustness across the API.

Every public entry point must either handle the input or raise a typed
library error — never a bare numpy error or a silent wrong answer.
"""

import numpy as np
import pytest

from repro import (
    Box,
    DominancePolicy,
    ScanIndex,
    WhyNotConfig,
    WhyNotEngine,
)
from repro.exceptions import (
    DimensionMismatchError,
    InvalidParameterError,
    ReproError,
)


class TestMalformedInput:
    def test_nan_products_rejected(self):
        with pytest.raises(ReproError):
            WhyNotEngine(np.array([[1.0, float("nan")]]))

    def test_inf_query_rejected(self):
        engine = WhyNotEngine(np.array([[1.0, 2.0]]))
        with pytest.raises(ReproError):
            engine.reverse_skyline([float("inf"), 0.0])

    def test_wrong_dim_query_rejected(self):
        engine = WhyNotEngine(np.array([[1.0, 2.0]]))
        with pytest.raises(DimensionMismatchError):
            engine.reverse_skyline([1.0, 2.0, 3.0])

    def test_wrong_dim_customers_rejected(self):
        with pytest.raises(DimensionMismatchError):
            WhyNotEngine(
                np.array([[1.0, 2.0]]), customers=np.array([[1.0, 2.0, 3.0]])
            )

    def test_string_points_rejected(self):
        with pytest.raises(Exception):
            WhyNotEngine(np.array([["a", "b"]]))

    def test_negative_k_rejected(self):
        engine = WhyNotEngine(np.array([[1.0, 2.0], [3.0, 4.0]]))
        with pytest.raises(InvalidParameterError):
            engine.approx_store(k=-1)


class TestDegenerateData:
    def test_single_product_universe(self):
        engine = WhyNotEngine(np.array([[5.0, 5.0]]))
        q = np.array([5.0, 5.0])
        rsl = engine.reverse_skyline(q)
        assert rsl.size <= 1
        sr = engine.safe_region(q)
        assert sr.contains(q)

    def test_all_identical_points(self):
        pts = np.tile([[2.0, 2.0]], (20, 1))
        engine = WhyNotEngine(pts, backend="scan")
        q = np.array([2.0, 2.0])
        # Every co-located customer ties the (degenerate) window: all members.
        assert engine.reverse_skyline(q).size == 20
        result = engine.modify_both(0, q)
        assert result.cost == 0.0

    def test_collinear_points(self):
        pts = np.column_stack([np.linspace(0, 1, 30), np.full(30, 0.5)])
        engine = WhyNotEngine(pts, backend="scan")
        q = np.array([0.52, 0.5])
        rsl = engine.reverse_skyline(q)
        for j in range(30):
            assert engine.is_member(j, q) == (j in set(rsl.tolist()))

    def test_query_equal_to_why_not_point(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(30, 2))
        engine = WhyNotEngine(pts, backend="scan")
        q = pts[3].copy()
        # The why-not point at distance zero has a degenerate window:
        # always a member; all methods must short-circuit.
        assert engine.is_member(3, q)
        assert engine.explain(3, q).is_member
        assert engine.modify_both(3, q).cost == 0.0

    def test_extreme_coordinate_magnitudes(self):
        pts = np.array([[1e12, 1e-12], [2e12, 2e-12], [3e12, 3e-12]])
        engine = WhyNotEngine(pts, backend="scan")
        q = np.array([1.5e12, 1.5e-12])
        rsl = engine.reverse_skyline(q)
        assert rsl.size >= 0  # No overflow / crash.
        sr = engine.safe_region(q)
        assert sr.contains(q)

    def test_negative_coordinates(self):
        pts = np.random.default_rng(1).uniform(-100, -50, size=(40, 2))
        engine = WhyNotEngine(pts, backend="scan")
        q = np.array([-75.0, -75.0])
        members = engine.reverse_skyline(q)
        for j in members.tolist():
            assert engine.is_member(j, q)

    def test_zero_range_dimension(self):
        """One constant attribute: normalisation and regions survive."""
        rng = np.random.default_rng(2)
        pts = np.column_stack([rng.uniform(0, 1, 25), np.full(25, 7.0)])
        engine = WhyNotEngine(pts, backend="scan")
        q = np.array([0.5, 7.0])
        engine.reverse_skyline(q)
        sr = engine.safe_region(q)
        assert sr.contains(q)
        cost = engine.why_not_movement_cost([0.1, 7.0], [0.2, 7.0])
        assert np.isfinite(cost)


class TestPolicyConsistency:
    def test_strict_membership_superset_of_weak(self):
        """Anything in the WEAK reverse skyline is in the STRICT one
        (strict exclusion is harder to trigger)."""
        rng = np.random.default_rng(3)
        pts = np.round(rng.uniform(0, 1, size=(40, 2)) * 8) / 8
        q = np.round(rng.uniform(0, 1, size=2) * 8) / 8
        weak = WhyNotEngine(
            pts, backend="scan", config=WhyNotConfig(policy=DominancePolicy.WEAK)
        )
        strict = WhyNotEngine(
            pts, backend="scan",
            config=WhyNotConfig(policy=DominancePolicy.STRICT),
        )
        weak_members = set(weak.reverse_skyline(q).tolist())
        strict_members = set(strict.reverse_skyline(q).tolist())
        assert weak_members <= strict_members

    def test_verification_disabled(self):
        pts = np.random.default_rng(4).uniform(0, 1, size=(30, 2))
        engine = WhyNotEngine(
            pts, backend="scan", config=WhyNotConfig(verify=False)
        )
        q = np.array([0.5, 0.5])
        for j in range(30):
            if not engine.is_member(j, q):
                result = engine.modify_why_not_point(j, q)
                if not result.is_noop:
                    assert all(c.verified is None for c in result.candidates)
                break


class TestBoxRobustness:
    def test_box_from_nan_rejected(self):
        with pytest.raises(ReproError):
            Box([0.0, float("nan")], [1.0, 1.0])

    def test_scan_index_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ScanIndex(np.zeros((2, 2, 2)))
