"""Tests for the simulated CarDB generator (the Yahoo! Autos substitute)."""

import numpy as np
import pytest

from repro.data.cardb import MILEAGE_RANGE, PRICE_RANGE, generate_cardb
from repro.exceptions import InvalidParameterError


class TestShape:
    def test_two_attributes(self):
        ds = generate_cardb(500, seed=0)
        assert ds.dim == 2
        assert ds.labels == ("price", "mileage")

    def test_values_in_declared_ranges(self):
        ds = generate_cardb(5000, seed=1)
        prices = ds.points[:, 0]
        mileages = ds.points[:, 1]
        assert prices.min() >= PRICE_RANGE[0]
        assert prices.max() <= PRICE_RANGE[1]
        assert mileages.min() >= MILEAGE_RANGE[0]
        assert mileages.max() <= MILEAGE_RANGE[1]

    def test_deterministic(self):
        a = generate_cardb(200, seed=2)
        b = generate_cardb(200, seed=2)
        assert np.array_equal(a.points, b.points)

    def test_name_format(self):
        assert generate_cardb(50_000).name == "CarDB-50K"
        assert generate_cardb(123).name == "CarDB-123"

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            generate_cardb(0)


class TestDistribution:
    def test_negative_price_mileage_correlation(self):
        """Cheap cars have more miles — the real-listing shape."""
        ds = generate_cardb(10_000, seed=3)
        r = np.corrcoef(np.log(ds.points[:, 0]), ds.points[:, 1])[0, 1]
        assert r < -0.4

    def test_heavy_right_tail_in_price(self):
        ds = generate_cardb(10_000, seed=4)
        prices = ds.points[:, 0]
        assert np.mean(prices) > np.median(prices)  # Right skew.

    def test_sparse_clusters(self):
        """The paper notes CarDB is sparse: density varies wildly across
        equal-width price bands (unlike uniform data)."""
        ds = generate_cardb(10_000, seed=5)
        prices = ds.points[:, 0]
        hist, _ = np.histogram(prices, bins=30, range=PRICE_RANGE)
        assert hist.max() > 10 * max(1, hist[hist > 0].min())

    def test_reverse_skylines_in_paper_range(self):
        """Queries over the simulated CarDB produce the small reverse
        skylines (roughly 1-15) the paper's protocol needs."""
        from repro.core.engine import WhyNotEngine

        ds = generate_cardb(2000, seed=6)
        engine = WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)
        rng = np.random.default_rng(0)
        sizes = []
        for _ in range(30):
            anchor = ds.points[int(rng.integers(0, ds.size))]
            q = anchor * rng.uniform(0.95, 1.05, size=2)
            q = np.clip(q, ds.bounds.lo, ds.bounds.hi)
            sizes.append(engine.reverse_skyline(q).size)
        assert min(sizes) <= 15
        assert np.median(sizes) <= 40
