"""Tests for the synthetic generators (UN / CO / AC)."""

import numpy as np
import pytest

from repro.data.synthetic import (
    generate_anticorrelated,
    generate_correlated,
    generate_uniform,
)
from repro.exceptions import InvalidParameterError
from repro.skyline.algorithms import skyline_indices


class TestCommonProperties:
    @pytest.mark.parametrize(
        "generator", [generate_uniform, generate_correlated, generate_anticorrelated]
    )
    def test_in_unit_cube(self, generator):
        ds = generator(2000, seed=1)
        assert np.all(ds.points >= 0.0)
        assert np.all(ds.points <= 1.0)

    @pytest.mark.parametrize(
        "generator", [generate_uniform, generate_correlated, generate_anticorrelated]
    )
    def test_deterministic(self, generator):
        a = generator(100, seed=5)
        b = generator(100, seed=5)
        assert np.array_equal(a.points, b.points)

    @pytest.mark.parametrize(
        "generator", [generate_uniform, generate_correlated, generate_anticorrelated]
    )
    def test_seed_changes_data(self, generator):
        a = generator(100, seed=5)
        b = generator(100, seed=6)
        assert not np.array_equal(a.points, b.points)

    @pytest.mark.parametrize(
        "generator", [generate_uniform, generate_correlated, generate_anticorrelated]
    )
    def test_dimension_parameter(self, generator):
        ds = generator(50, dim=4, seed=0)
        assert ds.dim == 4

    @pytest.mark.parametrize(
        "generator", [generate_uniform, generate_correlated, generate_anticorrelated]
    )
    def test_invalid_sizes(self, generator):
        with pytest.raises(InvalidParameterError):
            generator(0)
        with pytest.raises(InvalidParameterError):
            generator(10, dim=1)


class TestDistributionShapes:
    def test_correlation_signs(self):
        co = generate_correlated(5000, seed=2)
        ac = generate_anticorrelated(5000, seed=2)
        un = generate_uniform(5000, seed=2)
        r_co = np.corrcoef(co.points.T)[0, 1]
        r_ac = np.corrcoef(ac.points.T)[0, 1]
        r_un = np.corrcoef(un.points.T)[0, 1]
        assert r_co > 0.5
        assert r_ac < -0.3
        assert abs(r_un) < 0.1

    def test_skyline_size_ordering(self):
        """The defining property |SK(CO)| < |SK(UN)| < |SK(AC)| — tested
        in 4-D where the separation is decisive (2-D skylines are all
        O(log n) and too noisy to order reliably)."""
        sizes = {}
        for name, gen in [
            ("CO", generate_correlated),
            ("UN", generate_uniform),
            ("AC", generate_anticorrelated),
        ]:
            ds = gen(3000, dim=4, seed=3)
            sizes[name] = skyline_indices(ds.points).size
        assert sizes["CO"] < sizes["UN"] < sizes["AC"]

    def test_anticorrelated_dominates_in_2d_too(self):
        sizes = {}
        for name, gen in [
            ("CO", generate_correlated),
            ("UN", generate_uniform),
            ("AC", generate_anticorrelated),
        ]:
            ds = gen(5000, seed=3)
            sizes[name] = skyline_indices(ds.points).size
        assert sizes["AC"] > 2 * max(sizes["CO"], sizes["UN"])

    def test_names_carry_size(self):
        assert generate_uniform(100).name == "UN-100"
        assert generate_correlated(100).name == "CO-100"
        assert generate_anticorrelated(100).name == "AC-100"
