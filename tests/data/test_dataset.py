"""Tests for the Dataset wrapper."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.box import Box


class TestConstruction:
    def test_basic(self):
        ds = Dataset("t", np.array([[1.0, 2.0]]), Box([0, 0], [5, 5]))
        assert ds.size == 1
        assert ds.dim == 2

    def test_points_frozen(self):
        ds = Dataset("t", np.array([[1.0, 2.0]]), Box([0, 0], [5, 5]))
        with pytest.raises(ValueError):
            ds.points[0, 0] = 9.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            Dataset("t", np.empty((0, 2)), Box([0, 0], [1, 1]))

    def test_bounds_dim_checked(self):
        with pytest.raises(InvalidParameterError):
            Dataset("t", np.array([[1.0, 2.0]]), Box([0], [5]))

    def test_labels_length_checked(self):
        with pytest.raises(InvalidParameterError):
            Dataset(
                "t", np.array([[1.0, 2.0]]), Box([0, 0], [5, 5]), labels=("x",)
            )

    def test_from_points_bounds(self):
        ds = Dataset.from_points("t", np.array([[0.0, 10.0], [4.0, 20.0]]))
        assert ds.bounds.lo.tolist() == [0.0, 10.0]
        assert ds.bounds.hi.tolist() == [4.0, 20.0]

    def test_from_points_padding(self):
        ds = Dataset.from_points("t", np.array([[0.0, 0.0], [10.0, 10.0]]), pad=0.1)
        assert ds.bounds.lo.tolist() == [-1.0, -1.0]
        assert ds.bounds.hi.tolist() == [11.0, 11.0]

    def test_repr(self):
        ds = Dataset.from_points("cars", np.array([[1.0, 2.0]]))
        assert "cars" in repr(ds)


class TestOperations:
    def test_sample_positions_unique(self):
        ds = Dataset.from_points("t", np.random.default_rng(0).uniform(0, 1, (50, 2)))
        positions = ds.sample_positions(np.random.default_rng(1), 20)
        assert len(set(positions.tolist())) == 20

    def test_sample_capped(self):
        ds = Dataset.from_points("t", np.random.default_rng(0).uniform(0, 1, (5, 2)))
        assert ds.sample_positions(np.random.default_rng(1), 100).size == 5

    def test_subset_keeps_bounds(self):
        ds = Dataset.from_points("t", np.random.default_rng(0).uniform(0, 1, (10, 2)))
        sub = ds.subset([0, 3, 5])
        assert sub.size == 3
        assert sub.bounds == ds.bounds
        assert "subset" in sub.name
