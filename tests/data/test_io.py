"""Tests for dataset / result persistence."""

import numpy as np
import pytest

from repro.data.cardb import generate_cardb
from repro.data.io import (
    load_dataset_csv,
    load_dataset_npz,
    load_results_json,
    save_dataset_csv,
    save_dataset_npz,
    save_results_json,
)
from repro.exceptions import InvalidParameterError
from repro.experiments.records import ApproxOutcome, DatasetResult, QueryRecord


@pytest.fixture()
def dataset():
    return generate_cardb(50, seed=0)


class TestNpzRoundTrip:
    def test_exact(self, dataset, tmp_path):
        path = tmp_path / "cars.npz"
        save_dataset_npz(dataset, path)
        loaded = load_dataset_npz(path)
        assert loaded.name == dataset.name
        assert np.array_equal(loaded.points, dataset.points)
        assert loaded.bounds == dataset.bounds
        assert loaded.labels == dataset.labels


class TestCsvRoundTrip:
    def test_values_preserved(self, dataset, tmp_path):
        path = tmp_path / "cars.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path, name="cars")
        assert loaded.labels == dataset.labels
        assert np.allclose(loaded.points, dataset.points)

    def test_default_labels(self, tmp_path):
        from repro.data.dataset import Dataset

        ds = Dataset.from_points("t", np.array([[1.0, 2.0]]))
        path = tmp_path / "t.csv"
        save_dataset_csv(ds, path)
        loaded = load_dataset_csv(path)
        assert loaded.labels == ("dim0", "dim1")
        assert loaded.name == "t"

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(InvalidParameterError):
            load_dataset_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(InvalidParameterError):
            load_dataset_csv(path)

    def test_padding(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("a,b\n0,0\n10,10\n")
        loaded = load_dataset_csv(path, pad=0.1)
        assert loaded.bounds.lo.tolist() == [-1.0, -1.0]


class TestResultsJson:
    def make_result(self):
        record = QueryRecord(
            dataset="D",
            rsl_size=3,
            query=np.array([1.0, 2.0]),
            why_not_position=7,
            mwp_cost=0.5,
            mqp_cost=0.9,
            mwq_cost=0.4,
            mwq_case="C2",
            sr_time=1.25,
            sr_area=0.01,
            sr_boxes=4,
        )
        record.approx[10] = ApproxOutcome(
            k=10, cost=0.45, sr_time=0.1, mwq_time=0.05, sr_area=0.005
        )
        result = DatasetResult(dataset="D", size=100)
        result.records.append(record)
        return result

    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        original = self.make_result()
        save_results_json([original], path)
        loaded = load_results_json(path)
        assert len(loaded) == 1
        record = loaded[0].records[0]
        assert record.dataset == "D"
        assert record.rsl_size == 3
        assert record.query.tolist() == [1.0, 2.0]
        assert record.mwq_case == "C2"
        assert record.approx[10].cost == 0.45
        assert record.mwq_total_time == pytest.approx(1.25)

    def test_nan_costs_survive(self, tmp_path):
        result = self.make_result()
        result.records[0].mwp_cost = float("nan")
        path = tmp_path / "nan.json"
        save_results_json([result], path)
        loaded = load_results_json(path)
        assert np.isnan(loaded[0].records[0].mwp_cost)
