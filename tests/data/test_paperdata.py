"""Tests for the paper's worked-example dataset."""

import numpy as np

from repro.data.paperdata import (
    PT1,
    PT2,
    paper_dataset,
    paper_points,
    paper_query,
)


class TestPaperData:
    def test_eight_points(self):
        assert paper_points().shape == (8, 2)

    def test_table_values(self):
        pts = paper_points()
        assert pts[0].tolist() == [5.0, 30.0]
        assert pts[7].tolist() == [16.0, 80.0]
        assert PT1.tolist() == [5.0, 30.0]
        assert PT2.tolist() == [7.5, 42.0]

    def test_query(self):
        assert paper_query().tolist() == [8.5, 55.0]

    def test_dataset_wrapper(self):
        ds = paper_dataset()
        assert ds.size == 8
        assert ds.labels == ("price", "mileage")
        assert ds.bounds.contains_point(paper_query())
        for p in ds.points:
            assert ds.bounds.contains_point(p)

    def test_fresh_copies(self):
        a = paper_points()
        b = paper_points()
        assert a is not b
        assert np.array_equal(a, b)
