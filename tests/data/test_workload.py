"""Tests for the experiment workload builder."""

import numpy as np
import pytest

from repro.core.engine import WhyNotEngine
from repro.data.synthetic import generate_uniform
from repro.data.workload import WhyNotQuery, build_workload
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def engine():
    ds = generate_uniform(800, seed=0)
    return WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)


class TestBuildWorkload:
    def test_queries_hit_requested_sizes(self, engine):
        workload = build_workload(engine, targets=(1, 2, 3), seed=1)
        sizes = {wq.rsl_size for wq in workload}
        assert sizes <= {1, 2, 3}
        assert len(sizes) >= 2  # Uniform data produces small RSLs readily.

    def test_sorted_by_rsl_size(self, engine):
        workload = build_workload(engine, targets=(1, 2, 3, 4), seed=2)
        sizes = [wq.rsl_size for wq in workload]
        assert sizes == sorted(sizes)

    def test_deterministic(self, engine):
        a = build_workload(engine, targets=(1, 2), seed=3)
        b = build_workload(engine, targets=(1, 2), seed=3)
        assert len(a) == len(b)
        for wa, wb in zip(a, b):
            assert np.array_equal(wa.query, wb.query)
            assert wa.why_not_position == wb.why_not_position

    def test_why_not_is_genuine_nonmember(self, engine):
        for wq in build_workload(engine, targets=(1, 2, 3), seed=4):
            assert wq.why_not_position not in set(wq.rsl_positions.tolist())
            explanation = engine.explain(wq.why_not_position, wq.query)
            assert not explanation.is_member

    def test_rsl_positions_accurate(self, engine):
        for wq in build_workload(engine, targets=(1, 2), seed=5):
            assert np.array_equal(
                wq.rsl_positions, engine.reverse_skyline(wq.query)
            )

    def test_queries_inside_bounds(self, engine):
        for wq in build_workload(engine, targets=(1, 2, 3), seed=6):
            assert engine.bounds.contains_point(wq.query)

    def test_invalid_targets(self, engine):
        with pytest.raises(InvalidParameterError):
            build_workload(engine, targets=())
        with pytest.raises(InvalidParameterError):
            build_workload(engine, targets=(-1,))

    def test_patience_stops_early(self, engine):
        # Size 500 is unreachable: patience must end the search quickly.
        workload = build_workload(
            engine, targets=(500,), seed=7, max_attempts=10_000, patience=50
        )
        assert workload == []

    def test_repr(self, engine):
        workload = build_workload(engine, targets=(1,), seed=8)
        if workload:
            assert "WhyNotQuery" in repr(workload[0])
