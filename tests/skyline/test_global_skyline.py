"""Tests for the BBRS global-skyline candidate pruning."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.index.scan import ScanIndex
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.reverse import reverse_skyline_naive


class TestSoundness:
    @pytest.mark.parametrize("policy", [DominancePolicy.WEAK, DominancePolicy.STRICT])
    def test_candidates_superset_of_rsl(self, policy):
        """Pruning must never drop a true member (under either policy)."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(3, 60))
            pts = np.round(rng.uniform(0, 1, size=(n, 2)) * 7) / 7
            q = np.round(rng.uniform(0, 1, size=2) * 7) / 7
            idx = ScanIndex(pts)
            members = set(
                reverse_skyline_naive(idx, pts, q, policy, self_exclude=True).tolist()
            )
            candidates = set(
                global_skyline_candidates(pts, pts, q, self_exclude=True).tolist()
            )
            assert members <= candidates

    def test_bichromatic_superset(self):
        rng = np.random.default_rng(1)
        prods = rng.uniform(0, 1, size=(40, 2))
        custs = rng.uniform(0, 1, size=(25, 2))
        q = rng.uniform(0, 1, size=2)
        idx = ScanIndex(prods)
        members = set(reverse_skyline_naive(idx, custs, q).tolist())
        candidates = set(global_skyline_candidates(prods, custs, q).tolist())
        assert members <= candidates


class TestPruningPower:
    def test_prunes_dominated_customers(self):
        # Customer far behind a product in the same orthant is pruned.
        q = np.array([0.0, 0.0])
        prods = np.array([[1.0, 1.0]])
        custs = np.array([[2.0, 2.0], [-2.0, 2.0]])
        kept = global_skyline_candidates(prods, custs, q)
        assert kept.tolist() == [1]  # Other orthant survives.

    def test_axis_aligned_blockers_do_not_prune(self):
        # Blockers on an axis hyperplane of q cannot prune (interior test).
        q = np.array([0.0, 0.0])
        prods = np.array([[0.0, 1.0]])
        custs = np.array([[1.0, 2.0]])
        assert global_skyline_candidates(prods, custs, q).tolist() == [0]

    def test_self_never_prunes_self(self):
        q = np.array([0.0, 0.0])
        pts = np.array([[1.0, 1.0], [3.0, 3.0]])
        kept = global_skyline_candidates(pts, pts, q, self_exclude=True)
        assert 0 in kept.tolist()

    def test_reduces_candidate_count_on_bulk_data(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(2000, 2))
        q = np.array([0.5, 0.5])
        kept = global_skyline_candidates(pts, pts, q, self_exclude=True)
        assert kept.size < 200  # Massive pruning on uniform data.


class TestEdgeCases:
    def test_no_customers(self):
        out = global_skyline_candidates(
            np.empty((0, 2)), np.empty((0, 2)), [0.0, 0.0]
        )
        assert out.size == 0

    def test_no_products_keeps_all(self):
        custs = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = global_skyline_candidates(np.empty((0, 2)), custs, [0.0, 0.0])
        assert out.tolist() == [0, 1]

    def test_output_sorted_unique(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(100, 2))
        out = global_skyline_candidates(pts, pts, [0.5, 0.5], self_exclude=True)
        assert np.array_equal(out, np.unique(out))
