"""Tests for reverse skylines: naive oracle, BBRS equivalence, paper RSL."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.data.paperdata import paper_points, paper_query
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex
from repro.skyline.reverse import (
    is_reverse_skyline_member,
    reverse_skyline_bbrs,
    reverse_skyline_naive,
)

WEAK = DominancePolicy.WEAK
STRICT = DominancePolicy.STRICT


class TestPaperReverseSkyline:
    def test_monochromatic_rsl(self):
        pts = paper_points()
        idx = ScanIndex(pts)
        rsl = reverse_skyline_naive(idx, pts, paper_query(), self_exclude=True)
        # {c2, c3, c4, c6, c8} -> positions {1, 2, 3, 5, 7}.
        assert rsl.tolist() == [1, 2, 3, 5, 7]

    def test_membership_helper(self):
        pts = paper_points()
        idx = ScanIndex(pts)
        assert is_reverse_skyline_member(
            idx, pts[1], paper_query(), exclude=(1,)
        )
        assert not is_reverse_skyline_member(
            idx, pts[0], paper_query(), exclude=(0,)
        )

    def test_bichromatic_split(self):
        # Products pt2-pt8, customer c1=pt1: c1 not in RSL(q) (Section II).
        pts = paper_points()
        idx = ScanIndex(pts[1:])
        rsl = reverse_skyline_naive(idx, pts[:1], paper_query())
        assert rsl.size == 0


class TestBBRSEquivalence:
    @pytest.mark.parametrize("policy", [WEAK, STRICT])
    @pytest.mark.parametrize("self_exclude", [True, False])
    def test_matches_naive_random(self, policy, self_exclude):
        rng = np.random.default_rng(4)
        for _ in range(40):
            n = int(rng.integers(3, 50))
            pts = np.round(rng.uniform(0, 1, size=(n, 2)) * 10) / 10
            q = np.round(rng.uniform(0, 1, size=2) * 10) / 10
            idx = ScanIndex(pts)
            customers = pts if self_exclude else rng.uniform(0, 1, size=(20, 2))
            naive = reverse_skyline_naive(
                idx, customers, q, policy, self_exclude=self_exclude
            )
            bbrs = reverse_skyline_bbrs(
                idx, customers, q, policy, self_exclude=self_exclude
            )
            assert np.array_equal(naive, bbrs)

    def test_matches_on_rtree(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(200, 2))
        q = rng.uniform(0, 1, size=2)
        tree = RTree(pts)
        scan = ScanIndex(pts)
        assert np.array_equal(
            reverse_skyline_bbrs(tree, pts, q, self_exclude=True),
            reverse_skyline_naive(scan, pts, q, self_exclude=True),
        )

    def test_3d(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 1, size=(60, 3))
        q = rng.uniform(0, 1, size=3)
        idx = ScanIndex(pts)
        assert np.array_equal(
            reverse_skyline_bbrs(idx, pts, q, self_exclude=True),
            reverse_skyline_naive(idx, pts, q, self_exclude=True),
        )


class TestValidation:
    def test_self_exclude_requires_same_matrix(self):
        pts = paper_points()
        idx = ScanIndex(pts)
        with pytest.raises(ValueError):
            reverse_skyline_naive(idx, pts[:3], paper_query(), self_exclude=True)
        with pytest.raises(ValueError):
            reverse_skyline_bbrs(idx, pts[:3], paper_query(), self_exclude=True)

    def test_empty_customers(self):
        idx = ScanIndex(paper_points())
        out = reverse_skyline_naive(idx, np.empty((0, 2)), paper_query())
        assert out.size == 0

    def test_query_far_outside_data(self):
        # A remote query is in every customer's dynamic skyline somewhere:
        # monochromatic RSL equals the customers whose windows are empty.
        pts = paper_points()
        idx = ScanIndex(pts)
        q = np.array([1000.0, 1000.0])
        naive = reverse_skyline_naive(idx, pts, q, self_exclude=True)
        bbrs = reverse_skyline_bbrs(idx, pts, q, self_exclude=True)
        assert np.array_equal(naive, bbrs)
