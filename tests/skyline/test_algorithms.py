"""Tests for skyline computation (2-D fast path and any-d SFS)."""

import numpy as np
import pytest

from repro.skyline.algorithms import skyline_indices, skyline_points


def oracle(arr):
    keep = []
    for i in range(len(arr)):
        dominated = any(
            j != i and np.all(arr[j] <= arr[i]) and np.any(arr[j] < arr[i])
            for j in range(len(arr))
        )
        if not dominated:
            keep.append(i)
    return np.array(keep, dtype=np.int64)


class TestPaperExample:
    def test_fig1b_skyline(self):
        from repro.data.paperdata import paper_points

        sky = skyline_indices(paper_points())
        # SK = {p1, p3, p5} (Fig. 1(b)) — positions 0, 2, 4.
        assert sky.tolist() == [0, 2, 4]


class TestEdgeCases:
    def test_empty(self):
        assert skyline_indices(np.empty((0, 2))).size == 0

    def test_single_point(self):
        assert skyline_indices(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_all_duplicates_kept(self):
        pts = np.tile([[1.0, 1.0]], (5, 1))
        assert skyline_indices(pts).tolist() == [0, 1, 2, 3, 4]

    def test_duplicate_of_dominated_point_dropped(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        assert skyline_indices(pts).tolist() == [0]

    def test_tie_in_one_dim_dominates(self):
        pts = np.array([[1.0, 1.0], [1.0, 2.0]])
        assert skyline_indices(pts).tolist() == [0]

    def test_antichain_all_kept(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert skyline_indices(pts).tolist() == [0, 1, 2, 3]

    def test_chain_keeps_minimum(self):
        pts = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        assert skyline_indices(pts).tolist() == [2]

    def test_skyline_points_returns_rows(self):
        pts = np.array([[2.0, 1.0], [1.0, 2.0], [3.0, 3.0]])
        rows = skyline_points(pts)
        assert rows.shape == (2, 2)


class TestAgainstOracle:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_random_with_ties(self, dim):
        rng = np.random.default_rng(dim)
        for _ in range(60):
            n = int(rng.integers(1, 50))
            pts = np.round(rng.uniform(0, 1, size=(n, dim)) * 6) / 6
            assert np.array_equal(skyline_indices(pts), oracle(pts))

    def test_idempotent(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 1, size=(200, 2))
        first = skyline_points(pts)
        second = skyline_points(first)
        assert np.array_equal(np.sort(first, axis=0), np.sort(second, axis=0))

    def test_no_returned_point_dominated(self):
        rng = np.random.default_rng(10)
        pts = rng.uniform(0, 1, size=(300, 3))
        sky = skyline_indices(pts)
        sky_pts = pts[sky]
        for p in sky_pts:
            dominated = np.all(sky_pts <= p, axis=1) & np.any(sky_pts < p, axis=1)
            assert not dominated.any()

    def test_every_excluded_point_dominated(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 1, size=(300, 2))
        sky = set(skyline_indices(pts).tolist())
        sky_pts = pts[sorted(sky)]
        for i in range(len(pts)):
            if i in sky:
                continue
            dominated = np.all(sky_pts <= pts[i], axis=1) & np.any(
                sky_pts < pts[i], axis=1
            )
            assert dominated.any()
