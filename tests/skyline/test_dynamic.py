"""Tests for dynamic skylines."""

import numpy as np
import pytest

from repro.data.paperdata import paper_points, paper_query
from repro.skyline.dynamic import (
    dynamic_skyline_indices,
    dynamic_skyline_points,
    is_in_dynamic_skyline,
)


class TestPaperExamples:
    def test_dsl_of_query(self):
        # DSL(q) = {p2, p6} (Fig. 2(a)); positions 1 and 5.
        dsl = dynamic_skyline_indices(paper_points(), paper_query())
        assert dsl.tolist() == [1, 5]

    def test_dsl_of_c2_contains_q(self):
        # DSL(c2) over pt1, pt3-pt8 is {p1, p4, p6} and q joins it (Fig 2(b)).
        pts = paper_points()
        c2 = pts[1]
        dsl = dynamic_skyline_indices(pts, c2, exclude=(1,))
        assert dsl.tolist() == [0, 3, 5]
        assert is_in_dynamic_skyline(
            np.delete(pts, 1, axis=0), c2, paper_query()
        )

    def test_dsl_of_c1_is_p2_p5(self):
        pts = paper_points()
        c1 = pts[0]
        dsl = dynamic_skyline_indices(pts, c1, exclude=(0,))
        assert dsl.tolist() == [1, 4]

    def test_q_not_in_dsl_of_c1(self):
        pts = paper_points()
        assert not is_in_dynamic_skyline(
            np.delete(pts, 0, axis=0), pts[0], paper_query()
        )


class TestSemantics:
    def test_transform_equivalence(self):
        # DSL = skyline in the |c - .| space, by definition.
        from repro.geometry.transform import to_query_space
        from repro.skyline.algorithms import skyline_indices

        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(100, 2))
        c = rng.uniform(0, 10, size=2)
        expected = skyline_indices(to_query_space(pts, c))
        assert np.array_equal(dynamic_skyline_indices(pts, c), expected)

    def test_reflection_invariance(self):
        # Mirroring all points through the origin keeps the DSL positions.
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(60, 2))
        c = np.array([5.0, 5.0])
        mirrored = 2 * c - pts
        assert np.array_equal(
            dynamic_skyline_indices(pts, c), dynamic_skyline_indices(mirrored, c)
        )

    def test_exclusion_removes_point(self):
        pts = np.array([[1.0, 1.0], [5.0, 5.0]])
        c = np.array([0.0, 0.0])
        full = dynamic_skyline_indices(pts, c)
        assert full.tolist() == [0]
        without = dynamic_skyline_indices(pts, c, exclude=(0,))
        assert without.tolist() == [1]

    def test_point_at_origin_dominates_everything(self):
        pts = np.array([[3.0, 3.0], [4.0, 2.0], [5.0, 9.0]])
        c = np.array([3.0, 3.0])
        assert dynamic_skyline_indices(pts, c).tolist() == [0]

    def test_empty_products(self):
        c = np.array([1.0, 1.0])
        assert dynamic_skyline_indices(np.empty((0, 2)), c).size == 0
        assert is_in_dynamic_skyline(np.empty((0, 2)), c, [5.0, 5.0])

    def test_points_returns_original_coordinates(self):
        pts = paper_points()
        rows = dynamic_skyline_points(pts, paper_query())
        assert rows.tolist() == [[7.5, 42.0], [20.0, 50.0]]
