"""Tests: BNL and D&C skylines agree with the sort-filter reference."""

import numpy as np
import pytest

from repro.skyline.algorithms import skyline_indices
from repro.skyline.bnl import bnl_skyline_indices
from repro.skyline.dnc import dnc_skyline_indices


def random_with_ties(rng, n, dim, grid=7):
    return np.round(rng.uniform(0, 1, size=(n, dim)) * grid) / grid


class TestBNL:
    @pytest.mark.parametrize("window_size", [1, 2, 5, 64])
    def test_matches_reference(self, window_size):
        rng = np.random.default_rng(window_size)
        for _ in range(60):
            n = int(rng.integers(1, 80))
            pts = random_with_ties(rng, n, 2)
            assert np.array_equal(
                bnl_skyline_indices(pts, window_size=window_size),
                skyline_indices(pts),
            ), (window_size, pts)

    def test_matches_reference_3d(self):
        rng = np.random.default_rng(9)
        for _ in range(40):
            n = int(rng.integers(1, 60))
            pts = random_with_ties(rng, n, 3)
            assert np.array_equal(
                bnl_skyline_indices(pts, window_size=4), skyline_indices(pts)
            )

    def test_adversarial_spill_order(self):
        """A spilled record dominating a later window entrant must still
        eliminate it (the unsound-simplification regression case)."""
        # w1, w2 fill the window; b spills; x clears the window; c enters
        # late but is dominated by the spilled b.
        pts = np.array(
            [
                [0.0, 9.0],   # w1
                [9.0, 0.0],   # w2
                [4.0, 4.0],   # b: incomparable with w1, w2 -> spills
                [0.0, 0.0],   # x: dominates w1 and w2 (not b, not c? yes c)
                [5.0, 5.0],   # c: dominated by b (and x)
            ]
        )
        assert np.array_equal(
            bnl_skyline_indices(pts, window_size=2), skyline_indices(pts)
        )

    def test_duplicates_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert bnl_skyline_indices(pts, window_size=1).tolist() == [0, 1]

    def test_empty_and_single(self):
        assert bnl_skyline_indices(np.empty((0, 2))).size == 0
        assert bnl_skyline_indices(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            bnl_skyline_indices(np.array([[1.0, 2.0]]), window_size=0)

    def test_window_one_antichain(self):
        """All-incomparable input with the smallest window: maximal
        spilling, many passes, still exact."""
        pts = np.array([[float(i), float(9 - i)] for i in range(10)])
        assert bnl_skyline_indices(pts, window_size=1).tolist() == list(range(10))


class TestDnC:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_matches_reference(self, dim):
        rng = np.random.default_rng(dim + 10)
        for _ in range(50):
            n = int(rng.integers(1, 150))
            pts = random_with_ties(rng, n, dim)
            assert np.array_equal(
                dnc_skyline_indices(pts), skyline_indices(pts)
            ), (dim, n)

    def test_all_identical_points(self):
        pts = np.tile([[0.5, 0.5]], (100, 1))
        assert dnc_skyline_indices(pts).size == 100

    def test_constant_first_dimension(self):
        """Median ties on dim 0 must trigger the safe fallback."""
        rng = np.random.default_rng(3)
        pts = np.column_stack([np.full(120, 0.5), rng.uniform(0, 1, 120)])
        assert np.array_equal(dnc_skyline_indices(pts), skyline_indices(pts))

    def test_large_input_recursion(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 1, size=(3000, 2))
        assert np.array_equal(dnc_skyline_indices(pts), skyline_indices(pts))

    def test_empty(self):
        assert dnc_skyline_indices(np.empty((0, 2))).size == 0


class TestBNLSharedDominance:
    """Regression: BNL must route every comparison through the shared
    ``repro.skyline.dominance`` kernel — a private ``_dominates`` copy
    drifted from the WEAK/STRICT and weighted semantics once."""

    def test_no_private_dominance_helper(self):
        import inspect

        import repro.skyline.bnl as bnl_mod

        source = inspect.getsource(bnl_mod)
        assert "_dominates" not in source
        assert "from repro.skyline.dominance import dominates" in source

    def test_strict_policy_matches_naive(self):
        from repro.config import DominancePolicy
        from repro.skyline.dominance import dominates

        rng = np.random.default_rng(21)
        for _ in range(25):
            pts = random_with_ties(rng, int(rng.integers(1, 40)), 2)
            expected = [
                i
                for i in range(pts.shape[0])
                if not any(
                    dominates(pts[j], pts[i], DominancePolicy.STRICT)
                    for j in range(pts.shape[0])
                    if j != i
                )
            ]
            got = bnl_skyline_indices(
                pts, window_size=3, policy=DominancePolicy.STRICT
            )
            assert got.tolist() == expected, pts

    def test_weighted_projection_matches_reference(self):
        rng = np.random.default_rng(33)
        for _ in range(25):
            pts = random_with_ties(rng, int(rng.integers(2, 40)), 3)
            weights = np.array([1.0, 0.0, 2.0])
            got = bnl_skyline_indices(pts, window_size=4, weights=weights)
            expected = skyline_indices(pts[:, [0, 2]])
            assert np.array_equal(got, expected), pts

    def test_unit_weights_bit_identical(self):
        rng = np.random.default_rng(44)
        pts = random_with_ties(rng, 50, 2)
        assert np.array_equal(
            bnl_skyline_indices(pts, window_size=5),
            bnl_skyline_indices(
                pts, window_size=5, weights=np.array([1.0, 1.0])
            ),
        )
