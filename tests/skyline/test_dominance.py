"""Tests for the dominance kernels under both policies."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.skyline.dominance import (
    dominated_mask,
    dominates,
    dominating_mask,
    dynamically_dominates,
    is_dominated_by_any,
)

WEAK = DominancePolicy.WEAK
STRICT = DominancePolicy.STRICT


class TestDominates:
    def test_weak_requires_one_strict(self):
        assert dominates([1, 2], [1, 3], WEAK)
        assert not dominates([1, 2], [1, 2], WEAK)

    def test_weak_fails_on_tradeoff(self):
        assert not dominates([1, 3], [2, 2], WEAK)
        assert not dominates([2, 2], [1, 3], WEAK)

    def test_strict_requires_all_strict(self):
        assert dominates([1, 2], [2, 3], STRICT)
        assert not dominates([1, 2], [1, 3], STRICT)

    def test_strict_implies_weak(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b = rng.uniform(0, 1, size=(2, 3))
            if dominates(a, b, STRICT):
                assert dominates(a, b, WEAK)

    def test_irreflexive(self):
        assert not dominates([1, 1], [1, 1], WEAK)
        assert not dominates([1, 1], [1, 1], STRICT)

    def test_asymmetric(self):
        assert dominates([0, 0], [1, 1], WEAK)
        assert not dominates([1, 1], [0, 0], WEAK)


class TestMasks:
    def test_dominated_mask(self):
        pts = np.array([[2, 2], [1, 1], [0, 3]])
        mask = dominated_mask(pts, [1, 1], WEAK)
        assert mask.tolist() == [True, False, False]

    def test_dominating_mask(self):
        pts = np.array([[0, 0], [1, 1], [2, 0]])
        mask = dominating_mask(pts, [1, 1], WEAK)
        assert mask.tolist() == [True, False, False]

    def test_strict_masks_exclude_ties(self):
        pts = np.array([[1, 0], [0, 0]])
        assert dominating_mask(pts, [1, 1], STRICT).tolist() == [False, True]

    def test_empty_matrix(self):
        assert dominated_mask(np.empty((0, 2)), [1, 1]).size == 0
        assert dominating_mask(np.empty((0, 2)), [1, 1]).size == 0

    def test_is_dominated_by_any(self):
        pts = np.array([[2, 2], [0, 0]])
        assert is_dominated_by_any(pts, [1, 1], WEAK)
        assert not is_dominated_by_any(pts[:1], [1, 1], WEAK)


class TestDynamicDominance:
    def test_paper_example(self):
        # p2 dynamically dominates q w.r.t. c1 (Section I).
        c1 = [5.0, 30.0]
        p2 = [7.5, 42.0]
        q = [8.5, 55.0]
        assert dynamically_dominates(p2, q, c1, WEAK)
        assert dynamically_dominates(p2, q, c1, STRICT)
        assert not dynamically_dominates(q, p2, c1, WEAK)

    def test_mirror_equivalence(self):
        # A point and its mirror through the origin are equivalent in the
        # transformed space: neither dominates the other.
        c = [0.0, 0.0]
        p = [1.0, 2.0]
        mirrored = [-1.0, -2.0]
        assert not dynamically_dominates(p, mirrored, c, WEAK)
        assert not dynamically_dominates(mirrored, p, c, WEAK)

    def test_closer_in_all_dims_dominates(self):
        c = [10.0, 10.0]
        assert dynamically_dominates([9, 11], [5, 20], c, STRICT)
