"""Tests for the branch-and-bound skyline (BBS) on the R*-tree."""

import numpy as np
import pytest

from repro.config import RTreeConfig
from repro.data.paperdata import paper_points, paper_query
from repro.index.rtree import RTree
from repro.skyline.algorithms import skyline_indices
from repro.skyline.bbs import bbs_dynamic_skyline, bbs_skyline
from repro.skyline.dynamic import dynamic_skyline_indices


class TestBBSSkyline:
    def test_paper_static_skyline(self):
        tree = RTree(paper_points())
        assert bbs_skyline(tree).tolist() == [0, 2, 4]

    def test_matches_sort_scan_random(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            n = int(rng.integers(1, 200))
            pts = np.round(rng.uniform(0, 1, size=(n, 2)) * 12) / 12
            tree = RTree(pts, config=RTreeConfig(max_entries=6))
            assert np.array_equal(bbs_skyline(tree), skyline_indices(pts)), trial

    def test_3d(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(150, 3))
        tree = RTree(pts, config=RTreeConfig(max_entries=8))
        assert np.array_equal(bbs_skyline(tree), skyline_indices(pts))

    def test_empty(self):
        tree = RTree(np.empty((0, 2)))
        assert bbs_skyline(tree).size == 0

    def test_exclusion(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]])
        tree = RTree(pts)
        assert bbs_skyline(tree).tolist() == [0]
        # Without (0,0), the remaining points trade off and both survive.
        assert bbs_skyline(tree, exclude=(0,)).tolist() == [1, 2]

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        tree = RTree(pts)
        assert bbs_skyline(tree).tolist() == [0, 1]


class TestBBSDynamicSkyline:
    def test_paper_dsl_of_q(self):
        tree = RTree(paper_points())
        assert bbs_dynamic_skyline(tree, paper_query()).tolist() == [1, 5]

    def test_paper_dsl_of_c2_with_exclusion(self):
        pts = paper_points()
        tree = RTree(pts)
        dsl = bbs_dynamic_skyline(tree, pts[1], exclude=(1,))
        assert dsl.tolist() == [0, 3, 5]

    def test_matches_scan_based_random(self):
        rng = np.random.default_rng(2)
        for trial in range(25):
            n = int(rng.integers(2, 120))
            pts = np.round(rng.uniform(0, 1, size=(n, 2)) * 9) / 9
            origin = np.round(rng.uniform(0, 1, size=2) * 9) / 9
            tree = RTree(pts, config=RTreeConfig(max_entries=5))
            expected = dynamic_skyline_indices(pts, origin)
            assert np.array_equal(bbs_dynamic_skyline(tree, origin), expected), trial

    def test_prunes_nodes(self):
        # On clustered data BBS should not touch every node.
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(3000, 2))
        tree = RTree(pts, config=RTreeConfig(max_entries=16))
        total_nodes = tree.node_count()
        tree.reset_stats()
        bbs_dynamic_skyline(tree, np.array([0.5, 0.5]))
        assert tree.stats.node_accesses < total_nodes
