"""Tests for window queries and the reverse-skyline membership test."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.data.paperdata import paper_points, paper_query
from repro.index.scan import ScanIndex
from repro.skyline.window import lambda_set, window_is_empty, window_query_indices

WEAK = DominancePolicy.WEAK
STRICT = DominancePolicy.STRICT


@pytest.fixture()
def paper_index():
    return ScanIndex(paper_points())


class TestPaperExamples:
    def test_c2_window_empty(self, paper_index):
        # Fig. 4(a): the window of c2 returns nothing -> c2 in RSL(q).
        c2 = paper_points()[1]
        assert window_is_empty(paper_index, c2, paper_query(), exclude=(1,))

    def test_c1_window_returns_p2(self, paper_index):
        # Fig. 4(b): the window of c1 returns {p2}.
        c1 = paper_points()[0]
        hits = window_query_indices(paper_index, c1, paper_query(), exclude=(0,))
        assert hits.tolist() == [1]

    def test_lambda_alias(self, paper_index):
        c1 = paper_points()[0]
        assert np.array_equal(
            lambda_set(paper_index, c1, paper_query(), exclude=(0,)),
            window_query_indices(paper_index, c1, paper_query(), exclude=(0,)),
        )


class TestBoundarySemantics:
    def make_index(self, pts):
        return ScanIndex(np.asarray(pts, dtype=float))

    def test_weak_counts_boundary_with_strict_dim(self):
        # Product ties the window in y but is strictly inside in x.
        idx = self.make_index([[0.5, 1.0]])
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert window_query_indices(idx, c, q, WEAK).size == 1
        assert window_query_indices(idx, c, q, STRICT).size == 0

    def test_all_dim_tie_never_counts(self):
        # A product at the same distances as q in every dimension does not
        # dominate it under either policy.
        idx = self.make_index([[1.0, 1.0]])
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert window_query_indices(idx, c, q, WEAK).size == 0
        assert window_query_indices(idx, c, q, STRICT).size == 0

    def test_mirror_of_query_ties(self):
        # The mirror point -q has identical distances: no domination.
        idx = self.make_index([[-1.0, -1.0]])
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert window_query_indices(idx, c, q, WEAK).size == 0

    def test_strict_interior_counts_under_both(self):
        idx = self.make_index([[0.5, 0.5]])
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert window_query_indices(idx, c, q, WEAK).size == 1
        assert window_query_indices(idx, c, q, STRICT).size == 1

    def test_degenerate_window(self):
        # c == q: the window is a point; only co-located products tie and
        # ties never dominate.
        idx = self.make_index([[0.0, 0.0], [1.0, 1.0]])
        c = q = np.array([0.0, 0.0])
        assert window_query_indices(idx, c, q, WEAK).size == 0
        assert window_query_indices(idx, c, q, STRICT).size == 0

    def test_exclusion(self):
        idx = self.make_index([[0.5, 0.5], [0.4, 0.4]])
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        hits = window_query_indices(idx, c, q, WEAK, exclude=(0,))
        assert hits.tolist() == [1]


class TestOracleEquivalence:
    def test_window_matches_dynamic_dominance(self):
        """The window result is exactly the set of products that
        dynamically dominate q w.r.t. c (both policies)."""
        from repro.skyline.dominance import dynamically_dominates

        rng = np.random.default_rng(3)
        for _ in range(40):
            pts = np.round(rng.uniform(0, 1, size=(25, 2)) * 8) / 8
            idx = ScanIndex(pts)
            c = np.round(rng.uniform(0, 1, size=2) * 8) / 8
            q = np.round(rng.uniform(0, 1, size=2) * 8) / 8
            for policy in (WEAK, STRICT):
                hits = set(window_query_indices(idx, c, q, policy).tolist())
                expected = {
                    i
                    for i in range(len(pts))
                    if dynamically_dominates(pts[i], q, c, policy)
                }
                assert hits == expected
