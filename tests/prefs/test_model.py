"""Unit tests for the first-class preference model (repro.prefs)."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.prefs.model import (
    UNIT_PREFS,
    PreferenceModel,
    as_weight_vector,
    support_dims,
)


# ----------------------------------------------------------------------
# as_weight_vector validation
# ----------------------------------------------------------------------
def test_as_weight_vector_accepts_valid():
    w = as_weight_vector([1.0, 2.5, 0.0], dim=3)
    assert w.dtype == np.float64
    assert w.tolist() == [1.0, 2.5, 0.0]


@pytest.mark.parametrize(
    "bad",
    [
        [1.0, -0.5],
        [float("nan"), 1.0],
        [float("inf"), 1.0],
        [0.0, 0.0],
        [[1.0, 2.0]],
        "not numbers",
    ],
)
def test_as_weight_vector_rejects_malformed(bad):
    with pytest.raises(InvalidParameterError):
        as_weight_vector(bad)


def test_as_weight_vector_rejects_wrong_length():
    with pytest.raises(InvalidParameterError):
        as_weight_vector([1.0, 2.0], dim=3)


# ----------------------------------------------------------------------
# support_dims
# ----------------------------------------------------------------------
def test_support_dims_full_support_is_none():
    assert support_dims(None, 4) is None
    assert support_dims(np.array([1.0, 2.0, 3.0, 0.5]), 4) is None


def test_support_dims_partial():
    sel = support_dims(np.array([1.0, 0.0, 2.0]), 3)
    assert sel.dtype == np.int64
    assert sel.tolist() == [0, 2]


def test_support_dims_length_mismatch_raises():
    with pytest.raises(InvalidParameterError):
        support_dims(np.array([1.0, 2.0]), 3)


# ----------------------------------------------------------------------
# PreferenceModel
# ----------------------------------------------------------------------
def test_model_is_frozen_and_validated():
    model = PreferenceModel(weights=(2.0, 1.0), policy=DominancePolicy.WEAK)
    with pytest.raises(AttributeError):
        model.weights = (1.0,)
    with pytest.raises(InvalidParameterError):
        PreferenceModel(weights=(-1.0, 1.0))


def test_resolve_none_is_unit():
    model = PreferenceModel.resolve(None, DominancePolicy.WEAK, 2)
    assert model.is_unit and model.full_support
    assert model.weight_array(2) is None
    assert model.support(5) is None
    assert model.effective_dim(5) == 5


def test_resolve_checks_dim():
    with pytest.raises(InvalidParameterError):
        PreferenceModel.resolve([1.0, 2.0], DominancePolicy.WEAK, 3)


def test_resolve_rejects_model_instance():
    with pytest.raises(InvalidParameterError):
        PreferenceModel.resolve(UNIT_PREFS, DominancePolicy.WEAK, 2)


def test_partial_support_views():
    model = PreferenceModel.resolve([1.0, 0.0, 3.0], DominancePolicy.WEAK, 3)
    assert not model.full_support and not model.is_unit
    assert model.support(3).tolist() == [0, 2]
    assert model.effective_dim(3) == 2
    assert model.weight_array(3).tolist() == [1.0, 0.0, 3.0]


def test_cost_weights_scale_without_renormalising():
    model = PreferenceModel.resolve([2.0, 0.5], DominancePolicy.WEAK, 2)
    base = np.array([0.5, 0.5])
    assert model.cost_weights(base).tolist() == [1.0, 0.25]
    assert UNIT_PREFS.cost_weights(base) is base


def test_fingerprint_collapses_unit_spellings():
    explicit = PreferenceModel.resolve([1.0, 1.0], DominancePolicy.WEAK, 2)
    assert explicit.fingerprint() == UNIT_PREFS.fingerprint()
    weighted = PreferenceModel.resolve([2.0, 1.0], DominancePolicy.WEAK, 2)
    assert weighted.fingerprint() != UNIT_PREFS.fingerprint()
    # policy is part of the identity
    strict = PreferenceModel(weights=None, policy=DominancePolicy.STRICT)
    assert strict.fingerprint() != UNIT_PREFS.fingerprint()


def test_fingerprint_is_hashable_and_stable():
    a = PreferenceModel.resolve([2.0, 3.0], DominancePolicy.WEAK, 2)
    b = PreferenceModel.resolve(np.array([2.0, 3.0]), DominancePolicy.WEAK, 2)
    assert hash(a.fingerprint()) == hash(b.fingerprint())
    assert a.fingerprint() == b.fingerprint()


def test_describe_labels():
    assert UNIT_PREFS.describe() == "unit/weak"
    model = PreferenceModel.resolve([2.0, 0.5], DominancePolicy.STRICT, 2)
    assert model.describe() == "[2,0.5]/strict"
