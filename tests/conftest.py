"""Shared fixtures: the paper's worked example and small random engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.data.paperdata import paper_dataset, paper_points, paper_query
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex


@pytest.fixture(scope="session")
def paper_pts() -> np.ndarray:
    return paper_points()


@pytest.fixture(scope="session")
def paper_q() -> np.ndarray:
    return paper_query()


@pytest.fixture()
def paper_engine(paper_pts) -> WhyNotEngine:
    """Monochromatic engine over the Fig. 1(a) points (scan backend)."""
    ds = paper_dataset()
    return WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)


@pytest.fixture()
def paper_engine_rtree(paper_pts) -> WhyNotEngine:
    """Same engine on the R*-tree backend."""
    ds = paper_dataset()
    return WhyNotEngine(ds.points, backend="rtree", bounds=ds.bounds)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20130408)  # ICDE 2013 week.


def random_points(
    rng: np.random.Generator, n: int, dim: int = 2, grid: int | None = 8
) -> np.ndarray:
    """Random points, optionally snapped to a grid to provoke ties."""
    pts = rng.uniform(0.0, 1.0, size=(n, dim))
    if grid:
        pts = np.round(pts * grid) / grid
    return pts


@pytest.fixture(params=["scan", "rtree", "grid"])
def index_factory(request):
    """Build either index implementation from a point matrix."""

    def factory(points: np.ndarray):
        if request.param == "scan":
            return ScanIndex(points)
        if request.param == "grid":
            return GridIndex(points)
        return RTree(points)

    factory.backend = request.param
    return factory
