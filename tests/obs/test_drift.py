"""Cost-drift sentinel: EWMA/geomean math, band flagging, gauge
publication, Prometheus round-trips, and the engine surface."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.obs import (
    DEFAULT_DRIFT_BAND,
    JournalRecord,
    MetricsRegistry,
    aggregate_drift,
    prom_name,
    to_prometheus,
)

BOUNDS = Box(np.zeros(2), np.ones(2))


def _rec(seq: int, operator: str, est: float, act: float) -> JournalRecord:
    return JournalRecord(
        seq=seq,
        surface="safe_region",
        operator=operator,
        epoch=0,
        config_fingerprint="fp",
        estimated_seconds=est,
        actual_seconds=act,
        counters={},
    )


class TestAggregation:
    def test_alpha_one_degenerates_to_last_ratio(self):
        records = [
            _rec(0, "op", 1.0, 4.0),
            _rec(1, "op", 1.0, 2.0),
        ]
        report = aggregate_drift(records, ewma_alpha=1.0)
        entry = report.get("op")
        assert entry.ewma_ratio == pytest.approx(2.0)

    def test_ewma_weights_recent_records_more(self):
        records = [_rec(0, "op", 1.0, 1.0), _rec(1, "op", 1.0, 9.0)]
        report = aggregate_drift(records, ewma_alpha=0.5)
        assert report.get("op").ewma_ratio == pytest.approx(5.0)

    def test_geomean_is_the_suggested_scale(self):
        records = [_rec(0, "op", 1.0, 2.0), _rec(1, "op", 1.0, 8.0)]
        report = aggregate_drift(records)
        entry = report.get("op")
        assert entry.geomean_ratio == pytest.approx(4.0)
        assert entry.suggested_scale == entry.geomean_ratio

    def test_totals_accumulate(self):
        records = [_rec(0, "op", 0.5, 1.0), _rec(1, "op", 0.25, 0.5)]
        entry = aggregate_drift(records).get("op")
        assert entry.samples == 2
        assert entry.estimated_total_s == pytest.approx(0.75)
        assert entry.actual_total_s == pytest.approx(1.5)

    def test_worst_offender_sorts_first(self):
        records = [
            _rec(0, "mild", 1.0, 1.1),
            _rec(1, "wild", 1.0, 50.0),
            _rec(2, "fine", 1.0, 1.0),
        ]
        report = aggregate_drift(records, min_samples=1)
        assert report.operators[0].operator == "wild"

    def test_zero_estimate_is_guarded(self):
        report = aggregate_drift([_rec(0, "op", 0.0, 1.0)], min_samples=1)
        entry = report.get("op")
        assert np.isfinite(entry.ewma_ratio)
        assert entry.flagged

    def test_a_journal_iterates_directly(self):
        from repro.obs import QueryJournal

        journal = QueryJournal()
        journal.record(
            surface="s",
            operator="op",
            epoch=0,
            config_fingerprint="fp",
            estimated_seconds=1.0,
            actual_seconds=3.0,
        )
        report = aggregate_drift(journal, min_samples=1)
        assert report.get("op").samples == 1


class TestFlagging:
    def test_inside_band_not_flagged(self):
        records = [_rec(i, "op", 1.0, 1.5) for i in range(5)]
        report = aggregate_drift(records)
        assert not report.get("op").flagged
        assert report.flagged() == []

    def test_outside_band_flagged(self):
        records = [_rec(i, "op", 1.0, 10.0) for i in range(5)]
        report = aggregate_drift(records)
        assert report.get("op").flagged
        assert [e.operator for e in report.flagged()] == ["op"]

    def test_underestimate_band_is_two_sided(self):
        records = [_rec(i, "op", 10.0, 1.0) for i in range(5)]
        assert aggregate_drift(records).get("op").flagged

    def test_min_samples_suppresses_cold_outliers(self):
        records = [_rec(0, "op", 1.0, 100.0)]
        report = aggregate_drift(records, min_samples=3)
        assert not report.get("op").flagged
        report = aggregate_drift(records, min_samples=1)
        assert report.get("op").flagged

    def test_custom_band(self):
        records = [_rec(i, "op", 1.0, 3.0) for i in range(4)]
        assert aggregate_drift(records, band=(0.9, 4.0)).flagged() == []
        assert len(aggregate_drift(records, band=(0.9, 1.1)).flagged()) == 1


class TestParameterValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            aggregate_drift([], ewma_alpha=0.0)
        with pytest.raises(ValueError):
            aggregate_drift([], ewma_alpha=1.5)

    def test_band_shape(self):
        with pytest.raises(ValueError):
            aggregate_drift([], band=(2.0, 0.5))
        with pytest.raises(ValueError):
            aggregate_drift([], band=(0.0, 2.0))

    def test_min_samples_positive(self):
        with pytest.raises(ValueError):
            aggregate_drift([], min_samples=0)


class TestRender:
    def test_render_lists_operators_and_proposal(self):
        records = [_rec(i, "sr-cached-fold", 1.0, 10.0) for i in range(4)]
        text = aggregate_drift(records).render()
        assert "sr-cached-fold" in text
        assert "DRIFTING" in text
        assert "recalibration proposal" in text

    def test_render_empty_report(self):
        assert "(no journal records)" in aggregate_drift([]).render()

    def test_to_dict_round_trip_shape(self):
        records = [_rec(0, "op", 1.0, 2.0)]
        payload = aggregate_drift(records).to_dict()
        assert payload["band"] == list(DEFAULT_DRIFT_BAND)
        assert payload["operators"][0]["operator"] == "op"


class TestPublish:
    def test_publish_sets_one_gauge_per_operator(self):
        records = [
            _rec(0, "sr-cached-fold", 1.0, 2.0),
            _rec(1, "rsl-kernel-verify", 1.0, 3.0),
        ]
        metrics = MetricsRegistry()
        aggregate_drift(records, min_samples=1).publish(metrics)
        assert metrics.get("plan.drift.sr-cached-fold").value == pytest.approx(
            2.0
        )
        assert metrics.get(
            "plan.drift.rsl-kernel-verify"
        ).value == pytest.approx(3.0)

    def test_hyphenated_operator_gauges_survive_prometheus(self):
        metrics = MetricsRegistry()
        records = [_rec(0, "sr-cached-fold", 1.0, 2.0)]
        aggregate_drift(records, min_samples=1).publish(metrics)
        text = to_prometheus(metrics)
        assert prom_name("plan.drift.sr-cached-fold") in text
        assert "-" not in prom_name("plan.drift.sr-cached-fold")


class TestEngineSurface:
    def _engine(self, **config_kwargs) -> WhyNotEngine:
        rng = np.random.default_rng(3)
        return WhyNotEngine(
            rng.random((50, 2)),
            backend="scan",
            config=WhyNotConfig(**config_kwargs),
            bounds=BOUNDS,
        )

    def test_drift_report_requires_journal(self):
        engine = self._engine(trace=True)
        with pytest.raises(InvalidParameterError, match="journal"):
            engine.drift_report()

    def test_drift_report_publishes_gauges(self):
        engine = self._engine(trace=True, journal=True)
        q = np.array([0.5, 0.5])
        engine.reverse_skyline(q)
        report = engine.drift_report(min_samples=1)
        assert len(report.operators) >= 1
        op = report.operators[0].operator
        assert engine.obs.metrics.get(f"plan.drift.{op}") is not None
        # The published registry still renders as Prometheus text.
        assert prom_name(f"plan.drift.{op}") in to_prometheus(
            engine.obs.metrics
        )

    def test_drift_report_publish_false_leaves_registry_alone(self):
        engine = self._engine(trace=True, journal=True)
        engine.reverse_skyline(np.array([0.5, 0.5]))
        before = set(engine.obs.metrics.names())
        engine.drift_report(min_samples=1, publish=False)
        assert set(engine.obs.metrics.names()) == before
