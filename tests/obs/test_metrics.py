"""MetricsRegistry, exporters, and the repro.obs/1 validation contract."""

import json

import pytest

from repro.obs.exporters import (
    SCHEMA,
    export_obs,
    render_span_tree,
    to_prometheus,
    validate_export,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_attach_shares_the_object(self):
        reg = MetricsRegistry()
        counter = Counter("raw")
        reg.attach("index.raw", counter)
        counter.inc(5)
        assert reg.snapshot()["index.raw"] == 5
        reg.get("index.raw").inc(2)
        assert counter.value == 7

    def test_attach_same_object_twice_is_noop(self):
        reg = MetricsRegistry()
        counter = Counter("raw")
        reg.attach("x", counter)
        reg.attach("x", counter)
        assert len(reg) == 1

    def test_attach_name_conflict_raises(self):
        reg = MetricsRegistry()
        reg.attach("x", Counter("a"))
        with pytest.raises(ValueError, match="already in use"):
            reg.attach("x", Counter("b"))

    def test_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(3)
        before = reg.snapshot()
        c.inc(4)
        reg.gauge("late").set(2.0)
        delta = reg.delta(before)
        assert delta["c"] == 4
        assert delta["late"] == 2.0

    def test_histogram_observe_and_snapshot(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        snap = h.snapshot_value()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1.0"] == 2  # cumulative

    def test_reset_zeroes_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.2)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0
        assert snap["g"] == 0.0
        assert snap["h"]["count"] == 0


class TestExportRoundTrip:
    def _traced(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=0.5))
        reg = MetricsRegistry()
        with tracer.span("outer", q="q1"):
            with tracer.span("inner"):
                reg.counter("work.items").inc(3)
        reg.histogram("lat").observe(0.2)
        return tracer, reg

    def test_export_validates_and_survives_json(self):
        tracer, reg = self._traced()
        payload = export_obs(tracer, reg, env={"python": "3.x"}, extra={"run": 1})
        validate_export(payload)
        assert payload["schema"] == SCHEMA
        assert payload["run"] == 1
        round_tripped = json.loads(json.dumps(payload))
        validate_export(round_tripped)
        assert round_tripped["metrics"]["work.items"] == 3
        assert round_tripped["spans"][0]["children"][0]["name"] == "inner"

    def test_prometheus_text(self):
        _tracer, reg = self._traced()
        reg.gauge("cache.size", help="entries").set(7)
        text = to_prometheus(reg)
        assert "# TYPE repro_work_items_total counter" in text
        assert "repro_work_items_total 3" in text
        assert "# HELP repro_cache_size entries" in text
        assert "repro_cache_size 7" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_render_span_tree_indents_and_annotates(self):
        tracer, _reg = self._traced()
        tree = render_span_tree(tracer)
        lines = tree.splitlines()
        assert lines[0].startswith("outer")
        assert "q='q1'" in lines[0]
        assert lines[1].startswith("  inner")
        assert "unbalanced" not in tree


class TestValidateExportFailures:
    def _valid(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            pass
        return export_obs(tracer, MetricsRegistry())

    def test_bad_schema(self):
        payload = self._valid()
        payload["schema"] = "bogus/9"
        with pytest.raises(ValueError, match="schema"):
            validate_export(payload)

    def test_unbalanced(self):
        payload = self._valid()
        payload["balanced"] = False
        with pytest.raises(ValueError, match="unbalanced"):
            validate_export(payload)

    def test_negative_duration(self):
        payload = self._valid()
        payload["spans"][0]["duration_s"] = -0.5
        with pytest.raises(ValueError, match="negative duration"):
            validate_export(payload)

    def test_never_closed(self):
        payload = self._valid()
        payload["spans"][0]["duration_s"] = None
        with pytest.raises(ValueError, match="never closed"):
            validate_export(payload)

    def test_never_started(self):
        payload = self._valid()
        payload["spans"][0]["start_s"] = None
        with pytest.raises(ValueError, match="never started"):
            validate_export(payload)

    def test_child_outside_parent(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        payload = export_obs(tracer, MetricsRegistry())
        payload["spans"][0]["children"][0]["duration_s"] = 1e6
        with pytest.raises(ValueError, match="timed outside parent"):
            validate_export(payload)

    def test_non_numeric_metric(self):
        payload = self._valid()
        payload["metrics"] = {"bad": "not-a-number"}
        with pytest.raises(ValueError, match="numeric"):
            validate_export(payload)

    def test_histogram_summary_needs_count_and_sum(self):
        payload = self._valid()
        payload["metrics"] = {"h": {"buckets": {}}}
        with pytest.raises(ValueError, match="count and sum"):
            validate_export(payload)
