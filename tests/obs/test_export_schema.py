"""Export schema ``repro.obs/2``: journal section validation, v1
backward compatibility, Prometheus name hygiene and collision refusal."""

import pytest

from repro.obs import (
    SCHEMA,
    SCHEMA_V1,
    MetricsRegistry,
    Observability,
    QueryJournal,
    Tracer,
    export_obs,
    prom_name,
    to_prometheus,
    validate_export,
)


def _journaled_payload() -> dict:
    obs = Observability(enabled=True)
    obs.journal = QueryJournal(metrics=obs.metrics)
    with obs.span("engine.work"):
        obs.counter("kernels.tiles").inc(3)
    obs.journal.record(
        surface="safe_region",
        operator="sr-cached-fold",
        epoch=0,
        config_fingerprint="fp",
        estimated_seconds=0.001,
        actual_seconds=0.002,
        counters={"kernels.tiles": 3},
    )
    return obs.export()


class TestSchemaTags:
    def test_current_export_is_v2(self):
        payload = _journaled_payload()
        assert payload["schema"] == SCHEMA == "repro.obs/2"
        validate_export(payload)

    def test_v1_payload_without_journal_still_validates(self):
        # The shape old archives have: no journal, no spans_dropped.
        payload = {
            "schema": SCHEMA_V1,
            "spans": [],
            "balanced": True,
            "spans_started": 0,
            "spans_closed": 0,
            "metrics": {"kernels.tiles": 3},
        }
        validate_export(payload)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_export({"schema": "repro.obs/3"})
        with pytest.raises(ValueError, match="schema"):
            validate_export({"schema": ""})

    def test_spans_dropped_must_be_non_negative_int(self):
        payload = _journaled_payload()
        payload["spans_dropped"] = -1
        with pytest.raises(ValueError, match="spans_dropped"):
            validate_export(payload)
        payload["spans_dropped"] = "lots"
        with pytest.raises(ValueError, match="spans_dropped"):
            validate_export(payload)

    def test_dropped_roots_counted_in_export(self):
        tracer = Tracer(enabled=True, max_roots=1)
        for name in ("a", "b"):
            with tracer.span(name):
                pass
        payload = export_obs(tracer=tracer)
        assert payload["spans_dropped"] == 1
        validate_export(payload)


class TestJournalSection:
    def test_export_carries_journal_payload(self):
        payload = _journaled_payload()
        assert payload["journal"]["appended"] == 1
        (record,) = payload["journal"]["records"]
        assert record["operator"] == "sr-cached-fold"

    def test_journal_accounting_violation_rejected(self):
        payload = _journaled_payload()
        payload["journal"]["appended"] = 7  # retained 1 + dropped 0 != 7
        with pytest.raises(ValueError, match="accounting"):
            validate_export(payload)

    def test_journal_seq_order_violation_rejected(self):
        payload = _journaled_payload()
        record = dict(payload["journal"]["records"][0])
        payload["journal"]["records"].append(record)  # duplicate seq
        payload["journal"]["appended"] = 2
        with pytest.raises(ValueError, match="seq"):
            validate_export(payload)

    def test_journal_empty_operator_rejected(self):
        payload = _journaled_payload()
        payload["journal"]["records"][0]["operator"] = ""
        with pytest.raises(ValueError, match="operator"):
            validate_export(payload)

    def test_journal_negative_seconds_rejected(self):
        payload = _journaled_payload()
        payload["journal"]["records"][0]["actual_seconds"] = -0.5
        with pytest.raises(ValueError, match="actual_seconds"):
            validate_export(payload)

    def test_journal_section_round_trips_json(self):
        import json

        payload = _journaled_payload()
        validate_export(json.loads(json.dumps(payload)))


class TestPromNameHygiene:
    def test_dots_and_hyphens_become_underscores(self):
        assert prom_name("plan.drift.sr-cached-fold") == (
            "repro_plan_drift_sr_cached_fold"
        )
        assert prom_name("shard.worker.kernels.tiles") == (
            "repro_shard_worker_kernels_tiles"
        )

    def test_leading_non_alpha_is_guarded(self):
        name = prom_name("0weird")
        assert name.startswith("repro_")
        assert name == "repro__0weird"

    def test_legacy_alias_still_exported(self):
        from repro.obs.exporters import _prom_name

        assert _prom_name is prom_name

    def test_sanitized_names_round_trip_through_exposition(self):
        metrics = MetricsRegistry()
        metrics.counter("shard.worker.kernels.tiles").inc(2)
        metrics.gauge("plan.drift.rsl-kernel-verify").set(1.5)
        text = to_prometheus(metrics)
        assert "repro_shard_worker_kernels_tiles_total 2" in text
        assert "repro_plan_drift_rsl_kernel_verify 1.5" in text
        for line in text.splitlines():
            if line and not line.startswith("#"):
                metric_name = line.split(None, 1)[0].split("{")[0]
                assert "-" not in metric_name
                assert "." not in metric_name

    def test_collision_after_sanitizing_refused(self):
        metrics = MetricsRegistry()
        metrics.counter("plan.drift.sr-cached-fold").inc()
        metrics.counter("plan.drift.sr_cached_fold").inc()
        with pytest.raises(ValueError, match="sanitize"):
            to_prometheus(metrics)
