"""Locked-registry mode: exact counters under thread contention."""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry


def test_make_threadsafe_is_idempotent_and_marks_registry():
    registry = MetricsRegistry()
    assert not registry.thread_safe
    registry.make_threadsafe()
    assert registry.thread_safe
    lock = registry._shared_lock
    registry.make_threadsafe()
    assert registry._shared_lock is lock


def test_existing_and_new_metrics_share_the_lock():
    registry = MetricsRegistry()
    before = registry.counter("made.before")
    registry.make_threadsafe()
    after = registry.counter("made.after")
    gauge = registry.gauge("made.gauge")
    histogram = registry.histogram("made.histogram")
    assert before._lock is registry._shared_lock
    assert after._lock is registry._shared_lock
    assert gauge._lock is registry._shared_lock
    assert histogram._lock is registry._shared_lock


def test_attach_installs_the_lock():
    registry = MetricsRegistry()
    registry.make_threadsafe()
    from repro.obs.metrics import Counter

    foreign = Counter("foreign.counter")
    assert foreign._lock is None
    registry.attach("foreign.counter", foreign)
    assert foreign._lock is registry._shared_lock


def test_contended_increments_are_exact():
    registry = MetricsRegistry()
    registry.make_threadsafe()
    counter = registry.counter("contended.counter")
    histogram = registry.histogram("contended.histogram", buckets=(0.5, 1.0))
    threads = 8
    per_thread = 2_000
    start = threading.Barrier(threads)

    def worker():
        start.wait()
        for _ in range(per_thread):
            counter.inc()
            histogram.observe(0.25)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert int(counter.value) == threads * per_thread
    assert histogram.count == threads * per_thread
    assert histogram.bucket_counts[0] == threads * per_thread


def test_unlocked_registry_still_works():
    registry = MetricsRegistry()
    counter = registry.counter("plain.counter")
    counter.inc(3)
    assert int(counter.value) == 3
    assert counter._lock is None
