"""The shared stats protocol: every stats class is a counter-backed view
with uniform ``snapshot()``/``reset()``/``counters()``, and the DSL-cache
roll contract holds through engine-level invalidation."""

import numpy as np
import pytest

from repro.core.dsl_cache import DSLCache, DSLCacheStats
from repro.core.engine import WhyNotEngine
from repro.core.safe_region import SafeRegionStats
from repro.index.scan import ScanIndex
from repro.index.stats import IndexStats
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.stats import CounterBackedStats

ALL_STATS_CLASSES = [IndexStats, DSLCacheStats, SafeRegionStats]


@pytest.mark.parametrize("cls", ALL_STATS_CLASSES)
class TestUniformProtocol:
    def test_is_counter_backed(self, cls):
        assert issubclass(cls, CounterBackedStats)

    def test_snapshot_covers_every_field_and_reset_zeroes(self, cls):
        stats = cls()
        fields = cls._INT_FIELDS + cls._FLOAT_FIELDS + cls._BOOL_FIELDS
        snap = stats.snapshot()
        assert set(snap) == set(fields)
        for name in cls._INT_FIELDS:
            setattr(stats, name, 3)
        for name in cls._FLOAT_FIELDS:
            setattr(stats, name, 1.5)
        for name in cls._BOOL_FIELDS:
            setattr(stats, name, True)
        assert stats.snapshot() != snap
        stats.reset()
        assert stats.snapshot() == snap

    def test_snapshot_value_types(self, cls):
        stats = cls()
        snap = stats.snapshot()
        for name in cls._INT_FIELDS:
            assert type(snap[name]) is int
        for name in cls._FLOAT_FIELDS:
            assert type(snap[name]) is float
        for name in cls._BOOL_FIELDS:
            assert type(snap[name]) is bool

    def test_keyword_construction_and_equality(self, cls):
        field = cls._INT_FIELDS[0]
        a = cls(**{field: 4})
        b = cls(**{field: 4})
        c = cls(**{field: 5})
        assert getattr(a, field) == 4
        assert a == b
        assert a != c

    def test_unknown_field_raises(self, cls):
        with pytest.raises(TypeError, match="unexpected fields"):
            cls(no_such_field=1)

    def test_counters_share_live_objects(self, cls):
        stats = cls()
        field = cls._INT_FIELDS[0]
        counters = stats.counters()
        assert isinstance(counters[field], Counter)
        counters[field].inc(7)
        assert getattr(stats, field) == 7

    def test_registry_attach_sees_mutations(self, cls):
        stats = cls()
        field = cls._INT_FIELDS[0]
        reg = MetricsRegistry()
        for name, counter in stats.counters().items():
            reg.attach(f"pfx.{name}", counter)
        setattr(stats, field, 9)
        assert reg.snapshot()[f"pfx.{field}"] == 9


class TestDSLCacheRollContract:
    def _cache(self, n=40):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(n, 2))
        return DSLCache(ScanIndex(pts), pts, self_exclude=True)

    def test_full_invalidate_rolls_hit_miss_keeps_invalidations(self):
        cache = self._cache()
        cache.thresholds(0)
        cache.thresholds(0)
        assert cache.stats.threshold_misses == 1
        assert cache.stats.threshold_hits == 1
        cache.invalidate()
        assert cache.stats.hit_miss() == (0, 0)
        assert cache.stats.invalidations == 1
        # New generation counts from zero.
        cache.thresholds(0)
        assert cache.stats.threshold_misses == 1

    def test_partial_invalidate_preserves_counters(self):
        cache = self._cache()
        cache.thresholds(0)
        cache.thresholds(1)
        cache.invalidate(positions=[0])
        assert cache.stats.threshold_misses == 2
        assert cache.stats.invalidations == 1
        cache.thresholds(1)  # survivor still cached
        assert cache.stats.threshold_hits == 1

    def test_roll_returns_pre_roll_snapshot(self):
        stats = DSLCacheStats(threshold_hits=2, region_misses=3, invalidations=1)
        snap = stats.roll()
        assert snap["threshold_hits"] == 2
        assert snap["region_misses"] == 3
        assert stats.hit_miss() == (0, 0)
        assert stats.invalidations == 1

    def test_hit_miss_matches_properties(self):
        stats = DSLCacheStats(
            threshold_hits=2, region_hits=3, threshold_misses=5, region_misses=7
        )
        assert stats.hit_miss() == (stats.hits, stats.misses)
        assert stats.hit_rate == pytest.approx(5 / 17)

    def test_counter_refs_survive_roll(self):
        cache = self._cache()
        cache.thresholds(0)
        cache.invalidate()  # rolls counters in place
        cache.thresholds(0)
        cache.thresholds(0)
        # The cache's internal counter refs must still feed the stats view.
        assert cache.stats.threshold_misses == 1
        assert cache.stats.threshold_hits == 1


class TestEngineInvalidation:
    def _engine(self, n=40, trace=False):
        from repro.config import WhyNotConfig

        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(n, 2))
        return WhyNotEngine(pts, config=WhyNotConfig(trace=trace))

    def test_invalidate_caches_rolls_dsl_stats(self):
        engine = self._engine()
        q = np.array([0.5, 0.5])
        engine.safe_region(q)
        assert engine.dsl_cache.stats.misses > 0
        engine.invalidate_caches()
        assert engine.dsl_cache.stats.hit_miss() == (0, 0)
        assert engine.dsl_cache.stats.invalidations == 1

    def test_without_products_gets_fresh_stats(self):
        engine = self._engine()
        q = np.array([0.5, 0.5])
        engine.safe_region(q)
        reduced, _mapping = engine.without_products([0])
        assert reduced.dsl_cache.stats.hit_miss() == (0, 0)
        assert reduced.dsl_cache.stats.invalidations == 0

    def test_traced_engine_exports_rolled_counters(self):
        engine = self._engine(trace=True)
        q = np.array([0.5, 0.5])
        engine.safe_region(q)
        before = engine.obs.metrics.snapshot()
        assert before["dsl_cache.threshold_misses"] > 0
        engine.invalidate_caches()
        after = engine.obs.metrics.snapshot()
        # The registry shares the same counters, so the roll is visible.
        assert after["dsl_cache.threshold_misses"] == 0
        assert after["dsl_cache.invalidations"] == 1
