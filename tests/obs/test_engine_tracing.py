"""Engine-level tracing: span coverage of the full pipeline, the inert
disabled path, and counter invariance across kernel configurations."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.batch import answer_why_not, answer_why_not_batch
from repro.core.engine import WhyNotEngine
from repro.obs import validate_export

N = 120
REQUIRED_SPANS = {
    "pipeline.answer_why_not",
    "engine.explain",
    "engine.mwp",
    "engine.mqp",
    "engine.mwq",
    "engine.safe_region",
}


def _points(n=N, seed=11):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 2))


def _why_not_position(engine, q):
    members = set(engine.reverse_skyline(q).tolist())
    for position in range(engine.customers.shape[0]):
        if position not in members:
            return position
    raise AssertionError("no why-not customer found")


class TestTracedPipeline:
    def test_full_pipeline_span_coverage(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        q = np.array([0.45, 0.55])
        why_not = _why_not_position(engine, q)
        engine.obs.clear()
        answer_why_not(engine, why_not, q)

        names = {s.name for s in engine.obs.tracer.iter_spans()}
        assert REQUIRED_SPANS <= names
        assert engine.obs.tracer.is_balanced
        # MWQ runs the safe-region build as a child step.
        (pipeline_root,) = engine.obs.tracer.roots
        assert pipeline_root.name == "pipeline.answer_why_not"
        mwq = [c for c in pipeline_root.children if c.name == "engine.mwq"]
        assert mwq and any(
            c.name == "engine.safe_region" for c in mwq[0].children
        )

    def test_every_span_has_wall_time(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        q = np.array([0.45, 0.55])
        answer_why_not(engine, _why_not_position(engine, q), q)
        for span in engine.obs.tracer.iter_spans():
            assert span.closed
            assert span.duration_s is not None and span.duration_s >= 0

    def test_export_validates_and_carries_counters(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        q = np.array([0.45, 0.55])
        answer_why_not(engine, _why_not_position(engine, q), q)
        payload = engine.obs.export(env=True)
        validate_export(payload)
        metrics = payload["metrics"]
        assert metrics["safe_region.members"] >= 1
        assert metrics["region.boxes_created"] > 0
        assert metrics["index.queries"] > 0
        assert "python" in payload["env"]

    def test_batch_span_records_question_count(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        q = np.array([0.45, 0.55])
        why_not = _why_not_position(engine, q)
        engine.obs.clear()
        answer_why_not_batch(engine, [why_not], q)
        (batch_span,) = engine.obs.tracer.find("pipeline.answer_why_not_batch")
        assert batch_span.attributes["questions"] == 1

    def test_safe_region_span_attributes(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        q = np.array([0.45, 0.55])
        engine.safe_region(q)
        (span,) = engine.obs.tracer.find("engine.safe_region")
        assert span.attributes["members"] >= 1
        assert span.attributes["boxes"] >= 1
        assert "early_exit" in span.attributes


class TestDisabledPath:
    def test_untraced_engine_records_nothing(self):
        engine = WhyNotEngine(_points())
        assert not engine.obs.enabled
        q = np.array([0.45, 0.55])
        answer_why_not(engine, _why_not_position(engine, q), q)
        assert engine.obs.tracer.roots == []
        assert engine.obs.tracer.spans_started == 0

    def test_untraced_engine_leaves_region_counters_untouched(self):
        engine = WhyNotEngine(_points())
        q = np.array([0.45, 0.55])
        engine.safe_region(q)
        snap = engine.obs.metrics.snapshot()
        # No kernels.* / region.* metrics are even registered untraced;
        # the attached stats views still work but the obs-only counters
        # stay silent.
        assert not any(name.startswith("region.") for name in snap)
        assert not any(name.startswith("kernels.") for name in snap)
        assert snap["engine.membership_tests"] == 0

    def test_stats_views_still_work_untraced(self):
        engine = WhyNotEngine(_points())
        q = np.array([0.45, 0.55])
        engine.safe_region(q)
        assert engine.dsl_cache.stats.misses > 0
        assert engine.safe_region_totals.members >= 1


class TestCounterInvariance:
    @pytest.mark.parametrize("trace", [False, True])
    def test_membership_tests_invariant_under_batch_kernels(self, trace):
        pts = _points()
        q = np.array([0.45, 0.55])
        counts = {}
        for batch in (False, True):
            engine = WhyNotEngine(
                pts, config=WhyNotConfig(trace=trace, batch_kernels=batch)
            )
            probe = [0, 1, 2, 3, 4]
            mask = engine.membership_mask(probe, q)
            counts[batch] = engine.obs.metrics.snapshot()[
                "engine.membership_tests"
            ]
            assert mask.shape == (len(probe),)
        # One increment per membership predicate, regardless of path.
        assert counts[False] == counts[True] == 5

    def test_reverse_skyline_same_result_traced_and_untraced(self):
        pts = _points()
        q = np.array([0.45, 0.55])
        untraced = WhyNotEngine(pts)
        traced = WhyNotEngine(pts, config=WhyNotConfig(trace=True))
        np.testing.assert_array_equal(
            untraced.reverse_skyline(q), traced.reverse_skyline(q)
        )

    def test_safe_region_identical_traced_and_untraced(self):
        pts = _points()
        q = np.array([0.45, 0.55])
        untraced = WhyNotEngine(pts).safe_region(q)
        traced = WhyNotEngine(pts, config=WhyNotConfig(trace=True)).safe_region(q)
        assert len(untraced.region) == len(traced.region)
        assert untraced.area() == traced.area()


class TestEngineTotals:
    def test_safe_region_totals_accumulate_across_queries(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        engine.safe_region(np.array([0.45, 0.55]))
        first = engine.safe_region_totals.members
        engine.safe_region(np.array([0.52, 0.48]))
        assert engine.safe_region_totals.members >= first
        assert engine.safe_region_totals.build_seconds > 0

    def test_per_call_stats_stay_per_call(self):
        engine = WhyNotEngine(_points(), config=WhyNotConfig(trace=True))
        sr = engine.safe_region(np.array([0.45, 0.55]))
        assert sr.stats is engine.last_safe_region_stats
        assert sr.stats is not engine.safe_region_totals
