"""Tracer and span semantics: fake-clock timing, nesting, balance,
and the inert disabled path."""

import pytest

from repro.obs.tracer import NULL_SPAN, Span, Tracer


class FakeClock:
    """Deterministic monotonic clock advancing by a fixed step per read."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanTiming:
    def test_fake_clock_duration_is_deterministic(self):
        tracer = Tracer(enabled=True, clock=FakeClock(start=10.0, step=0.5))
        with tracer.span("work") as span:
            pass
        assert span.start_s == 10.0
        assert span.end_s == 10.5
        assert span.duration_s == 0.5
        assert span.closed

    def test_open_span_has_no_duration(self):
        span = Span("open")
        span.start_s = 1.0
        assert span.duration_s is None
        assert not span.closed

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("work", q="q1") as span:
            span.set(members=3).set(boxes=7)
        assert span.attributes == {"q": "q1", "members": 3, "boxes": 7}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (span,) = tracer.roots
        assert span.closed
        assert "kaput" in span.attributes["error"]
        assert tracer.is_balanced


class TestNesting:
    def test_children_attach_to_innermost_open_span(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        (outer,) = tracer.roots
        assert [c.name for c in outer.children] == ["mid", "sibling"]
        (inner,) = outer.children[0].children
        assert inner.name == "inner"

    def test_walk_is_preorder(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        names = [s.name for s in tracer.iter_spans()]
        assert names == ["a", "b", "c", "d"]

    def test_children_timed_inside_parent(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_sequential_roots(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_tracks_open_stack(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None


class TestBalance:
    def test_balanced_after_clean_run(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.is_balanced
        assert tracer.spans_started == tracer.spans_closed == 2

    def test_unclosed_span_is_unbalanced(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        handle = tracer.span("dangling")
        handle.__enter__()
        assert not tracer.is_balanced

    def test_find_by_name(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        assert len(tracer.find("repeated")) == 3
        assert tracer.find("absent") == []

    def test_clear_resets_everything(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.is_balanced
        assert tracer.spans_started == 0


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other", attr=1) is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        calls = []

        def counting_clock():
            calls.append(1)
            return 0.0

        tracer = Tracer(enabled=False, clock=counting_clock)
        with tracer.span("work") as span:
            span.set(ignored=True)
        assert tracer.roots == []
        assert tracer.spans_started == 0
        assert tracer.is_balanced
        assert calls == []  # no clock reads on the disabled path

    def test_null_span_full_surface(self):
        assert NULL_SPAN.set(a=1) is NULL_SPAN
        with NULL_SPAN as s:
            assert s is NULL_SPAN


class TestRootRetention:
    def test_unbounded_by_default(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        for i in range(100):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.roots) == 100
        assert tracer.spans_dropped == 0

    def test_max_roots_evicts_oldest_tree(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_roots=2)
        for name in ("a", "b", "c", "d"):
            with tracer.span(name):
                pass
        assert [r.name for r in tracer.roots] == ["c", "d"]
        assert tracer.spans_dropped == 2

    def test_eviction_counts_every_span_of_the_dropped_tree(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_roots=1)
        with tracer.span("bushy"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        with tracer.span("next"):
            pass
        assert [r.name for r in tracer.roots] == ["next"]
        assert tracer.spans_dropped == 3

    def test_balance_survives_eviction(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_roots=1)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.is_balanced
        assert tracer.spans_started == tracer.spans_closed == 5

    def test_clear_resets_dropped(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_roots=1)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.spans_dropped == 2
        tracer.clear()
        assert tracer.spans_dropped == 0

    def test_max_roots_validated(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True, max_roots=0)
        with pytest.raises(ValueError):
            Tracer(enabled=True, max_roots=-3)

    def test_disabled_tracer_with_bound_stays_inert(self):
        calls = []

        def counting_clock():
            calls.append(1)
            return 0.0

        tracer = Tracer(enabled=False, clock=counting_clock, max_roots=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.roots == []
        assert tracer.spans_dropped == 0
        assert calls == []  # the fast path never touches retention

    def test_repr_reports_dropped(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_roots=1)
        for i in range(2):
            with tracer.span(f"s{i}"):
                pass
        assert "dropped=1" in repr(tracer)


class TestSpanDict:
    def test_to_dict_round_trip_shape(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=0.25))
        with tracer.span("outer", q=1):
            with tracer.span("inner"):
                pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "outer"
        assert d["attributes"] == {"q": 1}
        assert d["duration_s"] == pytest.approx(0.75)
        assert len(d["children"]) == 1
        assert d["children"][0]["name"] == "inner"
