"""Public-API audit of ``repro.obs``: ``__all__`` is accurate, and the
journal's provenance records never collide with the experiment layer's
measurement records."""

import repro.experiments.records as experiment_records
import repro.obs as obs


class TestAllAudit:
    def test_every_all_name_resolves(self):
        for name in obs.__all__:
            assert hasattr(obs, name), f"__all__ lists missing name {name!r}"

    def test_all_is_sorted_and_unique(self):
        assert len(obs.__all__) == len(set(obs.__all__))

    def test_journal_and_drift_surface_is_public(self):
        for name in (
            "QueryJournal",
            "JournalRecord",
            "validate_journal",
            "aggregate_drift",
            "DriftReport",
            "OperatorDrift",
            "DEFAULT_DRIFT_BAND",
            "TRACKED_COUNTER_PREFIXES",
            "SCHEMA_V1",
            "prom_name",
        ):
            assert name in obs.__all__

    def test_submodule_alls_are_subsets_of_package_exports(self):
        from repro.obs import drift, journal

        for module in (journal, drift):
            for name in module.__all__:
                assert name in obs.__all__, (
                    f"{module.__name__}.__all__ has {name!r} missing from "
                    "repro.obs.__all__"
                )


class TestNoRecordNameCollision:
    def test_journal_record_is_not_a_query_record(self):
        # JournalRecord (runtime provenance) and QueryRecord (experiment
        # measurement) are deliberately distinct classes in distinct
        # layers; neither module may export the other's name.
        assert not hasattr(experiment_records, "JournalRecord")
        assert not hasattr(obs, "QueryRecord")

    def test_export_names_do_not_overlap(self):
        experiment_names = set(getattr(experiment_records, "__all__", [])) or {
            name
            for name in dir(experiment_records)
            if not name.startswith("_")
        }
        overlap = set(obs.__all__) & experiment_names
        assert not overlap, f"obs and experiments.records both export {overlap}"

    def test_cross_reference_docstrings_present(self):
        # The rename-avoidance contract is documented on both classes.
        assert "QueryRecord" in obs.JournalRecord.__doc__
        assert "JournalRecord" in experiment_records.QueryRecord.__doc__
