"""Query-journal semantics: ring retention, counter deltas, latency
histograms, export round-trips, validation, and the engine hook."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box
from repro.obs import (
    JournalRecord,
    MetricsRegistry,
    Observability,
    QueryJournal,
    validate_journal,
)

BOUNDS = Box(np.zeros(2), np.ones(2))


def _record(journal: QueryJournal, i: int, **overrides) -> JournalRecord:
    fields = {
        "surface": "safe_region",
        "operator": "sr-cached-fold",
        "epoch": 0,
        "config_fingerprint": "abc123",
        "estimated_seconds": 0.001,
        "actual_seconds": 0.002 + i * 1e-4,
        "counters": {"kernels.tiles": i + 1},
    }
    fields.update(overrides)
    return journal.record(**fields)


class TestRingRetention:
    def test_capacity_bounds_retained_records(self):
        journal = QueryJournal(capacity=3)
        for i in range(7):
            _record(journal, i)
        assert len(journal) == 3
        assert journal.appended == 7
        assert journal.dropped == 4

    def test_eviction_is_fifo_and_seq_survives(self):
        journal = QueryJournal(capacity=2)
        for i in range(5):
            _record(journal, i)
        seqs = [entry.seq for entry in journal]
        assert seqs == [3, 4]  # oldest evicted, seq keeps counting

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryJournal(capacity=0)

    def test_clear_resets_accounting(self):
        journal = QueryJournal(capacity=2)
        for i in range(4):
            _record(journal, i)
        journal.clear()
        assert len(journal) == 0
        assert journal.appended == 0
        assert journal.dropped == 0

    def test_records_oldest_first(self):
        journal = QueryJournal(capacity=8)
        for i in range(3):
            _record(journal, i)
        assert [entry.seq for entry in journal.records()] == [0, 1, 2]


class TestCounterDeltas:
    def test_delta_tracks_only_prefixed_counters(self):
        metrics = MetricsRegistry()
        tracked = metrics.counter("kernels.tiles")
        untracked = metrics.counter("other.stuff")
        journal = QueryJournal(metrics=metrics)
        before = journal.counter_snapshot()
        tracked.inc(5)
        untracked.inc(9)
        assert journal.counter_delta(before) == {"kernels.tiles": 5}

    def test_zero_deltas_are_omitted(self):
        metrics = MetricsRegistry()
        metrics.counter("kernels.tiles")
        metrics.counter("prune.pairs_total").inc(2)
        journal = QueryJournal(metrics=metrics)
        before = journal.counter_snapshot()
        metrics.counter("prune.pairs_total").inc(3)
        assert journal.counter_delta(before) == {"prune.pairs_total": 3}

    def test_counter_born_mid_request_counts_from_zero(self):
        metrics = MetricsRegistry()
        journal = QueryJournal(metrics=metrics)
        before = journal.counter_snapshot()
        metrics.counter("shard.worker.kernels.tiles").inc(4)
        assert journal.counter_delta(before) == {
            "shard.worker.kernels.tiles": 4
        }

    def test_gauges_and_histograms_are_never_tracked(self):
        metrics = MetricsRegistry()
        metrics.gauge("engine.dataset_epoch").set(3)
        metrics.histogram("kernels.latency").observe(0.5)
        journal = QueryJournal(metrics=metrics)
        assert journal.counter_snapshot() == {}


class TestLatencyHistograms:
    def test_record_feeds_surface_and_operator_histograms(self):
        metrics = MetricsRegistry()
        journal = QueryJournal(metrics=metrics)
        _record(journal, 0)
        _record(journal, 1)
        surface = metrics.get("journal.surface.safe_region.seconds")
        op = metrics.get("journal.op.sr-cached-fold.seconds")
        assert surface.count == 2
        assert op.count == 2
        assert op.sum == pytest.approx(0.0041)

    def test_metrics_free_journal_records_without_histograms(self):
        journal = QueryJournal()
        entry = _record(journal, 0)
        assert entry.seq == 0
        assert len(journal) == 1


class TestExportRoundTrip:
    def test_jsonl_round_trips_through_from_dict(self):
        import json

        journal = QueryJournal()
        for i in range(3):
            _record(journal, i)
        lines = journal.to_jsonl().strip().split("\n")
        restored = [
            JournalRecord.from_dict(json.loads(line)) for line in lines
        ]
        assert restored == journal.records()

    def test_write_jsonl(self, tmp_path):
        journal = QueryJournal()
        _record(journal, 0)
        path = tmp_path / "journal.jsonl"
        journal.write_jsonl(path)
        assert path.read_text() == journal.to_jsonl()

    def test_to_payload_shape(self):
        journal = QueryJournal(capacity=2)
        for i in range(3):
            _record(journal, i)
        payload = journal.to_payload()
        assert payload["capacity"] == 2
        assert payload["appended"] == 3
        assert payload["dropped"] == 1
        assert [r["seq"] for r in payload["records"]] == [1, 2]

    def test_summary_aggregates_per_surface(self):
        journal = QueryJournal()
        _record(journal, 0)
        _record(journal, 1, surface="membership", operator="membership-kernel")
        summary = journal.summary()
        assert summary["surfaces"]["safe_region"]["count"] == 1
        assert summary["surfaces"]["membership"]["count"] == 1
        assert summary["appended"] == 2


class TestValidateJournal:
    def test_consistent_journal_passes(self):
        journal = QueryJournal(capacity=2)
        for i in range(5):
            _record(journal, i)
        validate_journal(journal)

    def test_non_monotone_seq_rejected(self):
        a = JournalRecord(2, "s", "op", 0, "fp", 0.0, 0.0, {})
        b = JournalRecord(2, "s", "op", 0, "fp", 0.0, 0.0, {})
        with pytest.raises(ValueError, match="seq"):
            validate_journal([a, b])

    def test_negative_duration_rejected(self):
        bad = JournalRecord(0, "s", "op", 0, "fp", 0.0, -1.0, {})
        with pytest.raises(ValueError, match="negative duration"):
            validate_journal([bad])

    def test_empty_surface_rejected(self):
        bad = JournalRecord(0, "", "op", 0, "fp", 0.0, 0.0, {})
        with pytest.raises(ValueError, match="surface"):
            validate_journal([bad])

    def test_malformed_counters_rejected(self):
        bad = JournalRecord(0, "s", "op", 0, "fp", 0.0, 0.0, {"k": "oops"})
        with pytest.raises(ValueError, match="not numeric"):
            validate_journal([bad])

    def test_tampered_accounting_rejected(self):
        # dropped is derived (appended - retained), so the detectable
        # lie is an appended count below what the ring retains.
        journal = QueryJournal(capacity=4)
        _record(journal, 0)
        _record(journal, 1)
        journal.appended = 1
        with pytest.raises(ValueError, match="negative drop count"):
            validate_journal(journal)


class TestEngineIntegration:
    def _engine(self, **config_kwargs) -> WhyNotEngine:
        rng = np.random.default_rng(11)
        return WhyNotEngine(
            rng.random((60, 2)),
            backend="scan",
            config=WhyNotConfig(**config_kwargs),
            bounds=BOUNDS,
        )

    def test_journal_off_by_default(self):
        engine = self._engine(trace=True)
        assert engine.journal is None
        engine.reverse_skyline(np.array([0.5, 0.5]))

    def test_one_record_per_executed_plan(self):
        engine = self._engine(trace=True, journal=True)
        q = np.array([0.5, 0.5])
        engine.reverse_skyline(q)
        engine.safe_region(q)
        engine.membership_mask([0, 1, 2], q)
        journal = engine.journal
        assert [entry.surface for entry in journal] == [
            "reverse_skyline",
            "safe_region",
            "membership",
        ]
        validate_journal(journal)
        for entry in journal:
            assert entry.operator
            assert entry.epoch == engine.dataset_epoch
            assert entry.config_fingerprint == engine._config_fp_digest
            assert entry.actual_seconds >= 0.0

    def test_records_carry_kernel_counter_deltas(self):
        engine = self._engine(trace=True, journal=True)
        engine.membership_mask(list(range(40)), np.array([0.5, 0.5]))
        (entry,) = engine.journal.records()
        assert any(name.startswith("kernels.") for name in entry.counters)

    def test_journal_works_without_trace(self):
        # Journal without tracing: records are written, but the kernel
        # counters are not threaded, so deltas stay sparse.
        engine = self._engine(journal=True)
        engine.reverse_skyline(np.array([0.5, 0.5]))
        assert len(engine.journal) == 1

    def test_epoch_recorded_across_mutations(self):
        engine = self._engine(trace=True, journal=True)
        q = np.array([0.5, 0.5])
        engine.reverse_skyline(q)
        engine.insert_products(np.array([[0.25, 0.75]]))
        engine.reverse_skyline(q)
        epochs = [entry.epoch for entry in engine.journal]
        assert epochs[0] < epochs[-1]

    def test_capacity_comes_from_config(self):
        engine = self._engine(trace=True, journal=True, journal_capacity=2)
        q = np.array([0.5, 0.5])
        for _ in range(3):
            engine.reverse_skyline(np.copy(q))
            engine.safe_region(np.copy(q))
        assert engine.journal.capacity == 2
        assert len(engine.journal) == 2
        assert engine.journal.dropped > 0

    def test_journal_capacity_validated(self):
        with pytest.raises(ValueError):
            WhyNotConfig(journal_capacity=0)

    def test_observability_clear_clears_journal(self):
        obs = Observability(enabled=True)
        obs.journal = QueryJournal(metrics=obs.metrics)
        _record(obs.journal, 0)
        obs.clear()
        assert len(obs.journal) == 0
        assert obs.journal.appended == 0
