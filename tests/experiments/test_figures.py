"""Tests for the figure series generators."""

import numpy as np
import pytest

from repro.data.synthetic import generate_uniform
from repro.experiments.figures import figure14, figure15, figure17


@pytest.fixture(scope="module")
def fig14_series():
    return figure14(sizes=(600,), targets=tuple(range(1, 9)), seed=7)


class TestFigure14:
    def test_series_per_dataset(self, fig14_series):
        assert set(fig14_series) == {"CarDB-600"}

    def test_points_are_rsl_area_pairs(self, fig14_series):
        for points in fig14_series.values():
            for rsl_size, area in points:
                assert rsl_size >= 1
                assert 0.0 <= area <= 1.0  # Normalised by universe volume.

    def test_area_shrinks_with_rsl(self, fig14_series):
        """The paper's headline shape: larger reverse skylines give
        smaller safe regions (monotone trend, not strict per-point)."""
        for points in fig14_series.values():
            if len(points) < 4:
                continue
            sizes = np.array([p[0] for p in points], dtype=float)
            areas = np.array([p[1] for p in points])
            r = np.corrcoef(sizes, areas)[0, 1]
            assert r < 0.3, points  # Not increasing.
            # The largest-RSL area must be below the smallest-RSL area.
            assert areas[-1] <= areas[0] + 1e-12


@pytest.fixture(scope="module")
def small_panels():
    ds = generate_uniform(500, seed=3)
    return (
        figure15(datasets=[ds], targets=(1, 2, 3), seed=5),
        figure17(datasets=[ds], targets=(1, 2, 3), seed=5, k=3),
    )


class TestFigure15:
    def test_series_names(self, small_panels):
        fig15, _ = small_panels
        series = fig15["UN-500"]
        assert set(series) == {"MWP", "MQP", "SR", "MWQ"}

    def test_times_non_negative(self, small_panels):
        fig15, _ = small_panels
        for series in fig15.values():
            for points in series.values():
                for _x, y in points:
                    assert y >= 0.0

    def test_mwq_includes_sr_time(self, small_panels):
        fig15, _ = small_panels
        series = fig15["UN-500"]
        for (x1, sr_t), (x2, mwq_t) in zip(series["SR"], series["MWQ"]):
            assert x1 == x2
            assert mwq_t >= sr_t


class TestFigure17:
    def test_approx_series_present(self, small_panels):
        _, fig17 = small_panels
        series = fig17["UN-500"]
        assert "Approx-MWQ(k=3)" in series
        assert "MWP" in series and "MQP" in series
        assert "SR" not in series  # Exact SR not part of Figure 17.
