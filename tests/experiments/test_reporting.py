"""Tests for the text rendering of tables and figures."""

from repro.experiments.reporting import (
    format_block,
    format_quality_table,
    format_series,
    render_figure,
    render_tables,
)
from repro.experiments.tables import QualityRow


def rows():
    return [
        QualityRow("D", 1, 0.5, 0.7, 0.0, approx={10: 0.1}),
        QualityRow("D", 3, float("nan"), 0.2, 0.2, approx={10: 0.3}),
    ]


class TestQualityTable:
    def test_headers_and_rows(self):
        text = format_quality_table(rows())
        assert "MWP" in text and "MQP" in text and "MWQ" in text
        assert "q1, |RSL|=1" in text
        assert "0.500000000" in text

    def test_approx_columns(self):
        text = format_quality_table(rows(), approx_ks=(10,))
        assert "Approx-MWQ(k=10)" in text
        assert "0.100000000" in text

    def test_nan_rendered(self):
        text = format_quality_table(rows())
        assert "n/a" in text

    def test_zero_cost_rendered_fully(self):
        text = format_quality_table(rows())
        assert "0.000000000" in text


class TestSeriesAndBlocks:
    def test_series_layout(self):
        text = format_series({"MWP": [(1, 0.001), (2, 0.002)]})
        assert "[MWP]" in text
        assert "|RSL|=  1" in text

    def test_block_has_title_bar(self):
        text = format_block("Title", "body")
        assert text.startswith("=")
        assert "Title" in text and "body" in text

    def test_render_tables_multiblock(self):
        text = render_tables({"A": rows(), "B": rows()})
        assert text.count("q1, |RSL|=1") == 2

    def test_render_figure(self):
        text = render_figure({"D": {"MWP": [(1, 0.5)]}})
        assert "[MWP]" in text and "D" in text
