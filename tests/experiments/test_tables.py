"""Tests for the table generators (small-scale instances)."""

import numpy as np
import pytest

from repro.experiments.tables import (
    QualityRow,
    cardb_datasets,
    synthetic_datasets,
    table3,
    table4,
    table5,
    table6,
)


class TestDatasetFactories:
    def test_cardb_sizes(self):
        datasets = cardb_datasets((500, 1000))
        assert [d.size for d in datasets] == [500, 1000]
        assert datasets[0].name == "CarDB-500"

    def test_synthetic_grid(self):
        datasets = synthetic_datasets((300,), kinds=("UN", "AC"))
        assert [d.name for d in datasets] == ["UN-300", "AC-300"]


@pytest.fixture(scope="module")
def t3():
    return table3(sizes=(600,), targets=(1, 2, 3), seed=7)


class TestTable3:
    def test_one_block_per_size(self, t3):
        assert set(t3) == {"CarDB-600"}

    def test_rows_have_costs(self, t3):
        rows = t3["CarDB-600"]
        assert rows, "no rows produced"
        for row in rows:
            assert isinstance(row, QualityRow)
            assert np.isfinite(row.mwp)
            assert np.isfinite(row.mqp)
            assert np.isfinite(row.mwq)
            assert row.approx is None

    def test_paper_shape_holds(self, t3):
        for row in t3["CarDB-600"]:
            assert row.mwq <= row.mwp + 1e-9

    def test_rows_sorted_by_rsl(self, t3):
        sizes = [row.rsl_size for row in t3["CarDB-600"]]
        assert sizes == sorted(sizes)


class TestTable4:
    def test_three_distributions(self):
        result = table4(sizes=(400,), targets=(1, 2), seed=11)
        assert set(result) == {"UN-400", "CO-400", "AC-400"}
        for rows in result.values():
            for row in rows:
                assert row.mwq <= row.mwp + 1e-9


@pytest.fixture(scope="module")
def t5():
    return table5(sizes=(500,), ks=(3, 6), targets=(1, 2, 3), seed=7)


class TestTable5:
    def test_approx_columns_present(self, t5):
        for rows in t5.values():
            for row in rows:
                assert set(row.approx) == {3, 6}

    def test_approx_no_worse_than_mwp(self, t5):
        """The paper's claim: 'the result is no worse than the one
        received from MWP'."""
        for rows in t5.values():
            for row in rows:
                for cost in row.approx.values():
                    assert cost <= row.mwp + 1e-9


class TestTable6:
    def test_synthetic_with_k(self):
        result = table6(sizes=(400,), ks=(3,), targets=(1, 2), seed=11)
        assert set(result) == {"UN-400", "CO-400", "AC-400"}
        for rows in result.values():
            for row in rows:
                assert 3 in row.approx
