"""Tests for the ablation experiment module."""

import numpy as np
import pytest

from repro.data.synthetic import generate_uniform
from repro.experiments.ablation import (
    ablation_backends,
    ablation_k_sweep,
    ablation_pruning,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_uniform(600, seed=3)


class TestBackends:
    def test_rows_consistent(self, dataset):
        rows = ablation_backends(dataset, n_queries=20, seed=1)
        assert [r["backend"] for r in rows] == ["scan", "rtree", "grid", "kdtree"]
        hits = {r["total_hits"] for r in rows}
        assert len(hits) == 1  # All backends agree.

    def test_indexes_touch_fewer_points_than_scan(self, dataset):
        rows = ablation_backends(dataset, n_queries=20, seed=1)
        by_name = {r["backend"]: r for r in rows}
        assert by_name["rtree"]["point_comparisons"] < by_name["scan"]["point_comparisons"]
        assert by_name["grid"]["point_comparisons"] < by_name["scan"]["point_comparisons"]


class TestPruning:
    def test_bbrs_faster_and_fewer_windows(self, dataset):
        rows = ablation_pruning(dataset, n_queries=5, seed=1)
        by_name = {r["method"]: r for r in rows}
        assert by_name["bbrs"]["window_queries"] < by_name["naive"]["window_queries"]
        assert by_name["bbrs"]["seconds"] < by_name["naive"]["seconds"]


class TestKSweep:
    def test_rows_and_monotone_area(self, dataset):
        rows = ablation_k_sweep(dataset, ks=(2, 8), targets=(2, 3, 4), seed=2)
        assert rows[0]["k"] == "exact"
        assert len(rows) == 3
        k_rows = rows[1:]
        # Area kept is monotone non-decreasing in k.
        assert k_rows[0]["mean_area_kept"] <= k_rows[1]["mean_area_kept"] + 1e-9
        for row in k_rows:
            assert 0.0 <= row["mean_area_kept"] <= 1.0 + 1e-9

    def test_approx_cost_at_least_exact_mean(self, dataset):
        rows = ablation_k_sweep(dataset, ks=(3,), targets=(2, 3, 4), seed=2)
        if len(rows) < 2:
            pytest.skip("no workload")
        # Mean approx cost is bounded below by mean exact cost minus noise
        # only in expectation; assert the weaker always-true direction:
        # the approximate answer cannot beat MWP, which exact MWQ equals
        # or beats, so means stay within a sane band.
        assert np.isfinite(rows[1]["mean_cost"])

    def test_empty_workload(self):
        tiny = generate_uniform(12, seed=1)
        rows = ablation_k_sweep(tiny, ks=(2,), targets=(500,), seed=1)
        assert rows == []
