"""Tests for the experiment record types."""

import numpy as np

from repro.experiments.records import ApproxOutcome, DatasetResult, QueryRecord


class TestQueryRecord:
    def make(self, rsl=3):
        return QueryRecord(
            dataset="D", rsl_size=rsl, query=np.zeros(2), why_not_position=0
        )

    def test_defaults(self):
        record = self.make()
        assert np.isnan(record.mwp_cost)
        assert record.approx == {}
        assert record.mwq_case == ""

    def test_total_time_sums(self):
        record = self.make()
        record.sr_time = 1.5
        record.mwq_time = 0.5
        assert record.mwq_total_time == 2.0

    def test_approx_outcome_total(self):
        outcome = ApproxOutcome(k=10, cost=0.1, sr_time=0.2, mwq_time=0.3,
                                sr_area=0.5)
        assert outcome.total_time == 0.5


class TestDatasetResult:
    def test_sorted_records(self):
        result = DatasetResult(dataset="D", size=100)
        for rsl in (5, 1, 3):
            record = QueryRecord(
                dataset="D", rsl_size=rsl, query=np.zeros(2), why_not_position=0
            )
            result.records.append(record)
        assert [r.rsl_size for r in result.sorted_records()] == [1, 3, 5]
