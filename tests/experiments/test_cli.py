"""Tests for the CLI harness."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert args.experiment == "table3"
        assert args.backend == "scan"

    def test_sizes_override(self):
        args = build_parser().parse_args(["table4", "--sizes", "100", "200"])
        assert args.sizes == [100, 200]

    def test_full_flag(self):
        args = build_parser().parse_args(["fig14", "--full"])
        assert args.full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_table3_small(self, capsys):
        code = main(["table3", "--sizes", "300", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "MWQ" in out
        assert "regenerated" in out

    def test_fig14_small(self, capsys):
        code = main(["fig14", "--sizes", "300", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "|RSL|=" in out

    def test_table5_small(self, capsys):
        code = main(
            ["table5", "--sizes", "300", "--seed", "1", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Approx-MWQ(k=3)" in out


class TestPlotAndOutput:
    def test_plot_flag_adds_chart(self, capsys):
        code = main(["fig14", "--sizes", "300", "--seed", "1", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(log scale)" in out
        assert "o=CarDB-300" in out

    def test_output_file_written(self, capsys, tmp_path):
        target = tmp_path / "out.txt"
        code = main(
            ["table4", "--sizes", "300", "--seed", "1", "--output", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert "Table IV" in text
        assert text == capsys.readouterr().out


class TestRunArchive:
    def test_run_writes_json(self, capsys, tmp_path):
        target = tmp_path / "records.json"
        code = main(
            ["run", "--sizes", "250", "--seed", "2", "--json", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiment run" in out
        assert "archived" in out

        from repro.data.io import load_results_json

        results = load_results_json(target)
        assert len(results) == 4  # CarDB + UN + CO + AC.
        assert all(r.records for r in results)

    def test_validate_exit_code_zero_on_pass(self):
        code = main(["validate", "--sizes", "900", "--seed", "7", "--k", "10"])
        assert code == 0


class TestTraceExperiment:
    def test_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["trace", "--trace", "--metrics-out", "obs.json"]
        )
        assert args.experiment == "trace"
        assert args.trace
        assert args.metrics_out == "obs.json"

    def test_trace_prints_span_tree_and_counters(self, capsys):
        code = main(["trace", "--sizes", "250", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Traced workload" in out
        assert "pipeline.answer_why_not" in out
        assert "engine.safe_region" in out
        assert "counters:" in out
        assert "safe_region.members" in out

    def test_trace_metrics_out_validates(self, capsys, tmp_path):
        import json

        target = tmp_path / "obs.json"
        code = main(
            ["trace", "--sizes", "250", "--seed", "1",
             "--metrics-out", str(target)]
        )
        assert code == 0

        from repro.obs import validate_export

        payload = json.loads(target.read_text())
        validate_export(payload)
        assert payload["balanced"] is True
        assert payload["experiment"] == "trace"
        names = set()

        def collect(span):
            names.add(span["name"])
            for child in span.get("children", []):
                collect(child)

        for span in payload["spans"]:
            collect(span)
        assert {
            "pipeline.answer_why_not",
            "engine.explain",
            "engine.mwp",
            "engine.mqp",
            "engine.mwq",
            "engine.safe_region",
        } <= names

    def test_run_honours_trace(self, capsys, tmp_path):
        import json

        target = tmp_path / "obs.json"
        code = main(
            ["run", "--sizes", "250", "--seed", "2", "--trace",
             "--metrics-out", str(target)]
        )
        assert code == 0
        assert "observability payloads" in capsys.readouterr().out

        from repro.obs import validate_export

        payload = json.loads(target.read_text())
        assert len(payload["datasets"]) == 4
        for sub in payload["datasets"].values():
            validate_export(sub)

    def test_validate_honours_trace(self, capsys, tmp_path):
        import json

        target = tmp_path / "obs.json"
        code = main(
            ["validate", "--sizes", "400", "--seed", "7", "--k", "10",
             "--trace", "--metrics-out", str(target)]
        )
        code_out = capsys.readouterr().out
        assert "observability export validated" in code_out

        from repro.obs import validate_export

        validate_export(json.loads(target.read_text()))


class TestExplainExperiment:
    def test_explain_prints_plan_trees(self, capsys):
        code = main(["explain", "--sizes", "250", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN over UN-250" in out
        assert "planner=auto" in out
        # One report per surface, with operators and both cost columns.
        for surface in (
            "surface=reverse_skyline",
            "surface=membership",
            "surface=explain",
            "surface=mwp",
            "surface=mqp",
            "surface=safe_region",
            "surface=mwq",
            "surface=batch",
        ):
            assert surface in out
        assert "est=" in out and "actual=" in out
        assert "plan cache: considered=" in out

    def test_explain_rtree_backend(self, capsys):
        code = main(
            ["explain", "--sizes", "200", "--seed", "2", "--backend", "rtree"]
        )
        assert code == 0
        assert "backend=rtree" in capsys.readouterr().out


class TestUpdates:
    def test_updates_passes_and_exits_zero(self, capsys):
        code = main(["updates", "--sizes", "150", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[FAIL]" not in out
        assert "all checks passed" in out
        assert "scoped_considered == evicted_scoped + retained_scoped" in out

    def test_updates_covers_both_conventions(self, capsys):
        main(["updates", "--sizes", "150", "--seed", "3"])
        out = capsys.readouterr().out
        assert "monochromatic" in out
        assert "bichromatic" in out

    def test_updates_rtree_backend(self, capsys):
        code = main(
            ["updates", "--sizes", "120", "--seed", "3", "--backend", "rtree"]
        )
        assert code == 0
        assert "[FAIL]" not in capsys.readouterr().out
