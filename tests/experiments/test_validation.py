"""Tests for the claim-validation checks (on hand-built records)."""

import numpy as np
import pytest

from repro.experiments.records import ApproxOutcome, QueryRecord
from repro.experiments.validation import (
    check_approx_area_subset,
    check_approx_not_worse_than_mwp,
    check_mqp_usually_most_expensive,
    check_mwq_never_worse_than_mwp,
    check_overlap_cases_zero_cost,
    check_safe_region_shrinks,
    check_sr_dominates_mwq_time,
    run_all_checks,
)


def record(
    rsl=3,
    mwp=0.5,
    mqp=0.9,
    mwq=0.4,
    case="C2",
    sr_area=0.1,
    sr_time=1.0,
    mwq_time=0.2,
    approx_cost=None,
    approx_area=None,
):
    rec = QueryRecord(
        dataset="D",
        rsl_size=rsl,
        query=np.zeros(2),
        why_not_position=0,
        mwp_cost=mwp,
        mqp_cost=mqp,
        mwq_cost=mwq,
        mwq_case=case,
        sr_area=sr_area,
        sr_time=sr_time,
        mwq_time=mwq_time,
    )
    if approx_cost is not None:
        rec.approx[10] = ApproxOutcome(
            k=10,
            cost=approx_cost,
            sr_time=0.01,
            mwq_time=0.01,
            sr_area=approx_area if approx_area is not None else sr_area / 2,
        )
    return rec


GOOD = [
    record(rsl=1, mwp=0.5, mqp=0.9, mwq=0.0, case="C1", sr_area=0.5,
           approx_cost=0.1),
    record(rsl=3, mwp=0.4, mqp=0.8, mwq=0.3, sr_area=0.1, approx_cost=0.35),
    record(rsl=6, mwp=0.3, mqp=0.7, mwq=0.3, sr_area=0.01, approx_cost=0.3),
    record(rsl=9, mwp=0.2, mqp=0.6, mwq=0.2, sr_area=0.001, approx_cost=0.2),
]


class TestIndividualChecks:
    def test_mwq_check_passes_good(self):
        assert check_mwq_never_worse_than_mwp(GOOD).passed

    def test_mwq_check_fails_violation(self):
        bad = GOOD + [record(mwp=0.1, mwq=0.2)]
        assert not check_mwq_never_worse_than_mwp(bad).passed

    def test_mwq_check_fails_empty(self):
        assert not check_mwq_never_worse_than_mwp([]).passed

    def test_c1_zero_cost(self):
        assert check_overlap_cases_zero_cost(GOOD).passed
        bad = [record(case="C1", mwq=0.1)]
        assert not check_overlap_cases_zero_cost(bad).passed

    def test_c1_vacuous_pass(self):
        only_c2 = [record(case="C2", mwq=0.3)]
        assert check_overlap_cases_zero_cost(only_c2).passed

    def test_mqp_worst(self):
        assert check_mqp_usually_most_expensive(GOOD).passed
        cheap_mqp = [record(mqp=0.01) for _ in range(4)]
        assert not check_mqp_usually_most_expensive(cheap_mqp).passed

    def test_sr_shrinks(self):
        assert check_safe_region_shrinks(GOOD).passed
        growing = [
            record(rsl=i, sr_area=0.001 * (i + 1) ** 2) for i in range(1, 8)
        ]
        assert not check_safe_region_shrinks(growing).passed

    def test_sr_shrinks_needs_data(self):
        assert not check_safe_region_shrinks(GOOD[:2]).passed

    def test_sr_dominates(self):
        assert check_sr_dominates_mwq_time(GOOD).passed
        fast_sr = [record(sr_time=0.01, mwq_time=1.0)]
        assert not check_sr_dominates_mwq_time(fast_sr).passed

    def test_approx_not_worse(self):
        assert check_approx_not_worse_than_mwp(GOOD).passed
        bad = [record(mwp=0.1, approx_cost=0.5)]
        assert not check_approx_not_worse_than_mwp(bad).passed

    def test_approx_subset(self):
        assert check_approx_area_subset(GOOD).passed
        bad = [record(sr_area=0.1, approx_cost=0.1, approx_area=0.5)]
        assert not check_approx_area_subset(bad).passed


class TestReport:
    def test_all_checks_pass_good(self):
        report = run_all_checks(GOOD)
        assert report.passed
        assert "ALL CLAIMS REPRODUCED (7/7)" in report.render()

    def test_render_shows_failures(self):
        report = run_all_checks([record(mwp=0.1, mwq=0.5)])
        assert not report.passed
        text = report.render()
        assert "FAIL" in text and "SOME CLAIMS FAILED" in text

    def test_check_lines_format(self):
        report = run_all_checks(GOOD)
        for result in report.results:
            assert result.line().startswith("[PASS]") or result.line().startswith(
                "[FAIL]"
            )


class TestEndToEnd:
    def test_real_small_run_validates(self):
        """A live mini-experiment must reproduce every claim."""
        from repro.data.cardb import generate_cardb
        from repro.experiments.runner import run_dataset

        dataset = generate_cardb(900, seed=7)
        result = run_dataset(
            dataset,
            targets=tuple(range(1, 13)),
            approx_ks=(10,),
            seed=7,
            measure_area=True,
        )
        report = run_all_checks(result.records)
        assert report.passed, report.render()
