"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import ascii_chart, ascii_log_chart


class TestAsciiChart:
    def test_basic_layout(self):
        chart = ascii_chart({"MWP": [(1, 0.1), (5, 0.5)]}, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert any("o" in line for line in lines)
        assert "o=MWP" in chart
        assert "x: |RSL| 1 .. 5" in chart

    def test_multiple_series_distinct_marks(self):
        chart = ascii_chart(
            {"A": [(1, 0.1)], "B": [(2, 0.2)], "C": [(3, 0.3)]}
        )
        assert "o=A" in chart and "x=B" in chart and "+=C" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({}, title="nothing")
        assert "(no data)" in ascii_chart({"A": []})

    def test_extremes_plotted_at_edges(self):
        chart = ascii_chart({"A": [(1, 0.0), (10, 1.0)]}, width=20, height=5)
        rows = [line for line in chart.splitlines() if line.startswith("  |")]
        assert rows[0].rstrip().endswith("o")  # Max y at top-right.
        assert rows[-1][3] == "o"  # Min y at bottom-left.

    def test_constant_series(self):
        chart = ascii_chart({"A": [(1, 0.5), (2, 0.5)]})
        assert "o" in chart  # No division-by-zero on flat data.

    def test_log_scale_handles_zero(self):
        chart = ascii_log_chart({"A": [(1, 0.0), (2, 1e-6), (3, 1.0)]})
        assert "(log scale)" in chart

    def test_log_scale_orders_magnitudes(self):
        series = {"A": [(1, 1e-8), (2, 1e-4), (3, 1.0)]}
        chart = ascii_log_chart(series, width=30, height=7)
        rows = [line for line in chart.splitlines() if line.startswith("  |")]
        # Three distinct heights on a log axis.
        mark_rows = [i for i, row in enumerate(rows) if "o" in row]
        assert len(mark_rows) == 3

    def test_custom_size(self):
        chart = ascii_chart({"A": [(1, 1.0)]}, width=10, height=3)
        rows = [line for line in chart.splitlines() if line.startswith("  |")]
        assert len(rows) == 3
        assert all(len(row) == 3 + 10 for row in rows)
