"""Tests for the experiment runner (the Section-VI protocol)."""

import numpy as np
import pytest

from repro.data.synthetic import generate_uniform
from repro.data.workload import build_workload
from repro.experiments.records import QueryRecord
from repro.experiments.runner import make_engine, run_dataset, run_query


@pytest.fixture(scope="module")
def small_result():
    ds = generate_uniform(400, seed=0)
    return run_dataset(
        ds, targets=(1, 2, 3), approx_ks=(3,), seed=1, measure_area=True
    )


class TestRunQuery:
    def test_record_fields_populated(self, small_result):
        assert small_result.records, "workload produced no queries"
        for record in small_result.records:
            assert record.rsl_size >= 1
            assert np.isfinite(record.mwp_cost)
            assert np.isfinite(record.mqp_cost)
            assert np.isfinite(record.mwq_cost)
            assert record.mwq_case in ("C1", "C2")
            assert record.mwp_time >= 0
            assert record.sr_time >= 0
            assert np.isfinite(record.sr_area)
            assert record.sr_boxes >= 1

    def test_paper_shape_mwq_not_worse_than_mwp(self, small_result):
        """Table III/IV shape: MWQ <= MWP on every query (exact SR)."""
        for record in small_result.records:
            assert record.mwq_cost <= record.mwp_cost + 1e-9

    def test_overlap_case_is_zero_cost(self, small_result):
        for record in small_result.records:
            if record.mwq_case == "C1":
                assert record.mwq_cost == 0.0

    def test_costs_non_negative(self, small_result):
        for record in small_result.records:
            assert record.mwp_cost >= 0
            assert record.mqp_cost >= 0
            assert record.mwq_cost >= 0

    def test_approx_outcomes_recorded(self, small_result):
        for record in small_result.records:
            assert 3 in record.approx
            outcome = record.approx[3]
            assert outcome.k == 3
            assert np.isfinite(outcome.cost)
            assert outcome.sr_area <= record.sr_area + 1e-9

    def test_approx_no_worse_than_mwp(self, small_result):
        """Tables V-VI shape: Approx-MWQ is never worse than MWP."""
        for record in small_result.records:
            assert record.approx[3].cost <= record.mwp_cost + 1e-9

    def test_mwq_total_time_includes_sr(self, small_result):
        for record in small_result.records:
            assert record.mwq_total_time >= record.sr_time


class TestRunDataset:
    def test_deterministic_costs(self):
        ds = generate_uniform(300, seed=2)
        a = run_dataset(ds, targets=(1, 2), seed=3, measure_area=False)
        b = run_dataset(ds, targets=(1, 2), seed=3, measure_area=False)
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert ra.mwp_cost == rb.mwp_cost
            assert ra.mwq_cost == rb.mwq_cost

    def test_sorted_records(self, small_result):
        sizes = [r.rsl_size for r in small_result.sorted_records()]
        assert sizes == sorted(sizes)

    def test_rtree_backend_same_costs(self):
        ds = generate_uniform(300, seed=4)
        scan = run_dataset(ds, targets=(1, 2), seed=5, backend="scan",
                           measure_area=False)
        rtree = run_dataset(ds, targets=(1, 2), seed=5, backend="rtree",
                            measure_area=False)
        assert len(scan.records) == len(rtree.records)
        for rs, rt in zip(scan.records, rtree.records):
            assert rs.mwp_cost == pytest.approx(rt.mwp_cost)
            assert rs.mwq_cost == pytest.approx(rt.mwq_cost)

    def test_make_engine_monochromatic(self):
        ds = generate_uniform(50, seed=6)
        engine = make_engine(ds)
        assert engine.monochromatic
        assert engine.bounds == ds.bounds
