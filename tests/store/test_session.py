"""Tests for the epoch-pinned WhyNotSession facade."""

import numpy as np
import pytest

from repro import StaleSessionError, WhyNotEngine, WhyNotSession


@pytest.fixture()
def engine() -> WhyNotEngine:
    rng = np.random.default_rng(11)
    return WhyNotEngine(rng.uniform(0.0, 1.0, size=(20, 2)), backend="scan")


Q = np.array([0.5, 0.5])


class TestPinning:
    def test_session_pins_current_epoch(self, engine):
        engine.insert_products([[0.9, 0.9]])
        session = engine.session()
        assert isinstance(session, WhyNotSession)
        assert session.epoch == engine.dataset_epoch == 1
        assert not session.stale

    def test_reads_match_engine_while_live(self, engine):
        session = engine.session()
        assert np.array_equal(session.reverse_skyline(Q), engine.reverse_skyline(Q))
        assert session.is_member(0, Q) == engine.is_member(0, Q)
        a = session.safe_region(Q).region
        b = engine.safe_region(Q).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)

    def test_mutation_makes_session_stale(self, engine):
        session = engine.session()
        engine.update_products([0], [[0.4, 0.6]])
        assert session.stale
        with pytest.raises(StaleSessionError, match="epoch 0.*epoch 1"):
            session.reverse_skyline(Q)

    def test_every_delegate_checks(self, engine):
        session = engine.session()
        engine.insert_products([[0.2, 0.8]])
        for call in (
            lambda: session.reverse_skyline(Q),
            lambda: session.is_member(0, Q),
            lambda: session.membership_mask([0, 1], Q),
            lambda: session.explain(0, Q),
            lambda: session.modify_why_not_point(0, Q),
            lambda: session.modify_query_point(0, Q),
            lambda: session.safe_region(Q),
            lambda: session.modify_both(0, Q),
            lambda: session.lost_customers(Q, Q),
        ):
            with pytest.raises(StaleSessionError):
                call()

    def test_refresh_repins(self, engine):
        session = engine.session()
        engine.delete_products([0])
        assert session.refresh() is session
        assert not session.stale
        session.reverse_skyline(Q)  # no raise

    def test_context_manager(self, engine):
        with engine.session() as session:
            session.reverse_skyline(Q)
        assert "live" in repr(session)
        engine.insert_products([[0.3, 0.3]])
        assert "stale" in repr(session)

    def test_bichromatic_epoch_covers_both_stores(self):
        rng = np.random.default_rng(12)
        engine = WhyNotEngine(
            rng.uniform(size=(10, 2)), customers=rng.uniform(size=(8, 2))
        )
        session = engine.session()
        engine.insert_customers([[0.5, 0.5]])
        with pytest.raises(StaleSessionError):
            session.reverse_skyline(Q)


class TestStructuredStaleError:
    def test_error_carries_both_epochs(self, engine):
        session = engine.session()
        engine.insert_products([[0.9, 0.9]])
        engine.insert_products([[0.8, 0.8]])
        with pytest.raises(StaleSessionError) as excinfo:
            session.reverse_skyline(Q)
        assert excinfo.value.pinned_epoch == 0
        assert excinfo.value.current_epoch == 2
        # The historical message format is part of the contract too.
        assert "epoch 0" in str(excinfo.value)
        assert "epoch 2" in str(excinfo.value)
        assert "refresh()" in str(excinfo.value)

    def test_attributes_default_to_none(self):
        bare = StaleSessionError("constructed without epochs")
        assert bare.pinned_epoch is None
        assert bare.current_epoch is None
