"""Tests for the versioned copy-on-write stores."""

import numpy as np
import pytest

from repro import CustomerStore, ProductStore, Snapshot
from repro.exceptions import InvalidParameterError


def _store(n: int = 5, d: int = 2) -> ProductStore:
    rng = np.random.default_rng(3)
    return ProductStore(rng.uniform(0.0, 1.0, size=(n, d)))


class TestConstruction:
    def test_matrix_is_frozen_copy(self):
        raw = np.arange(6.0).reshape(3, 2)
        store = ProductStore(raw)
        assert not store.matrix.flags.writeable
        assert raw.flags.writeable  # the caller's array is untouched
        raw[0, 0] = 99.0
        assert store.matrix[0, 0] == 0.0

    def test_introspection(self):
        store = _store(5, 3)
        assert (store.size, store.dim, store.epoch) == (5, 3, 0)
        assert "epoch=0" in repr(store)

    def test_roles(self):
        assert ProductStore.role == "product"
        assert CustomerStore.role == "customer"


class TestInsert:
    def test_appends_and_bumps_epoch(self):
        store = _store(4)
        rows = np.array([[0.1, 0.2], [0.3, 0.4]])
        mutation = store.insert(rows)
        assert store.size == 6
        assert store.epoch == 1
        assert mutation.kind == "insert"
        assert mutation.epoch == 1
        assert mutation.positions.tolist() == [4, 5]
        assert np.array_equal(store.matrix[4:], rows)
        assert np.array_equal(mutation.new_points, rows)
        assert mutation.old_points.shape == (0, 2)

    def test_mapping_is_identity(self):
        store = _store(4)
        mutation = store.insert([[0.5, 0.5]])
        assert mutation.mapping.tolist() == [0, 1, 2, 3]

    def test_empty_insert_is_noop(self):
        store = _store(4)
        mutation = store.insert(np.empty((0, 2)))
        assert mutation.is_noop
        assert store.epoch == 0

    def test_dimension_mismatch_rejected(self):
        store = _store(4, d=2)
        with pytest.raises(Exception):
            store.insert(np.zeros((1, 3)))


class TestDelete:
    def test_compacts_and_maps(self):
        store = _store(5)
        before = store.matrix.copy()
        mutation = store.delete([1, 3])
        assert store.size == 3
        assert mutation.kind == "delete"
        assert mutation.positions.tolist() == [1, 3]
        assert mutation.mapping.tolist() == [0, -1, 1, -1, 2]
        assert np.array_equal(store.matrix, before[[0, 2, 4]])
        assert np.array_equal(mutation.old_points, before[[1, 3]])
        assert mutation.new_points.shape == (0, 2)

    def test_duplicate_positions_deduplicated(self):
        store = _store(5)
        mutation = store.delete([2, 2, 0])
        assert mutation.positions.tolist() == [0, 2]
        assert store.size == 3

    def test_out_of_range_rejected(self):
        store = _store(5)
        with pytest.raises(InvalidParameterError, match="position 5"):
            store.delete([5])
        with pytest.raises(InvalidParameterError, match="position -1"):
            store.delete([-1])

    def test_empty_delete_is_noop(self):
        store = _store(5)
        assert store.delete([]).is_noop
        assert store.epoch == 0


class TestUpdate:
    def test_replaces_rows(self):
        store = _store(5)
        rows = np.array([[0.9, 0.9], [0.1, 0.1]])
        before = store.matrix.copy()
        mutation = store.update([3, 1], rows)
        # Positions are normalised ascending, points carried along.
        assert mutation.positions.tolist() == [1, 3]
        assert np.array_equal(mutation.new_points, rows[[1, 0]])
        assert np.array_equal(mutation.old_points, before[[1, 3]])
        assert np.array_equal(store.matrix[[1, 3]], rows[[1, 0]])
        assert np.array_equal(store.matrix[[0, 2, 4]], before[[0, 2, 4]])

    def test_mapping_is_identity(self):
        store = _store(4)
        mutation = store.update([0], [[0.5, 0.5]])
        assert mutation.mapping.tolist() == [0, 1, 2, 3]

    def test_distinct_positions_required(self):
        store = _store(4)
        with pytest.raises(InvalidParameterError, match="distinct"):
            store.update([1, 1], [[0.1, 0.1], [0.2, 0.2]])

    def test_count_mismatch_rejected(self):
        store = _store(4)
        with pytest.raises(InvalidParameterError, match="2 positions but 1"):
            store.update([0, 1], [[0.1, 0.1]])

    def test_out_of_range_uses_role(self):
        with pytest.raises(InvalidParameterError, match="product position"):
            _store(4).update([9], [[0.1, 0.1]])
        with pytest.raises(InvalidParameterError, match="customer position"):
            CustomerStore(np.zeros((2, 2))).update([9], [[0.1, 0.1]])


class TestSnapshots:
    def test_snapshot_survives_mutations(self):
        store = _store(4)
        snap = store.snapshot()
        assert isinstance(snap, Snapshot)
        frozen = snap.matrix
        store.delete([0])
        store.insert([[0.5, 0.5]])
        assert snap.epoch == 0
        assert snap.size == 4
        assert np.array_equal(snap.matrix, frozen)
        assert not snap.matrix.flags.writeable

    def test_each_mutation_builds_a_new_array(self):
        store = _store(4)
        before = store.matrix
        store.update([0], [[0.7, 0.7]])
        assert store.matrix is not before
        assert before[0, 0] != 0.7 or True  # old array is untouched
        assert not before.flags.writeable


class TestSubscribers:
    def test_listener_sees_committed_mutations_only(self):
        store = _store(4)
        seen = []
        store.subscribe(seen.append)
        store.insert(np.empty((0, 2)))  # no-op: no notification
        store.delete([2])
        store.update([0], [[0.2, 0.2]])
        assert [m.kind for m in seen] == ["delete", "update"]
        assert [m.epoch for m in seen] == [1, 2]
