"""Snapshot-lease protocol: drain, admission, epoch notification."""

from __future__ import annotations

import threading

import pytest

from repro.store import LeaseRegistry, SnapshotLease


class FakeEpoch:
    def __init__(self, value: int = 0) -> None:
        self.value = value

    def __call__(self) -> int:
        return self.value


def test_acquire_pins_current_epoch_and_releases():
    epoch = FakeEpoch(7)
    reg = LeaseRegistry(epoch)
    lease = reg.acquire()
    assert isinstance(lease, SnapshotLease)
    assert lease.epoch == 7
    assert reg.active == 1
    lease.release()
    lease.release()  # idempotent
    assert reg.active == 0
    assert reg.acquired_total == 1


def test_context_manager_releases():
    reg = LeaseRegistry(FakeEpoch())
    with reg.acquire() as lease:
        assert not lease.released
        assert reg.active == 1
    assert lease.released
    assert reg.active == 0


def test_drain_waits_for_active_leases_and_publishes():
    epoch = FakeEpoch(0)
    reg = LeaseRegistry(epoch)
    lease = reg.acquire()
    drained = threading.Event()

    def writer():
        with reg.drain(timeout=5):
            epoch.value += 1
        drained.set()

    w = threading.Thread(target=writer)
    w.start()
    # The writer is now pending: new leases must block/timeout.
    assert reg.writer_pending or not drained.is_set()
    with pytest.raises(TimeoutError):
        reg.acquire(timeout=0.05)
    lease.release()
    w.join(timeout=5)
    assert drained.is_set()
    assert reg.published_epoch == 1
    assert reg.drains_total == 1
    assert reg.drained_leases_total == 1
    # Admission re-opens after the drain.
    reg.acquire(timeout=1).release()


def test_drain_timeout_reopens_admission():
    reg = LeaseRegistry(FakeEpoch())
    lease = reg.acquire()
    with pytest.raises(TimeoutError):
        with reg.drain(timeout=0.05):
            pass  # pragma: no cover - never entered
    assert not reg.writer_pending
    reg.acquire(timeout=1).release()  # not wedged
    lease.release()


def test_single_writer_enforced():
    epoch = FakeEpoch()
    reg = LeaseRegistry(epoch)
    with reg.drain(timeout=1):
        with pytest.raises(RuntimeError, match="single-writer"):
            with reg.drain(timeout=1):
                pass  # pragma: no cover


def test_wait_epoch_beyond_wakes_on_publish():
    epoch = FakeEpoch(0)
    reg = LeaseRegistry(epoch)
    seen = []

    def waiter():
        seen.append(reg.wait_epoch_beyond(0, timeout=5))

    t = threading.Thread(target=waiter)
    t.start()
    epoch.value = 3
    reg.publish()
    t.join(timeout=5)
    assert seen == [3]
    with pytest.raises(TimeoutError):
        reg.wait_epoch_beyond(3, timeout=0.05)
