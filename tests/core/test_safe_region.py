"""Tests for Algorithm 3 (exact safe region) and the anti-dominance
region decomposition."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.safe_region import (
    anti_dominance_region,
    compute_safe_region,
    staircase_boxes,
)
from repro.core._verify import verify_membership
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive

UNIT = Box([0.0, 0.0], [1.0, 1.0])


class TestStaircaseBoxes:
    def test_fig10_shape(self):
        """DSL = {A, B} in distance space gives the three rectangles of
        Fig. 10: tall-left slab, merged corner, wide-bottom slab."""
        origin = np.array([0.5, 0.5])
        thresholds = np.array([[0.1, 0.4], [0.3, 0.2]])
        bounds = Box([0.0, 0.0], [1.0, 1.0])
        boxes = staircase_boxes(origin, thresholds, bounds, sort_dim=0)
        assert len(boxes) == 3
        region_extents = sorted(
            (round(b.hi[0] - origin[0], 6), round(b.hi[1] - origin[1], 6))
            for b in boxes
        )
        # Slab kept at A_x, corner max(A,B), slab kept at B_y (clipped).
        assert region_extents == [(0.1, 0.5), (0.3, 0.4), (0.5, 0.2)]

    def test_empty_dsl_gives_universe(self):
        boxes = staircase_boxes(
            np.array([0.5, 0.5]), np.empty((0, 2)), UNIT, sort_dim=0
        )
        assert len(boxes) == 1
        assert boxes[0] == UNIT

    def test_membership_equivalence_2d(self):
        """A point is in the staircase union iff no product strictly
        dominates it w.r.t. the origin — the exactness claim."""
        rng = np.random.default_rng(0)
        for _ in range(30):
            pts = rng.uniform(0, 1, size=(20, 2))
            origin = rng.uniform(0.2, 0.8, size=2)
            idx = ScanIndex(pts)
            region = anti_dominance_region(idx, origin, UNIT)
            for _ in range(40):
                z = rng.uniform(0, 1, size=2)
                dists = np.abs(pts - origin)
                z_dist = np.abs(z - origin)
                strictly_dominated = bool(
                    np.any(np.all(dists < z_dist, axis=1))
                )
                assert region.contains_point(z) == (not strictly_dominated), (
                    origin,
                    z,
                )

    def test_3d_conservative(self):
        """For d > 2 every box must lie inside the true region (never
        overclaims), though it may under-cover."""
        rng = np.random.default_rng(1)
        unit3 = Box([0, 0, 0], [1, 1, 1])
        for _ in range(15):
            pts = rng.uniform(0, 1, size=(25, 3))
            origin = rng.uniform(0.2, 0.8, size=3)
            idx = ScanIndex(pts)
            region = anti_dominance_region(idx, origin, unit3)
            dists = np.abs(pts - origin)
            for _ in range(40):
                z = region.sample_points(rng, 1)[0]
                z_dist = np.abs(z - origin)
                assert not np.any(np.all(dists < z_dist, axis=1))


class TestComputeSafeRegion:
    def make_case(self, seed, n=25):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(n, 2))
        q = rng.uniform(0.25, 0.75, size=2)
        idx = ScanIndex(pts)
        rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
        return idx, pts, q, rsl

    def test_contains_query(self):
        for seed in range(10):
            idx, pts, q, rsl = self.make_case(seed)
            sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
            assert sr.contains(q), seed

    def test_lemma2_every_point_retains_members(self):
        """Lemma 2: anywhere in SR(q), every member stays a member."""
        rng = np.random.default_rng(42)
        for seed in range(8):
            idx, pts, q, rsl = self.make_case(seed)
            sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
            if sr.region.is_empty():
                continue
            for q_star in sr.region.sample_points(rng, 30):
                for member in rsl.tolist():
                    assert verify_membership(
                        idx, pts[member], q_star, exclude=(member,)
                    ), (seed, q_star, member)

    def test_no_members_gives_universe(self):
        idx = ScanIndex(np.array([[0.5, 0.5]]))
        sr = compute_safe_region(
            idx, idx.points, np.array([0.1, 0.1]), np.empty(0, dtype=np.int64), UNIT
        )
        assert sr.area() == pytest.approx(1.0)

    def test_area_shrinks_with_more_members(self):
        """Adding members can only shrink the region (intersection)."""
        idx, pts, q, rsl = self.make_case(3)
        if rsl.size < 2:
            pytest.skip("case produced too few members")
        small = compute_safe_region(idx, pts, q, rsl[:1], UNIT, self_exclude=True)
        full = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
        assert full.area() <= small.area() + 1e-12

    def test_query_outside_bounds_raises(self):
        idx = ScanIndex(np.array([[0.5, 0.5]]))
        with pytest.raises(InvalidParameterError):
            compute_safe_region(
                idx, idx.points, np.array([5.0, 5.0]),
                np.empty(0, dtype=np.int64), UNIT,
            )

    def test_safe_region_repr_and_flags(self):
        idx, pts, q, rsl = self.make_case(4)
        sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
        text = repr(sr)
        assert "SafeRegion" in text
        assert sr.approximate is False
        assert sr.rsl_positions.size == rsl.size

    def test_degenerate_region_detected(self):
        sr_area_zero = compute_safe_region(
            ScanIndex(np.array([[0.5, 0.5]])),
            np.array([[0.5, 0.5]]),
            np.array([0.5, 0.5]),
            np.empty(0, dtype=np.int64),
            Box([0.5, 0.5], [0.5, 0.5]),
        )
        assert sr_area_zero.is_degenerate()


class _DisjointRegionCache:
    """Stub DSL cache whose member regions are pairwise disjoint — the
    running intersection collapses to empty after two members, which real
    staircase geometry (every region is a full cross through its
    customer) never produces."""

    def __init__(self, dim=2):
        from repro.core.dsl_cache import DSLCacheStats
        from repro.geometry.region import BoxRegion

        self.stats = DSLCacheStats()
        self.calls = []
        self._make = lambda position: BoxRegion(
            [
                Box(
                    [0.1 * position, 0.1 * position],
                    [0.1 * position + 0.05, 0.1 * position + 0.05],
                )
            ],
            dim=dim,
        )

    def region(self, position, bounds):
        self.stats.region_misses += 1
        self.calls.append(int(position))
        return self._make(position)


class TestArrayEngineStats:
    def make_case(self, seed, n=30):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(n, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        idx = ScanIndex(pts)
        rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
        return idx, pts, q, rsl

    def test_matches_oracle_exactly(self):
        """Array engine vs pure-Python oracle: identical boxes, identical
        order, bit-identical area — across random cases."""
        from repro.core.safe_region import compute_safe_region_oracle

        for seed in range(6):
            idx, pts, q, rsl = self.make_case(seed)
            fast = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
            slow = compute_safe_region_oracle(
                idx, pts, q, rsl, UNIT, self_exclude=True
            )
            assert [b.lo.tolist() for b in fast.region.boxes] == [
                b.lo.tolist() for b in slow.region.boxes
            ], seed
            assert [b.hi.tolist() for b in fast.region.boxes] == [
                b.hi.tolist() for b in slow.region.boxes
            ], seed
            assert fast.area() == slow.area(), seed
            rng = np.random.default_rng(seed)
            for p in rng.uniform(0, 1, size=(50, 2)):
                assert fast.contains(p) == slow.contains(p), (seed, p)

    def test_stats_populated(self):
        idx, pts, q, rsl = self.make_case(2)
        sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
        stats = sr.stats
        assert stats is not None
        assert stats.members == rsl.size
        assert stats.intersections == rsl.size  # no early exit here
        assert stats.boxes_after_simplify <= stats.boxes_before_simplify
        assert stats.peak_boxes >= 1
        assert stats.budget_truncations == 0
        assert not stats.early_exit
        assert stats.cache_hits == stats.cache_misses == 0  # no cache passed
        assert 0.0 <= stats.member_seconds <= stats.build_seconds

    def test_parallel_identical_to_sequential(self):
        for seed in (1, 4):
            idx, pts, q, rsl = self.make_case(seed, n=40)
            config = WhyNotConfig(sr_chunk_size=3)
            seq = compute_safe_region(
                idx, pts, q, rsl, UNIT, config=config, self_exclude=True, n_jobs=1
            )
            par = compute_safe_region(
                idx, pts, q, rsl, UNIT, config=config, self_exclude=True, n_jobs=4
            )
            assert par.region.lo.tolist() == seq.region.lo.tolist(), seed
            assert par.region.hi.tolist() == seq.region.hi.tolist(), seed
            assert par.area() == seq.area(), seed

    def test_box_budget_is_safe_underapproximation(self):
        idx, pts, q, rsl = self.make_case(0, n=40)
        exact = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
        if exact.stats.peak_boxes <= 2:
            pytest.skip("case too small to exercise the budget")
        budget = compute_safe_region(
            idx, pts, q, rsl, UNIT,
            config=WhyNotConfig(sr_box_budget=2), self_exclude=True,
        )
        assert budget.stats.budget_truncations >= 1
        assert budget.contains(q)
        assert budget.area() <= exact.area() + 1e-12
        rng = np.random.default_rng(9)
        if not budget.region.is_empty():
            for p in budget.region.sample_points(rng, 40):
                assert exact.contains(p)

    def test_chunked_early_exit_skips_later_members(self):
        """Satellite: the empty-intersection early exit must fire on the
        chunked (parallel) path too — later chunks are never built."""
        idx = ScanIndex(np.array([[0.5, 0.5]]))
        cache = _DisjointRegionCache()
        positions = np.arange(6, dtype=np.int64)
        sr = compute_safe_region(
            idx,
            np.tile(np.linspace(0.1, 0.6, 6)[:, None], (1, 2)),
            np.array([0.05, 0.05]),
            positions,
            UNIT,
            config=WhyNotConfig(sr_chunk_size=2),
            n_jobs=4,
            dsl_cache=cache,
        )
        assert sr.stats.early_exit
        # Only the first chunk's members were materialised.
        assert sorted(cache.calls) == [0, 1]
        assert sr.stats.intersections == 2
        # The degenerate {q} fallback keeps the invariant q ∈ SR(q).
        assert sr.contains([0.05, 0.05])
        assert sr.is_degenerate()
