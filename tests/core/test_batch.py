"""Tests for composite answers and batch why-not answering."""

import numpy as np
import pytest

from repro import WhyNotEngine, answer_why_not, answer_why_not_batch
from repro.core.answer import (
    Explanation,
    ModificationResult,
    MWQCase,
    MWQResult,
)
from repro.core.batch import WhyNotAnswer
from repro.data.paperdata import paper_points, paper_query
from repro.data.synthetic import generate_uniform


class TestAnswerWhyNot:
    def test_composite_fields(self, paper_engine, paper_q):
        answer = answer_why_not(paper_engine, 0, paper_q)
        assert not answer.already_member
        assert answer.explanation.culprit_positions.tolist() == [1]
        assert len(answer.mwp) == 2
        assert len(answer.mqp) == 2
        assert answer.mwq.case is MWQCase.OVERLAP
        assert answer.best_cost() == 0.0

    def test_recommendation_c1(self, paper_engine, paper_q):
        answer = answer_why_not(paper_engine, 0, paper_q)
        text = answer.recommendation()
        assert "zero cost" in text
        assert "7.5, 55" in text

    def test_recommendation_member(self, paper_engine, paper_q):
        answer = answer_why_not(paper_engine, 1, paper_q)
        assert answer.already_member
        assert "nothing to do" in answer.recommendation()
        assert answer.best_cost() == 0.0

    def test_recommendation_c2(self):
        """A genuine C2 case produces the two-move recommendation."""
        ds = generate_uniform(400, seed=9)
        engine = WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)
        rng = np.random.default_rng(0)
        for _ in range(80):
            q = engine.customers[int(rng.integers(0, 400))] * 1.01
            q = np.clip(q, engine.bounds.lo, engine.bounds.hi)
            rsl = set(engine.reverse_skyline(q).tolist())
            if not rsl:
                continue
            j = int(rng.integers(0, 400))
            if j in rsl or engine.explain(j, q).is_member:
                continue
            answer = answer_why_not(engine, j, q)
            if answer.mwq.case is MWQCase.DISJOINT:
                text = answer.recommendation()
                assert "safe region" in text and "C2" in text
                assert np.isfinite(answer.best_cost())
                return
        pytest.skip("no C2 case found in the sampled workload")


class TestRecommendationNoFeasibleModification:
    def test_mwp_fallback_without_candidates_does_not_crash(self, paper_q):
        """Regression: ``mwq.best_pair()`` and ``mwp.best()`` can both be
        None (no candidate survived); the verdict must say so instead of
        dereferencing ``None.point``."""
        c_t = np.array([5.0, 30.0])
        lam = np.array([1], dtype=np.int64)
        answer = WhyNotAnswer(
            why_not=0,
            query=paper_q,
            explanation=Explanation(
                why_not=c_t,
                query=paper_q,
                culprit_positions=lam,
                culprits=np.array([[7.5, 42.0]]),
            ),
            mwp=ModificationResult(
                method="MWP",
                why_not=c_t,
                query=paper_q,
                lambda_positions=lam,
                frontier_positions=lam,
            ),
            mqp=ModificationResult(
                method="MQP",
                why_not=c_t,
                query=paper_q,
                lambda_positions=lam,
                frontier_positions=lam,
            ),
            mwq=MWQResult(case=MWQCase.DISJOINT, why_not=c_t, query=paper_q),
        )
        text = answer.recommendation()
        assert "no feasible modification" in text


class TestBatch:
    def test_batch_reuses_safe_region(self, paper_engine, paper_q):
        answers = answer_why_not_batch(paper_engine, [0, 4, 6], paper_q)
        assert len(answers) == 3
        # One cached SafeRegion object serves all three questions.
        assert len(paper_engine._sr_cache) == 1
        for answer in answers:
            assert answer.mwq.case is MWQCase.OVERLAP

    def test_batch_mixed_members(self, paper_engine, paper_q):
        answers = answer_why_not_batch(paper_engine, [0, 1], paper_q)
        assert not answers[0].already_member
        assert answers[1].already_member

    def test_batch_raw_points(self, paper_engine, paper_q):
        answers = answer_why_not_batch(
            paper_engine, [[5.0, 30.0], [26.0, 70.0]], paper_q
        )
        assert len(answers) == 2

    def test_batch_approximate(self, paper_engine, paper_q):
        answers = answer_why_not_batch(
            paper_engine, [0, 6], paper_q, approximate=True, k=3
        )
        assert len(answers) == 2
        for answer in answers:
            assert answer.mwq.case is not None

    def test_batch_member_fast_path_matches_pipeline(self, paper_pts, paper_q):
        """The kernel-backed member fast path must be observationally
        identical to running the full per-question pipeline."""
        from repro.config import WhyNotConfig
        from repro.data.paperdata import paper_dataset

        ds = paper_dataset()
        fast = WhyNotEngine(
            ds.points,
            backend="scan",
            bounds=ds.bounds,
            config=WhyNotConfig(batch_kernels=True),
        )
        slow = WhyNotEngine(
            ds.points,
            backend="scan",
            bounds=ds.bounds,
            config=WhyNotConfig(batch_kernels=False),
        )
        whys = [0, 1, 4, [5.0, 30.0], [26.0, 70.0]]
        for a, b in zip(
            answer_why_not_batch(fast, whys, paper_q),
            answer_why_not_batch(slow, whys, paper_q),
        ):
            assert a.already_member == b.already_member
            assert np.array_equal(
                a.explanation.culprit_positions, b.explanation.culprit_positions
            )
            assert a.mwq.case is b.mwq.case
            assert a.recommendation() == b.recommendation()
            assert a.best_cost() == b.best_cost()
            assert len(a.mwp) == len(b.mwp)
            assert len(a.mqp) == len(b.mqp)
            for ca, cb in zip(a.mwp, b.mwp):
                assert np.array_equal(ca.point, cb.point)
                assert ca.cost == cb.cost
                assert ca.verified == cb.verified
            for ca, cb in zip(a.mqp, b.mqp):
                assert np.array_equal(ca.point, cb.point)
                assert ca.cost == cb.cost
