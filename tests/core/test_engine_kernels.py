"""Engine-level equivalence of the batch-kernel and per-customer paths.

Every path wired through :mod:`repro.kernels` must produce results
indistinguishable from the sequential oracle (``batch_kernels=False``,
``n_jobs=1``) — membership masks, lost-customer sets, MQP scores, safe
regions and precomputed DSL stores alike.
"""

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.config import WhyNotConfig
from repro.core.approx import ApproximateDSLStore
from repro.core.safe_region import compute_safe_region
from repro.data.synthetic import generate_uniform
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive


@pytest.fixture(scope="module")
def dataset():
    return generate_uniform(300, seed=11)


def engine_pair(dataset):
    """The same engine with kernels on and off."""
    on = WhyNotEngine(
        dataset.points,
        backend="scan",
        bounds=dataset.bounds,
        config=WhyNotConfig(batch_kernels=True, kernel_block_size=64),
    )
    off = WhyNotEngine(
        dataset.points,
        backend="scan",
        bounds=dataset.bounds,
        config=WhyNotConfig(batch_kernels=False),
    )
    return on, off


def queries(dataset, count=5):
    rng = np.random.default_rng(3)
    picks = rng.integers(0, dataset.points.shape[0], size=count)
    return np.clip(
        dataset.points[picks] * 1.02, dataset.bounds.lo, dataset.bounds.hi
    )


class TestEngineEquivalence:
    def test_reverse_skyline_matches(self, dataset):
        on, off = engine_pair(dataset)
        for q in queries(dataset):
            assert np.array_equal(on.reverse_skyline(q), off.reverse_skyline(q))

    def test_membership_mask_matches_is_member(self, dataset):
        on, off = engine_pair(dataset)
        rng = np.random.default_rng(5)
        for q in queries(dataset, count=3):
            whys = [int(rng.integers(0, 300)) for _ in range(8)]
            whys += [dataset.points[int(rng.integers(0, 300))] * 0.99]
            mask_on = on.membership_mask(whys, q)
            mask_off = off.membership_mask(whys, q)
            singles = np.array([on.is_member(w, q) for w in whys], dtype=bool)
            assert np.array_equal(mask_on, mask_off)
            assert np.array_equal(mask_on, singles)

    def test_lost_customers_matches(self, dataset):
        on, off = engine_pair(dataset)
        qs = queries(dataset)
        for q, q_star in zip(qs, np.roll(qs, 1, axis=0)):
            assert np.array_equal(
                on.lost_customers(q, q_star), off.lost_customers(q, q_star)
            )

    def test_mqp_total_cost_matches(self, dataset):
        on, off = engine_pair(dataset)
        qs = queries(dataset, count=3)
        for q, q_star in zip(qs, np.roll(qs, 1, axis=0)):
            assert on.mqp_total_cost(q, q_star) == pytest.approx(
                off.mqp_total_cost(q, q_star), abs=0.0
            )


class TestParallelPrecompute:
    def test_safe_region_parallel_matches_sequential(self, dataset):
        idx = ScanIndex(dataset.points)
        pts = dataset.points
        q = np.clip(pts[7] * 1.01, dataset.bounds.lo, dataset.bounds.hi)
        rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
        seq = compute_safe_region(
            idx, pts, q, rsl, dataset.bounds, self_exclude=True, n_jobs=1
        )
        par = compute_safe_region(
            idx, pts, q, rsl, dataset.bounds, self_exclude=True, n_jobs=2
        )
        assert seq.area() == par.area()
        assert len(seq.region) == len(par.region)
        assert np.array_equal(seq.rsl_positions, par.rsl_positions)

    def test_store_precompute_parallel_matches_lazy(self, dataset):
        idx = ScanIndex(dataset.points)
        lazy = ApproximateDSLStore(idx, dataset.points, k=5, self_exclude=True)
        par = ApproximateDSLStore(idx, dataset.points, k=5, self_exclude=True)
        positions = list(range(0, 60))
        par.precompute(positions, n_jobs=3)
        assert len(par) == len(positions)
        for position in positions:
            a = lazy.entry(position)
            b = par.entry(position)
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.minima, b.minima)

    def test_precompute_skips_cached_entries(self, dataset):
        idx = ScanIndex(dataset.points)
        store = ApproximateDSLStore(idx, dataset.points, k=4, self_exclude=True)
        first = store.entry(0)
        store.precompute(range(5), n_jobs=2)
        assert store.entry(0) is first
        assert len(store) == 5
