"""Tests for the cost model (min-max normalisation, Eqn. 11)."""

import numpy as np
import pytest

from repro.config import CostWeights
from repro.core.cost import MinMaxNormalizer, movement_cost
from repro.exceptions import InvalidParameterError


class TestNormalizer:
    def test_maps_bounds_to_unit(self):
        norm = MinMaxNormalizer([0, 100], [10, 200])
        assert norm.normalize(np.array([0.0, 100.0])).tolist() == [0.0, 0.0]
        assert norm.normalize(np.array([10.0, 200.0])).tolist() == [1.0, 1.0]
        assert norm.normalize(np.array([5.0, 150.0])).tolist() == [0.5, 0.5]

    def test_round_trip(self):
        norm = MinMaxNormalizer([2, 3], [8, 13])
        pts = np.array([[4.0, 5.0], [2.0, 13.0]])
        assert np.allclose(norm.denormalize(norm.normalize(pts)), pts)

    def test_zero_width_dimension(self):
        norm = MinMaxNormalizer([1, 0], [1, 10])
        out = norm.normalize(np.array([1.0, 5.0]))
        assert out.tolist() == [0.0, 0.5]

    def test_from_points(self):
        pts = np.array([[0.0, 2.0], [4.0, 6.0]])
        norm = MinMaxNormalizer.from_points(pts)
        assert norm.lo.tolist() == [0.0, 2.0]
        assert norm.hi.tolist() == [4.0, 6.0]

    def test_from_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            MinMaxNormalizer.from_points(np.empty((0, 2)))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            MinMaxNormalizer([1, 1], [0, 2])


class TestCost:
    def test_eqn11_equal_weights(self):
        """The Section-VI setting: equal weights summing to 1."""
        norm = MinMaxNormalizer([0, 0], [10, 10])
        cost = norm.cost([0, 0], [10, 10], [0.5, 0.5])
        assert cost == pytest.approx(1.0)

    def test_cost_symmetric(self):
        norm = MinMaxNormalizer([0, 0], [10, 10])
        assert norm.cost([1, 2], [3, 4], [0.5, 0.5]) == pytest.approx(
            norm.cost([3, 4], [1, 2], [0.5, 0.5])
        )

    def test_cost_zero_for_no_move(self):
        norm = MinMaxNormalizer([0, 0], [10, 10])
        assert norm.cost([3, 3], [3, 3], [0.5, 0.5]) == 0.0

    def test_weight_length_checked(self):
        norm = MinMaxNormalizer([0, 0], [10, 10])
        with pytest.raises(InvalidParameterError):
            norm.cost([0, 0], [1, 1], [1.0])

    def test_movement_cost_without_normalizer(self):
        assert movement_cost([0, 0], [2, 4], [0.5, 0.5]) == pytest.approx(3.0)

    def test_movement_cost_with_normalizer(self):
        norm = MinMaxNormalizer([0, 0], [4, 4])
        assert movement_cost([0, 0], [2, 4], [0.5, 0.5], norm) == pytest.approx(
            0.75
        )

    def test_weights_scale_dimensions(self):
        norm = MinMaxNormalizer([0, 0], [10, 10])
        price_heavy = norm.cost([0, 0], [5, 5], [0.9, 0.1])
        mileage_heavy = norm.cost([0, 0], [5, 5], [0.1, 0.9])
        assert price_heavy == pytest.approx(mileage_heavy)
        asymmetric = norm.cost([0, 0], [5, 0], [0.9, 0.1])
        assert asymmetric == pytest.approx(0.45)


class TestCostWeights:
    def test_default_equal_and_sum_one(self):
        alpha, beta = CostWeights().resolved(2)
        assert alpha == (0.5, 0.5)
        assert beta == (0.5, 0.5)
        assert sum(alpha) == pytest.approx(1.0)

    def test_explicit_weights(self):
        weights = CostWeights(alpha=(0.7, 0.3), beta=(0.2, 0.8))
        alpha, beta = weights.resolved(2)
        assert alpha == (0.7, 0.3)
        assert beta == (0.2, 0.8)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(alpha=(1.0,)).resolved(2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(alpha=(-0.1, 1.1)).resolved(2)
