"""Tests for the aspect-1 explanation."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.core.explain import explain_why_not
from repro.data.paperdata import paper_points, paper_query
from repro.index.scan import ScanIndex


class TestExplain:
    def test_paper_culprit(self):
        idx = ScanIndex(paper_points())
        exp = explain_why_not(idx, paper_points()[0], paper_query(), exclude=(0,))
        assert exp.culprit_positions.tolist() == [1]
        assert exp.culprits.shape == (1, 2)

    def test_member_empty(self):
        idx = ScanIndex(paper_points())
        exp = explain_why_not(idx, paper_points()[1], paper_query(), exclude=(1,))
        assert exp.is_member
        assert exp.culprits.shape == (0, 2)

    def test_lemma1_deleting_culprits_admits(self):
        """Lemma 1: removing Λ from P puts the why-not point in RSL(q)."""
        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(50):
            pts = rng.uniform(0, 1, size=(25, 2))
            q = rng.uniform(0.3, 0.7, size=2)
            c = rng.uniform(0, 1, size=2)
            idx = ScanIndex(pts)
            exp = explain_why_not(idx, c, q, policy=DominancePolicy.WEAK)
            if exp.is_member:
                continue
            survivors = np.delete(pts, exp.culprit_positions, axis=0)
            reduced = ScanIndex(survivors)
            after = explain_why_not(reduced, c, q, policy=DominancePolicy.WEAK)
            assert after.is_member, (c, q)
            checked += 1
        assert checked > 20

    def test_policy_affects_boundary(self):
        pts = np.array([[0.5, 1.0]])  # Ties the window in y.
        idx = ScanIndex(pts)
        c, q = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        weak = explain_why_not(idx, c, q, policy=DominancePolicy.WEAK)
        strict = explain_why_not(idx, c, q, policy=DominancePolicy.STRICT)
        assert not weak.is_member
        assert strict.is_member

    def test_culprits_are_window_members(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(40, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        c = rng.uniform(0, 1, size=2)
        idx = ScanIndex(pts)
        exp = explain_why_not(idx, c, q)
        radii = np.abs(c - q)
        for culprit in exp.culprits:
            assert np.all(np.abs(culprit - c) <= radii)
