"""Satellite 3: concurrent pinned readers are bit-identical to serial.

N reader threads, each holding a snapshot lease and a pinned session,
answer why-not questions while a writer mutates the market between
epochs.  Every threaded answer must equal the serial single-threaded
answer for the same epoch bit for bit; no ``StaleSessionError`` may
leak mid-batch; every lease and gate hold must balance out.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.core.batch import answer_why_not
from repro.serve.serialize import canonical_json, serialize_answer

N_THREADS = 4
EPOCHS = 3
QUESTIONS = list(range(8))
QUERY = np.array([0.45, 0.55])


def _make_engine() -> WhyNotEngine:
    rng = np.random.default_rng(77)
    return WhyNotEngine(
        rng.random((50, 2)), customers=rng.random((30, 2)), backend="grid"
    )


def _mutation_for(epoch: int) -> list:
    return [[0.05 + 0.12 * epoch, 0.92 - 0.11 * epoch]]


def _answer(engine: WhyNotEngine, question: int) -> str:
    return canonical_json(
        serialize_answer(answer_why_not(engine, question, QUERY))
    )


def _serial_expectations() -> list:
    engine = _make_engine()
    expected = []
    for epoch in range(EPOCHS):
        expected.append([_answer(engine, i) for i in QUESTIONS])
        engine.insert_products(_mutation_for(epoch))
    engine.close()
    return expected


def test_threaded_pinned_reads_match_serial():
    expected = _serial_expectations()
    engine = _make_engine()
    engine.enable_thread_safety()
    results = [[None] * len(QUESTIONS) for _ in range(EPOCHS)]
    errors: list = []

    for epoch in range(EPOCHS):
        started = threading.Barrier(N_THREADS + 1, timeout=10)

        def reader(tid: int, epoch: int = epoch) -> None:
            try:
                lease = engine.leases.acquire(timeout=10)
                try:
                    session = engine.session()
                    assert session.epoch == epoch
                    started.wait()
                    for i in QUESTIONS[tid::N_THREADS]:
                        results[epoch][i] = _answer(engine, i)
                        # The pinned session stays valid for the whole
                        # batch: the writer cannot land mid-lease.
                        assert not session.stale
                finally:
                    lease.release()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                try:
                    started.wait()
                except threading.BrokenBarrierError:
                    pass

        threads = [
            threading.Thread(target=reader, args=(tid,))
            for tid in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        started.wait()  # all readers hold their leases now
        time.sleep(0.01)

        # The writer drains concurrently with the in-flight readers:
        # it must wait them out, then land the mutation atomically.
        with engine.leases.drain(timeout=10):
            assert engine.leases.active == 0
            engine.insert_products(_mutation_for(epoch))
        for t in threads:
            t.join(timeout=10)

        assert not errors, errors
        assert engine.dataset_epoch == epoch + 1
        assert engine.leases.published_epoch == epoch + 1

    assert results == expected  # bit-identical, every epoch

    # Counters and holds balance out.
    assert engine.leases.active == 0
    assert engine.leases.acquired_total == EPOCHS * N_THREADS
    assert engine.gate.active_readers == 0
    assert not engine.gate.write_held
    engine.close()


def test_stale_session_raises_only_across_epochs():
    """A session pinned before the writer's batch fails *cleanly* after
    it — structured attributes set, never a torn mid-batch answer."""
    from repro.exceptions import StaleSessionError

    engine = _make_engine()
    session = engine.session()
    session.reverse_skyline(QUERY)
    engine.insert_products([[0.5, 0.5]])
    with pytest.raises(StaleSessionError) as excinfo:
        session.reverse_skyline(QUERY)
    assert excinfo.value.pinned_epoch == 0
    assert excinfo.value.current_epoch == 1
    session.refresh()
    session.reverse_skyline(QUERY)  # usable again after re-pinning
    engine.close()
