"""Unit contract of the engine's readers/writer gate."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.gate import ReadWriteGate


def test_concurrent_readers_overlap():
    gate = ReadWriteGate()
    inside = threading.Barrier(3, timeout=5)

    def reader():
        with gate.read():
            inside.wait()  # only passes if all three hold the read side

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert gate.active_readers == 0


def test_reader_reentrancy_single_thread():
    gate = ReadWriteGate()
    with gate.read():
        with gate.read():
            assert gate.active_readers == 1
        assert gate.active_readers == 1
    assert gate.active_readers == 0


def test_writer_excludes_readers():
    gate = ReadWriteGate()
    observed = []
    release = threading.Event()
    writing = threading.Event()

    def writer():
        with gate.write():
            writing.set()
            release.wait(timeout=5)
            observed.append("write-done")

    def reader():
        writing.wait(timeout=5)
        with gate.read():
            observed.append("read")

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start()
    writing.wait(timeout=5)
    r.start()
    time.sleep(0.05)  # the reader must be blocked at this point
    assert observed == []
    release.set()
    w.join(timeout=5)
    r.join(timeout=5)
    assert observed == ["write-done", "read"]


def test_writer_preference_blocks_new_readers():
    gate = ReadWriteGate()
    reader_holding = threading.Event()
    release_reader = threading.Event()
    order = []

    def long_reader():
        with gate.read():
            reader_holding.set()
            release_reader.wait(timeout=5)

    def writer():
        with gate.write():
            order.append("writer")

    def late_reader():
        with gate.read():
            order.append("late-reader")

    r1 = threading.Thread(target=long_reader)
    r1.start()
    reader_holding.wait(timeout=5)
    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.05)  # writer is now queued
    r2 = threading.Thread(target=late_reader)
    r2.start()
    time.sleep(0.05)
    # Neither may proceed while the first reader holds the gate.
    assert order == []
    release_reader.set()
    w.join(timeout=5)
    r2.join(timeout=5)
    r1.join(timeout=5)
    assert order[0] == "writer"  # preference: the queued writer goes first


def test_write_reentrancy_and_read_passthrough():
    gate = ReadWriteGate()
    with gate.write():
        with gate.write():  # same thread re-enters
            with gate.read():  # writer passes through the read side
                assert gate.write_held
    assert not gate.write_held
    assert gate.active_readers == 0


def test_write_while_reading_refused():
    gate = ReadWriteGate()
    with gate.read():
        with pytest.raises(RuntimeError, match="write side"):
            with gate.write():
                pass  # pragma: no cover
