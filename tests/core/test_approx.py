"""Tests for the approximate DSL store and approximate safe region."""

import numpy as np
import pytest

from repro.core.approx import (
    ApproximateDSLStore,
    approximate_anti_dominance_region,
    sample_dsl_thresholds,
)
from repro.core.safe_region import anti_dominance_region, compute_safe_region
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive

UNIT = Box([0.0, 0.0], [1.0, 1.0])


class TestSampling:
    def test_keeps_first_and_last(self):
        thresholds = np.array([[i / 10, 1 - i / 10] for i in range(10)])
        sampled, minima = sample_dsl_thresholds(thresholds, k=3, sort_dim=0)
        assert any(np.allclose(row, [0.0, 1.0]) for row in sampled)
        assert any(np.allclose(row, [0.9, 0.1]) for row in sampled)

    def test_sample_size_bounded(self):
        thresholds = np.random.default_rng(0).uniform(0, 1, size=(100, 2))
        sampled, _ = sample_dsl_thresholds(thresholds, k=10, sort_dim=0)
        assert sampled.shape[0] <= 12  # k picks + forced endpoints.

    def test_k_larger_than_m_keeps_all(self):
        thresholds = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        sampled, _ = sample_dsl_thresholds(thresholds, k=50, sort_dim=0)
        assert sampled.shape[0] == 3

    def test_minima_exact(self):
        thresholds = np.array([[0.3, 0.9], [0.5, 0.2], [0.9, 0.4]])
        _, minima = sample_dsl_thresholds(thresholds, k=1, sort_dim=0)
        assert minima.tolist() == [0.3, 0.2]

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            sample_dsl_thresholds(np.empty((0, 2)), k=0, sort_dim=0)

    def test_empty_dsl(self):
        sampled, minima = sample_dsl_thresholds(np.empty((0, 2)), k=5, sort_dim=0)
        assert sampled.shape[0] == 0


class TestApproximateRegion:
    def test_subset_of_exact(self):
        """Fig. 16: the approximate region misses area but never exceeds
        the exact anti-dominance region."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            pts = rng.uniform(0, 1, size=(40, 2))
            origin = rng.uniform(0.2, 0.8, size=2)
            idx = ScanIndex(pts)
            exact = anti_dominance_region(idx, origin, UNIT)
            store = ApproximateDSLStore(idx, pts, k=3)
            # Region for an external origin: build through the raw helper.
            from repro.geometry.transform import to_query_space
            from repro.skyline.dynamic import dynamic_skyline_indices

            dsl = dynamic_skyline_indices(pts, origin)
            thresholds = to_query_space(pts[dsl], origin)
            sampled, minima = sample_dsl_thresholds(thresholds, 3, 0)
            approx = approximate_anti_dominance_region(
                origin, sampled, minima, UNIT
            )
            assert approx.measure() <= exact.measure() + 1e-9
            for z in approx.sample_points(rng, 30):
                assert exact.contains_point(z), (origin, z)

    def test_larger_k_never_smaller_area(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(200, 2))
        idx = ScanIndex(pts)
        origin_pos = 0
        small = ApproximateDSLStore(idx, pts, k=2, self_exclude=True)
        large = ApproximateDSLStore(idx, pts, k=20, self_exclude=True)
        a_small = small.region(origin_pos, UNIT).measure()
        a_large = large.region(origin_pos, UNIT).measure()
        assert a_large >= a_small - 1e-9


class TestApproximateSafeRegion:
    def make_case(self, seed, n=40):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(n, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        idx = ScanIndex(pts)
        rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
        return idx, pts, q, rsl

    def test_subset_of_exact_safe_region(self):
        for seed in range(8):
            idx, pts, q, rsl = self.make_case(seed)
            exact = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
            store = ApproximateDSLStore(idx, pts, k=4, self_exclude=True)
            approx = store.safe_region(q, rsl, UNIT)
            assert approx.approximate
            assert approx.area() <= exact.area() + 1e-9

    def test_contains_query(self):
        for seed in range(8):
            idx, pts, q, rsl = self.make_case(seed)
            store = ApproximateDSLStore(idx, pts, k=4, self_exclude=True)
            approx = store.safe_region(q, rsl, UNIT)
            assert approx.contains(q)

    def test_lemma2_still_holds(self):
        """The approximation is conservative: no member is ever lost."""
        from repro.core._verify import verify_membership

        rng = np.random.default_rng(3)
        for seed in range(6):
            idx, pts, q, rsl = self.make_case(seed)
            store = ApproximateDSLStore(idx, pts, k=3, self_exclude=True)
            approx = store.safe_region(q, rsl, UNIT)
            if approx.region.is_empty():
                continue
            for q_star in approx.region.sample_points(rng, 20):
                for member in rsl.tolist():
                    assert verify_membership(
                        idx, pts[member], q_star, exclude=(member,)
                    )


class TestStore:
    def test_lazy_then_cached(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 1, size=(50, 2))
        store = ApproximateDSLStore(ScanIndex(pts), pts, k=5, self_exclude=True)
        assert len(store) == 0
        entry1 = store.entry(3)
        assert len(store) == 1
        assert store.entry(3) is entry1

    def test_precompute_all(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(20, 2))
        store = ApproximateDSLStore(ScanIndex(pts), pts, k=5, self_exclude=True)
        store.precompute()
        assert len(store) == 20

    def test_invalid_k_rejected(self):
        pts = np.array([[0.5, 0.5]])
        with pytest.raises(InvalidParameterError):
            ApproximateDSLStore(ScanIndex(pts), pts, k=0)
