"""Direct unit tests for the shared staircase-merge construction."""

import numpy as np
import pytest

from repro.core._staircase import staircase_distance_candidates


def covers(candidate, frontiers):
    """Feasibility: for every frontier there is a dimension where the
    candidate stays below the threshold."""
    return all(np.any(candidate <= f + 1e-12) for f in frontiers)


class TestSingleFrontier:
    def test_two_clipped_candidates(self):
        frontiers = np.array([[0.5, 6.5]])
        cap = np.array([3.5, 25.0])
        out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
        rows = {tuple(r) for r in out}
        # Paper's MWP example in distance space: (cap_x, V_y), (V_x, cap_y).
        assert rows == {(3.5, 6.5), (0.5, 25.0)}

    def test_threshold_above_cap_is_clamped(self):
        frontiers = np.array([[10.0, 10.0]])
        cap = np.array([1.0, 2.0])
        out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
        assert np.all(out <= cap + 1e-12)


class TestMultipleFrontiers:
    def test_antichain_produces_m_plus_one(self):
        frontiers = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        cap = np.array([1.0, 1.0])
        out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
        # first-clip + 2 pair merges + last-clip = 4 (all distinct here).
        assert out.shape == (4, 2)

    def test_all_candidates_feasible_2d(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            m = int(rng.integers(1, 8))
            raw = rng.uniform(0, 1, size=(m, 2))
            # Reduce to an antichain (the algorithms feed frontiers).
            keep = []
            for i in range(m):
                if not any(
                    np.all(raw[j] <= raw[i]) and np.any(raw[j] < raw[i])
                    for j in range(m)
                    if j != i
                ):
                    keep.append(i)
            frontiers = raw[keep]
            cap = rng.uniform(1.0, 2.0, size=2)
            out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
            for candidate in out:
                assert covers(candidate, np.minimum(frontiers, cap)), (
                    frontiers,
                    cap,
                    candidate,
                )

    def test_candidates_maximal_2d(self):
        """No candidate is component-wise dominated by another (bigger
        distance = less movement = better)."""
        rng = np.random.default_rng(1)
        for _ in range(100):
            frontiers = np.sort(rng.uniform(0, 1, size=(4, 2)), axis=0)
            # Make an antichain: ascending dim0, descending dim1.
            frontiers[:, 1] = frontiers[::-1, 1]
            cap = np.array([2.0, 2.0])
            out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
            for i in range(len(out)):
                for j in range(len(out)):
                    if i != j:
                        assert not (
                            np.all(out[i] <= out[j]) and np.any(out[i] < out[j])
                        )

    def test_fallback_present_for_3d(self):
        frontiers = np.array([[0.2, 0.8, 0.5], [0.8, 0.2, 0.5]])
        cap = np.ones(3)
        out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
        minima = frontiers.min(axis=0)
        assert any(np.allclose(row, minima) for row in out)

    def test_sort_dim_validated(self):
        with pytest.raises(ValueError):
            staircase_distance_candidates(
                np.array([[0.5, 0.5]]), np.ones(2), sort_dim=2
            )

    def test_deduplication(self):
        frontiers = np.array([[0.5, 0.5], [0.5, 0.5]])
        cap = np.ones(2)
        out = staircase_distance_candidates(frontiers, cap, sort_dim=0)
        assert len(out) == len(np.unique(out, axis=0))
