"""Engine mutation surface: versioned stores, incremental index upkeep
and locality-scoped cache invalidation."""

import numpy as np
import pytest

from repro import Box, WhyNotConfig, WhyNotEngine
from repro.config import DominancePolicy
from repro.exceptions import EmptyDatasetError, InvalidParameterError

# Explicit bounds shared with the fresh comparison engines: bounds are
# the domain, not the data extent, so equivalence checks must pin them
# (a mutation can move the inferred extent).
BOUNDS = Box(np.zeros(2), np.ones(2))


def _mono(n: int = 24, seed: int = 21, **cfg) -> WhyNotEngine:
    rng = np.random.default_rng(seed)
    pts = np.round(rng.uniform(0.0, 1.0, size=(n, 2)) * 16) / 16
    return WhyNotEngine(
        pts, backend="scan", config=WhyNotConfig(**cfg), bounds=BOUNDS
    )


def _bi(n: int = 20, m: int = 16, seed: int = 22, **cfg) -> WhyNotEngine:
    rng = np.random.default_rng(seed)
    prods = np.round(rng.uniform(0.0, 1.0, size=(n, 2)) * 16) / 16
    custs = np.round(rng.uniform(0.0, 1.0, size=(m, 2)) * 16) / 16
    return WhyNotEngine(
        prods,
        customers=custs,
        backend="scan",
        config=WhyNotConfig(**cfg),
        bounds=BOUNDS,
    )


Q = np.array([0.5, 0.5])


def _warm(engine, queries=(Q, np.array([0.25, 0.75]))):
    for q in queries:
        engine.reverse_skyline(q)
        engine.safe_region(q)
        engine.safe_region(q, approximate=True, k=5)
    return queries


def _assert_fresh_equivalent(engine, queries=(Q, np.array([0.25, 0.75]))):
    """Every query surface of the mutated engine matches a cold engine
    built over the same (current) matrices."""
    if engine.monochromatic:
        fresh = WhyNotEngine(
            engine.products, backend="scan", config=engine.config, bounds=BOUNDS
        )
    else:
        fresh = WhyNotEngine(
            engine.products,
            customers=engine.customers,
            backend="scan",
            config=engine.config,
            bounds=BOUNDS,
        )
    assert np.array_equal(engine.index.points, engine.products)
    for q in queries:
        assert np.array_equal(engine.reverse_skyline(q), fresh.reverse_skyline(q))
        a, b = engine.safe_region(q).region, fresh.safe_region(q).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)
        a = engine.safe_region(q, approximate=True, k=5).region
        b = fresh.safe_region(q, approximate=True, k=5).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)
        everyone = list(range(engine.customers.shape[0]))
        assert np.array_equal(
            engine.membership_mask(everyone, q), fresh.membership_mask(everyone, q)
        )


class TestProductMutators:
    def test_insert_returns_positions(self):
        engine = _mono()
        positions = engine.insert_products([[0.1, 0.9], [0.9, 0.1]])
        assert positions.tolist() == [24, 25]
        assert engine.products.shape[0] == 26
        assert engine.dataset_epoch == 1

    def test_delete_returns_mapping(self):
        engine = _mono()
        mapping = engine.delete_products([0, 5])
        assert mapping.shape == (24,)
        assert mapping[0] == -1 and mapping[5] == -1
        assert engine.products.shape[0] == 22

    def test_update_returns_positions(self):
        engine = _mono()
        positions = engine.update_products([7, 3], [[0.2, 0.2], [0.8, 0.8]])
        assert positions.tolist() == [3, 7]
        assert np.array_equal(engine.products[3], [0.8, 0.8])

    def test_delete_everything_rejected(self):
        engine = _mono(n=4)
        with pytest.raises(EmptyDatasetError):
            engine.delete_products([0, 1, 2, 3])

    def test_out_of_range_rejected(self):
        engine = _mono()
        with pytest.raises(InvalidParameterError):
            engine.delete_products([24])

    def test_mono_shares_one_store(self):
        engine = _mono()
        assert engine.product_store is engine.customer_store
        engine.insert_products([[0.5, 0.5]])
        assert engine.customers is engine.products

    def test_mono_customer_mutators_rejected(self):
        engine = _mono()
        with pytest.raises(InvalidParameterError, match="monochromatic"):
            engine.insert_customers([[0.5, 0.5]])
        with pytest.raises(InvalidParameterError, match="monochromatic"):
            engine.delete_customers([0])
        with pytest.raises(InvalidParameterError, match="monochromatic"):
            engine.update_customers([0], [[0.5, 0.5]])


class TestCustomerMutators:
    def test_bichromatic_customer_churn(self):
        engine = _bi()
        _warm(engine)
        engine.insert_customers([[0.45, 0.55]])
        engine.delete_customers([2])
        engine.update_customers([0], [[0.6, 0.4]])
        assert engine.dataset_epoch == 3
        _assert_fresh_equivalent(engine)

    def test_epoch_sums_both_stores(self):
        engine = _bi()
        engine.insert_products([[0.5, 0.5]])
        engine.insert_customers([[0.5, 0.5]])
        assert engine.product_store.epoch == 1
        assert engine.customer_store.epoch == 1
        assert engine.dataset_epoch == 2


class TestCacheCoherence:
    @pytest.mark.parametrize("kind", ["insert", "delete", "update"])
    def test_mono_single_mutation(self, kind):
        engine = _mono()
        _warm(engine)
        if kind == "insert":
            engine.insert_products([[0.52, 0.48]])
        elif kind == "delete":
            engine.delete_products([int(engine.reverse_skyline(Q)[0])])
        else:
            engine.update_products([4], [[0.51, 0.49]])
        _assert_fresh_equivalent(engine)

    @pytest.mark.parametrize("kind", ["insert", "delete", "update"])
    def test_bichromatic_product_mutation(self, kind):
        engine = _bi()
        _warm(engine)
        if kind == "insert":
            engine.insert_products([[0.52, 0.48]])
        elif kind == "delete":
            engine.delete_products([1, 8])
        else:
            engine.update_products([0, 9], [[0.1, 0.1], [0.9, 0.9]])
        _assert_fresh_equivalent(engine)

    def test_strict_policy_churn(self):
        engine = _mono(policy=DominancePolicy.STRICT)
        _warm(engine)
        engine.insert_products([[0.5, 0.5]])
        engine.delete_products([3])
        _assert_fresh_equivalent(engine)

    def test_scoped_and_full_agree(self):
        """scoped_invalidation=False must give bit-identical answers."""
        scoped, full = _mono(), _mono(scoped_invalidation=False)
        for engine in (scoped, full):
            _warm(engine)
            engine.insert_products([[0.3, 0.7]])
            engine.delete_products([2])
            engine.update_products([5], [[0.55, 0.45]])
        assert np.array_equal(scoped.reverse_skyline(Q), full.reverse_skyline(Q))
        a, b = scoped.safe_region(Q).region, full.safe_region(Q).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)

    def test_counters_balance(self):
        engine = _mono()
        _warm(engine)
        engine.insert_products([[0.4, 0.6]])
        engine.delete_products([1])
        considered = engine._scoped_considered.value
        evicted = engine._scoped_evicted.value
        retained = engine._scoped_retained.value
        assert considered == evicted + retained
        assert engine._scoped_repaired.value <= retained
        assert engine._mutations.value == 2
        assert engine._epoch_gauge.value == engine.dataset_epoch == 2

    def test_full_path_counts_evictions(self):
        engine = _mono(scoped_invalidation=False)
        _warm(engine)
        before = engine._evicted_full.value
        engine.insert_products([[0.4, 0.6]])
        assert engine._evicted_full.value > before


class TestApproxStoreEpochKeying:
    def test_store_not_reused_across_epochs_when_full_invalidation(self):
        engine = _mono(scoped_invalidation=False)
        store0 = engine.approx_store(5)
        engine.safe_region(Q, approximate=True, k=5)
        engine.insert_products([[0.45, 0.55]])
        store1 = engine.approx_store(5)
        assert store1 is not store0
        assert (5, engine.dataset_epoch) in engine._approx_stores

    def test_scoped_path_rekeys_repaired_store(self):
        engine = _mono()
        engine.safe_region(Q, approximate=True, k=5)
        engine.insert_products([[0.45, 0.55]])
        assert all(
            epoch == engine.dataset_epoch for (_, epoch) in engine._approx_stores
        )


class TestWithoutProducts:
    def test_contract_unchanged(self):
        engine = _mono()
        reduced, mapping = engine.without_products([0, 3])
        assert reduced.products.shape[0] == 22
        assert mapping[0] == -1 and mapping[3] == -1
        assert np.array_equal(
            reduced.products, engine.products[np.flatnonzero(mapping >= 0)]
        )
        # The original engine is untouched (epoch 0, full matrix).
        assert engine.dataset_epoch == 0
        assert engine.products.shape[0] == 24

    def test_errors_preserved(self):
        engine = _mono(n=3)
        with pytest.raises(InvalidParameterError, match="out of range"):
            engine.without_products([3])
        with pytest.raises(EmptyDatasetError):
            engine.without_products([0, 1, 2])


class TestSnapshotsAcrossMutation:
    def test_store_snapshot_stable_under_engine_churn(self):
        engine = _mono()
        snap = engine.product_store.snapshot()
        frozen = snap.matrix.copy()
        engine.insert_products([[0.2, 0.2]])
        engine.delete_products([0])
        assert np.array_equal(snap.matrix, frozen)
        assert snap.epoch == 0
