"""Direct unit tests for the tolerance-aware membership verification."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.core._verify import verify_membership
from repro.index.scan import ScanIndex

WEAK = DominancePolicy.WEAK
STRICT = DominancePolicy.STRICT


def index_of(points):
    return ScanIndex(np.asarray(points, dtype=np.float64))


class TestExactSemantics:
    def test_empty_window_is_member(self):
        idx = index_of([[10.0, 10.0]])
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], WEAK)

    def test_interior_blocker_blocks_both(self):
        idx = index_of([[0.5, 0.5]])
        assert not verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)
        assert not verify_membership(idx, [0.0, 0.0], [1.0, 1.0], WEAK)

    def test_boundary_tie_blocks_only_weak(self):
        # Blocker ties the window in y and is strictly inside in x.
        idx = index_of([[0.5, 1.0]])
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)
        assert not verify_membership(idx, [0.0, 0.0], [1.0, 1.0], WEAK)

    def test_all_dims_tie_blocks_neither(self):
        idx = index_of([[1.0, 1.0]])
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], WEAK)

    def test_exclusion(self):
        idx = index_of([[0.5, 0.5]])
        assert verify_membership(
            idx, [0.0, 0.0], [1.0, 1.0], STRICT, exclude=(0,)
        )


class TestTolerance:
    def test_one_ulp_boundary_flip_forgiven(self):
        """A blocker one rounding error inside the boundary must not
        disqualify a STRICT answer."""
        eps = np.finfo(np.float64).eps
        idx = index_of([[0.5, 1.0 - eps]])
        assert verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)

    def test_clear_violation_still_detected(self):
        idx = index_of([[0.5, 0.999]])
        assert not verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)

    def test_custom_rtol_widens_forgiveness(self):
        idx = index_of([[0.5, 0.9999]])
        assert not verify_membership(idx, [0.0, 0.0], [1.0, 1.0], STRICT)
        assert verify_membership(
            idx, [0.0, 0.0], [1.0, 1.0], STRICT, rtol=1e-3
        )

    def test_zero_rtol_is_exact(self):
        eps = np.finfo(np.float64).eps
        idx = index_of([[0.5, 1.0 - 2 * eps]])
        assert not verify_membership(
            idx, [0.0, 0.0], [1.0, 1.0], STRICT, rtol=0.0
        )

    def test_slack_scales_with_coordinates(self):
        """At coordinate magnitude 1e6, a 1e-9 absolute wobble is within
        rounding and must be forgiven."""
        idx = index_of([[5e5, 1e6 - 1e-4]])
        assert verify_membership(
            idx, [0.0, 0.0], [1e6, 1e6], STRICT, rtol=1e-9
        )


class TestAgainstWindowOracle:
    def test_matches_window_query_generic_data(self):
        """On tie-free random data, verification equals the exact window
        test under both policies."""
        from repro.skyline.window import window_is_empty

        rng = np.random.default_rng(0)
        for _ in range(100):
            pts = rng.uniform(0, 1, size=(20, 2))
            idx = ScanIndex(pts)
            c = rng.uniform(0, 1, size=2)
            q = rng.uniform(0, 1, size=2)
            for policy in (WEAK, STRICT):
                assert verify_membership(idx, c, q, policy) == window_is_empty(
                    idx, c, q, policy
                )
