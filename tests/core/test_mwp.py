"""Tests for Algorithm 1 (modify why-not point)."""

import numpy as np
import pytest

from repro.config import DominancePolicy, WhyNotConfig
from repro.core.mwp import modify_why_not_point, mwp_candidate_points
from repro.core._verify import verify_membership
from repro.index.scan import ScanIndex


def random_case(rng, n=30):
    pts = rng.uniform(0, 1, size=(n, 2))
    q = rng.uniform(0.3, 0.7, size=2)
    c = rng.uniform(0, 1, size=2)
    return ScanIndex(pts), c, q


class TestCandidates:
    def test_member_returns_noop(self):
        idx = ScanIndex(np.array([[10.0, 10.0]]))
        result = modify_why_not_point(idx, [0.0, 0.0], [1.0, 1.0])
        assert result.is_noop
        assert result.best().cost == 0.0
        assert result.best().verified

    def test_every_candidate_admits_membership(self):
        """The heart of Algorithm 1: each returned c_t* has an empty open
        window w.r.t. q."""
        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(150):
            idx, c, q = random_case(rng)
            result = modify_why_not_point(idx, c, q)
            if result.is_noop:
                continue
            for cand in result.candidates:
                assert cand.verified, (c, q, cand)
                checked += 1
        assert checked > 100

    def test_candidates_stay_between_points(self):
        rng = np.random.default_rng(1)
        for _ in range(80):
            idx, c, q = random_case(rng)
            result = modify_why_not_point(idx, c, q)
            if result.is_noop:
                continue
            lo = np.minimum(c, q)
            hi = np.maximum(c, q)
            for cand in result.candidates:
                assert np.all(cand.point >= lo - 1e-12)
                assert np.all(cand.point <= hi + 1e-12)

    def test_candidates_pairwise_nondominated_in_movement(self):
        """'No two points in M dominate each other' (Section IV): no
        candidate moves less than another in every dimension."""
        rng = np.random.default_rng(2)
        for _ in range(80):
            idx, c, q = random_case(rng)
            points, lam, _front = mwp_candidate_points(
                idx, c, q, WhyNotConfig()
            )
            if lam.size == 0 or len(points) < 2:
                continue
            moves = np.abs(points - c)
            for i in range(len(moves)):
                for j in range(len(moves)):
                    if i == j:
                        continue
                    assert not (
                        np.all(moves[i] <= moves[j]) & np.any(moves[i] < moves[j])
                    ), (c, q, points)

    def test_margin_yields_weak_membership(self):
        """With a positive margin, candidates verify under WEAK too."""
        rng = np.random.default_rng(3)
        config = WhyNotConfig(margin=1e-6)
        for _ in range(60):
            idx, c, q = random_case(rng)
            result = modify_why_not_point(idx, c, q, config=config)
            if result.is_noop:
                continue
            for cand in result.candidates:
                assert verify_membership(
                    idx, cand.point, q, DominancePolicy.WEAK
                ), (c, q, cand)

    def test_exclusion_respected(self):
        # The why-not point itself sits in the window unless excluded.
        pts = np.array([[0.0, 0.0], [0.5, 0.5]])
        idx = ScanIndex(pts)
        with_self = modify_why_not_point(idx, pts[0], [1.0, 1.0], exclude=(0,))
        assert with_self.lambda_positions.tolist() == [1]

    def test_frontier_subset_of_lambda(self):
        rng = np.random.default_rng(4)
        for _ in range(40):
            idx, c, q = random_case(rng, n=60)
            result = modify_why_not_point(idx, c, q)
            lam = set(result.lambda_positions.tolist())
            frontier = set(result.frontier_positions.tolist())
            assert frontier <= lam

    def test_costs_reported_and_sorted(self):
        rng = np.random.default_rng(5)
        idx, c, q = random_case(rng)
        result = modify_why_not_point(idx, c, q, weights=[0.5, 0.5])
        costs = [cand.cost for cand in result.candidates]
        assert costs == sorted(costs)
        assert all(cost >= 0 for cost in costs)


class TestHigherDimensions:
    def test_3d_candidates_verified(self):
        rng = np.random.default_rng(6)
        verified_any = False
        for _ in range(60):
            pts = rng.uniform(0, 1, size=(40, 3))
            q = rng.uniform(0.3, 0.7, size=3)
            c = rng.uniform(0, 1, size=3)
            idx = ScanIndex(pts)
            result = modify_why_not_point(idx, c, q)
            if result.is_noop:
                continue
            # In d > 2 the staircase merge is heuristic, but the appended
            # fallback guarantees at least one verified candidate.
            assert any(cand.verified for cand in result.candidates), (c, q)
            verified_any = True
        assert verified_any

    def test_degenerate_dimension(self):
        # Why-not point ties the query in one dimension.
        pts = np.array([[0.5, 0.5]])
        idx = ScanIndex(pts)
        c = np.array([0.0, 1.0])
        q = np.array([1.0, 1.0])
        result = modify_why_not_point(idx, c, q)
        if not result.is_noop:
            for cand in result.candidates:
                assert cand.point[1] == 1.0  # Collapsed dimension fixed.
