"""Tests for the WhyNotEngine facade."""

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.config import CostWeights, WhyNotConfig
from repro.data.paperdata import paper_points, paper_query
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.box import Box


class TestConstruction:
    def test_monochromatic_default(self):
        engine = WhyNotEngine(paper_points())
        assert engine.monochromatic
        assert engine.customers is engine.products

    def test_bichromatic(self):
        pts = paper_points()
        engine = WhyNotEngine(pts[1:], customers=pts[:1])
        assert not engine.monochromatic
        assert engine.customers.shape == (1, 2)

    def test_empty_products_rejected(self):
        with pytest.raises(EmptyDatasetError):
            WhyNotEngine(np.empty((0, 2)))

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            WhyNotEngine(paper_points(), backend="btree")

    def test_bounds_derived_from_data(self):
        engine = WhyNotEngine(paper_points())
        assert engine.bounds.lo.tolist() == [2.5, 20.0]
        assert engine.bounds.hi.tolist() == [26.0, 90.0]

    def test_weights_resolved(self):
        engine = WhyNotEngine(
            paper_points(), weights=CostWeights(alpha=(0.7, 0.3))
        )
        assert engine.alpha == (0.7, 0.3)
        assert engine.beta == (0.5, 0.5)


class TestAddressing:
    def test_position_gets_self_exclusion(self):
        engine = WhyNotEngine(paper_points())
        point, exclude = engine._resolve_customer(0)
        assert point.tolist() == [5.0, 30.0]
        assert exclude == (0,)

    def test_raw_point_no_exclusion(self):
        engine = WhyNotEngine(paper_points())
        point, exclude = engine._resolve_customer([5.0, 30.0])
        assert exclude == ()

    def test_out_of_range_position(self):
        engine = WhyNotEngine(paper_points())
        with pytest.raises(InvalidParameterError):
            engine._resolve_customer(99)

    def test_bichromatic_position_no_exclusion(self):
        pts = paper_points()
        engine = WhyNotEngine(pts[1:], customers=pts[:1])
        _point, exclude = engine._resolve_customer(0)
        assert exclude == ()


class TestBackendsAgree:
    def test_rsl_and_methods_identical(self, paper_q):
        scan = WhyNotEngine(paper_points(), backend="scan")
        rtree = WhyNotEngine(paper_points(), backend="rtree")
        assert np.array_equal(
            scan.reverse_skyline(paper_q), rtree.reverse_skyline(paper_q)
        )
        s_mwp = {tuple(c.point) for c in scan.modify_why_not_point(0, paper_q)}
        r_mwp = {tuple(c.point) for c in rtree.modify_why_not_point(0, paper_q)}
        assert s_mwp == r_mwp

    def test_random_data_agreement(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(120, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        scan = WhyNotEngine(pts, backend="scan")
        rtree = WhyNotEngine(pts, backend="rtree")
        assert np.array_equal(scan.reverse_skyline(q), rtree.reverse_skyline(q))


class TestCaching:
    def test_rsl_cached(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        first = engine.reverse_skyline(paper_q)
        second = engine.reverse_skyline(paper_q)
        assert first is second

    def test_safe_region_cached(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        assert engine.safe_region(paper_q) is engine.safe_region(paper_q)

    def test_approx_store_cached_per_k(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        assert engine.approx_store(5) is engine.approx_store(5)
        assert engine.approx_store(5) is not engine.approx_store(7)


class TestQueryOutsideBounds:
    def test_geometry_bounds_expand(self):
        engine = WhyNotEngine(paper_points())
        q = np.array([100.0, 100.0])
        expanded = engine._geometry_bounds(q)
        assert expanded.contains_point(q)
        # Safe region still works for remote queries.
        sr = engine.safe_region(q)
        assert sr.contains(q)


class TestCostHelpers:
    def test_movement_costs(self, paper_q):
        engine = WhyNotEngine(paper_points())
        assert engine.why_not_movement_cost([5, 30], [5, 30]) == 0.0
        assert engine.query_movement_cost(paper_q, paper_q) == 0.0
        cost = engine.why_not_movement_cost([5.0, 30.0], [8.0, 30.0])
        # Price range 2.5..26 -> 3/23.5 * 0.5.
        assert cost == pytest.approx(0.5 * 3.0 / 23.5)

    def test_mqp_total_cost_zero_inside_safe_region(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        sr = engine.safe_region(paper_q)
        inside = sr.region.boxes[0].center
        assert engine.mqp_total_cost(paper_q, inside) == pytest.approx(0.0)

    def test_mqp_total_cost_counts_lost_members(self, paper_q):
        """Moving q far away loses customers; the penalty must be
        positive and at least the escape distance."""
        engine = WhyNotEngine(paper_points(), backend="scan")
        far = np.array([25.0, 25.0])
        escape = engine.query_movement_cost(
            engine.safe_region(paper_q).region.nearest_point_to(far), far
        )
        total = engine.mqp_total_cost(paper_q, far)
        assert total >= escape - 1e-12
        assert total > 0

    def test_mwq_cost_matches_result(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        result = engine.modify_both(0, paper_q)
        assert result.cost == 0.0  # Known overlap case.


class TestApproximatePath:
    def test_approx_mwq_runs(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        result = engine.modify_both(0, paper_q, approximate=True, k=3)
        assert result.case is not None

    def test_approx_sr_subset(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        exact = engine.safe_region(paper_q)
        approx = engine.safe_region(paper_q, approximate=True, k=3)
        assert approx.area() <= exact.area() + 1e-9


class TestLostCustomers:
    def test_safe_move_loses_nobody(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        sr = engine.safe_region(paper_q)
        inside = sr.region.boxes[0].center
        assert engine.lost_customers(paper_q, inside).size == 0

    def test_far_move_loses_members(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        lost = engine.lost_customers(paper_q, np.array([25.0, 25.0]))
        assert lost.size > 0
        members = set(engine.reverse_skyline(paper_q).tolist())
        assert set(lost.tolist()) <= members

    def test_identity_move_loses_nobody(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        assert engine.lost_customers(paper_q, paper_q).size == 0

    def test_consistent_with_membership(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        q_star = np.array([12.0, 60.0])
        lost = set(engine.lost_customers(paper_q, q_star).tolist())
        for member in engine.reverse_skyline(paper_q).tolist():
            assert (member in lost) == (not engine.is_member(member, q_star))


class TestRestrictedSafeRegion:
    def test_restriction_is_subset(self, paper_q):
        from repro.geometry.box import Box

        engine = WhyNotEngine(paper_points(), backend="scan")
        sr = engine.safe_region(paper_q)
        limits = Box([8.0, 50.0], [9.5, 60.0])
        clipped = sr.restricted(limits)
        assert clipped.area() <= sr.area() + 1e-12
        for box in clipped.region:
            assert limits.contains_box(box)

    def test_restriction_still_safe(self, paper_q):
        """Lemma 2 survives truncation: every point of the clipped region
        keeps all members (Section V.B)."""
        from repro.geometry.box import Box

        engine = WhyNotEngine(paper_points(), backend="scan")
        sr = engine.safe_region(paper_q)
        clipped = sr.restricted(Box([8.0, 50.0], [9.5, 60.0]))
        if clipped.region.is_empty():
            pytest.skip("limits excluded the whole region")
        rng = np.random.default_rng(0)
        for q_star in clipped.region.sample_points(rng, 25):
            assert engine.lost_customers(paper_q, q_star).size == 0

    def test_empty_restriction(self, paper_q):
        from repro.geometry.box import Box

        engine = WhyNotEngine(paper_points(), backend="scan")
        sr = engine.safe_region(paper_q)
        clipped = sr.restricted(Box([0.0, 0.0], [1.0, 1.0]))
        assert clipped.region.is_empty()
        assert clipped.is_degenerate()


class TestWithoutProducts:
    def test_lemma1_deleting_culprits_admits(self, paper_q):
        """Lemma 1 at the engine level: remove the Λ culprits and the
        why-not point joins the reverse skyline."""
        engine = WhyNotEngine(paper_points(), backend="scan")
        culprits = engine.explain(0, paper_q).culprit_positions
        reduced, mapping = engine.without_products(culprits.tolist())
        assert reduced.is_member(int(mapping[0]), paper_q)

    def test_mapping_shape(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        reduced, mapping = engine.without_products([1, 3])
        assert reduced.products.shape == (6, 2)
        assert mapping[1] == -1 and mapping[3] == -1
        assert mapping[0] == 0 and mapping[2] == 1

    def test_monochromatic_preserved(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        reduced, _ = engine.without_products([1])
        assert reduced.monochromatic

    def test_bichromatic_customers_kept(self, paper_q):
        pts = paper_points()
        engine = WhyNotEngine(pts[1:], customers=pts[:1], backend="scan")
        reduced, _ = engine.without_products([0])
        assert not reduced.monochromatic
        assert reduced.customers.shape == (1, 2)
        assert reduced.products.shape == (6, 2)

    def test_cannot_delete_everything(self):
        engine = WhyNotEngine(paper_points(), backend="scan")
        with pytest.raises(EmptyDatasetError):
            engine.without_products(range(8))

    def test_out_of_range_rejected(self):
        engine = WhyNotEngine(paper_points(), backend="scan")
        with pytest.raises(InvalidParameterError):
            engine.without_products([99])

    def test_bounds_and_weights_inherited(self, paper_q):
        engine = WhyNotEngine(paper_points(), backend="scan")
        reduced, _ = engine.without_products([5])
        assert reduced.bounds == engine.bounds
        assert reduced.alpha == engine.alpha
