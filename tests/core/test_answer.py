"""Tests for the result dataclasses."""

import numpy as np
import pytest

from repro.core.answer import (
    Candidate,
    Explanation,
    ModificationResult,
    MWQCase,
    MWQResult,
)


class TestCandidate:
    def test_point_frozen(self):
        cand = Candidate(np.array([1.0, 2.0]), cost=0.5)
        with pytest.raises(ValueError):
            cand.point[0] = 9.0

    def test_with_cost_and_verified(self):
        cand = Candidate(np.array([1.0, 2.0]))
        updated = cand.with_cost(0.25).with_verified(True)
        assert updated.cost == 0.25
        assert updated.verified is True
        assert np.isnan(cand.cost)  # Original unchanged.

    def test_repr(self):
        cand = Candidate(np.array([1.0, 2.0]), cost=0.5, verified=True)
        text = repr(cand)
        assert "0.5" in text and "True" in text
        assert "n/a" in repr(Candidate(np.array([1.0])))


class TestModificationResult:
    def make(self, costs, verified=None):
        result = ModificationResult(
            method="MWP",
            why_not=np.zeros(2),
            query=np.ones(2),
            lambda_positions=np.array([0]),
        )
        for i, cost in enumerate(costs):
            flag = verified[i] if verified else None
            result.candidates.append(Candidate(np.zeros(2), cost, flag))
        return result

    def test_best_is_cheapest(self):
        result = self.make([0.5, 0.2, 0.9])
        assert result.best().cost == 0.2

    def test_best_prefers_verified(self):
        result = self.make([0.1, 0.2], verified=[False, True])
        assert result.best().cost == 0.2

    def test_best_falls_back_when_all_unverified(self):
        result = self.make([0.3, 0.1], verified=[False, False])
        assert result.best().cost == 0.1

    def test_best_none_when_empty(self):
        result = ModificationResult(
            method="MWP", why_not=np.zeros(2), query=np.ones(2),
            lambda_positions=np.array([0]),
        )
        assert result.best() is None

    def test_noop_detection(self):
        result = ModificationResult(
            method="MWP", why_not=np.zeros(2), query=np.ones(2)
        )
        assert result.is_noop

    def test_iteration_and_len(self):
        result = self.make([0.1, 0.2])
        assert len(result) == 2
        assert [c.cost for c in result] == [0.1, 0.2]


class TestMWQResult:
    def test_overlap_cost_zero(self):
        result = MWQResult(
            case=MWQCase.OVERLAP, why_not=np.zeros(2), query=np.ones(2),
            query_candidates=[Candidate(np.ones(2), cost=0.0)],
        )
        assert result.cost == 0.0

    def test_disjoint_cost_from_best_pair(self):
        pairs = [
            (Candidate(np.ones(2), 0.0), Candidate(np.zeros(2), 0.4)),
            (Candidate(np.ones(2), 0.0), Candidate(np.zeros(2), 0.2)),
        ]
        result = MWQResult(
            case=MWQCase.DISJOINT, why_not=np.zeros(2), query=np.ones(2),
            pairs=pairs,
        )
        assert result.cost == 0.2
        assert result.best_pair()[1].cost == 0.2

    def test_disjoint_empty_pairs_nan(self):
        result = MWQResult(
            case=MWQCase.DISJOINT, why_not=np.zeros(2), query=np.ones(2)
        )
        assert np.isnan(result.cost)

    def test_best_query_candidate_by_cost(self):
        result = MWQResult(
            case=MWQCase.OVERLAP, why_not=np.zeros(2), query=np.ones(2),
            query_candidates=[
                Candidate(np.ones(2), 0.3),
                Candidate(np.zeros(2), 0.1),
            ],
        )
        assert result.best_query_candidate().cost == 0.1


class TestExplanation:
    def test_member_description(self):
        exp = Explanation(
            why_not=np.zeros(2), query=np.ones(2),
            culprit_positions=np.empty(0, dtype=np.int64),
            culprits=np.empty((0, 2)),
        )
        assert exp.is_member
        assert "already" in exp.describe()

    def test_nonmember_lists_culprits(self):
        exp = Explanation(
            why_not=np.zeros(2), query=np.ones(2),
            culprit_positions=np.array([3]),
            culprits=np.array([[7.5, 42.0]]),
        )
        assert not exp.is_member
        assert "7.5" in exp.describe()
        assert "Lemma 1" in exp.describe()
