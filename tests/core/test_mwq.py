"""Tests for Algorithm 4 (modify query and why-not point)."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.answer import MWQCase
from repro.core.mwq import modify_query_and_why_not_point
from repro.core.safe_region import SafeRegion, compute_safe_region
from repro.core._verify import verify_membership
from repro.geometry.box import Box
from repro.geometry.region import BoxRegion
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive

UNIT = Box([0.0, 0.0], [1.0, 1.0])


def make_case(seed, n=30):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 1, size=(n, 2))
    q = rng.uniform(0.25, 0.75, size=2)
    idx = ScanIndex(pts)
    rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
    sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
    return idx, pts, q, rsl, sr


def pick_why_not(idx, pts, q, rsl, rng):
    members = set(rsl.tolist())
    for _ in range(100):
        j = int(rng.integers(0, len(pts)))
        if j in members:
            continue
        if not verify_membership(idx, pts[j], q, exclude=(j,)):
            return j
    return None


class TestCaseAnalysis:
    def test_cases_consistent_over_random_inputs(self):
        """C1 answers have zero cost and verified query candidates; C2
        answers pair a safe-region corner with a verified why-not move."""
        rng = np.random.default_rng(0)
        seen = {MWQCase.OVERLAP: 0, MWQCase.DISJOINT: 0}
        for seed in range(25):
            idx, pts, q, rsl, sr = make_case(seed)
            why_not = pick_why_not(idx, pts, q, rsl, rng)
            if why_not is None:
                continue
            result = modify_query_and_why_not_point(
                idx, pts[why_not], q, sr, UNIT, exclude=(why_not,)
            )
            if result.case is MWQCase.OVERLAP:
                seen[MWQCase.OVERLAP] += 1
                assert result.cost == 0.0
                best = result.best_query_candidate()
                assert best is not None and best.verified
                # The relocated query keeps every member.
                for member in rsl.tolist():
                    assert verify_membership(
                        idx, pts[member], best.point, exclude=(member,)
                    )
            elif result.case is MWQCase.DISJOINT:
                seen[MWQCase.DISJOINT] += 1
                assert result.pairs
                q_cand, c_cand = result.best_pair()
                assert sr.contains(q_cand.point)
                assert c_cand.verified
                assert result.cost >= 0.0
        assert seen[MWQCase.OVERLAP] > 0  # Both branches must be exercised
        assert seen[MWQCase.DISJOINT] > 0  # by the seed range.

    def test_member_short_circuit(self):
        idx, pts, q, rsl, sr = make_case(1)
        if rsl.size == 0:
            pytest.skip("no members")
        member = int(rsl[0])
        result = modify_query_and_why_not_point(
            idx, pts[member], q, sr, UNIT, exclude=(member,)
        )
        assert result.case is MWQCase.ALREADY_MEMBER
        assert result.cost == 0.0


class TestDegenerateSafeRegion:
    def test_point_region_reduces_to_mwp(self):
        """When SR = {q}, Algorithm 4 degenerates to Algorithm 1 (the
        paper's observation about the last rows of Table III)."""
        from repro.core.mwp import modify_why_not_point

        rng = np.random.default_rng(2)
        idx, pts, q, rsl, _sr = make_case(2)
        why_not = pick_why_not(idx, pts, q, rsl, rng)
        if why_not is None:
            pytest.skip("no why-not point found")
        degenerate = SafeRegion(
            query=q, region=BoxRegion([Box(q, q)]), rsl_positions=rsl
        )
        result = modify_query_and_why_not_point(
            idx, pts[why_not], q, degenerate, UNIT, exclude=(why_not,)
        )
        assert result.case is MWQCase.DISJOINT
        mwp = modify_why_not_point(idx, pts[why_not], q, exclude=(why_not,))
        best_pair = result.best_pair()
        assert np.allclose(best_pair[0].point, q)
        mwq_points = {tuple(p[1].point) for p in result.pairs}
        mwp_points = {tuple(c.point) for c in mwp.candidates}
        assert mwq_points == mwp_points

    def test_mwq_never_worse_than_mwp(self):
        """With q always among the corner candidates, the best C2 pair
        costs at most the best MWP move."""
        from repro.core.mwp import modify_why_not_point

        rng = np.random.default_rng(3)
        compared = 0
        for seed in range(20):
            idx, pts, q, rsl, sr = make_case(seed)
            why_not = pick_why_not(idx, pts, q, rsl, rng)
            if why_not is None:
                continue
            weights = [0.5, 0.5]
            result = modify_query_and_why_not_point(
                idx, pts[why_not], q, sr, UNIT,
                weights=weights, exclude=(why_not,),
            )
            mwp_best = modify_why_not_point(
                idx, pts[why_not], q, weights=weights, exclude=(why_not,)
            ).best()
            if result.case is MWQCase.OVERLAP:
                assert 0.0 <= mwp_best.cost + 1e-12
            else:
                assert result.cost <= mwp_best.cost + 1e-9
            compared += 1
        assert compared > 5


class TestPrecomputedDDR:
    def test_ddr_shortcut_equivalent(self):
        from repro.core.safe_region import anti_dominance_region

        rng = np.random.default_rng(4)
        idx, pts, q, rsl, sr = make_case(5)
        why_not = pick_why_not(idx, pts, q, rsl, rng)
        if why_not is None:
            pytest.skip("no why-not point")
        ddr = anti_dominance_region(idx, pts[why_not], UNIT, exclude=(why_not,))
        direct = modify_query_and_why_not_point(
            idx, pts[why_not], q, sr, UNIT, exclude=(why_not,)
        )
        shortcut = modify_query_and_why_not_point(
            idx, pts[why_not], q, sr, UNIT, exclude=(why_not,), ddr_why_not=ddr
        )
        assert direct.case == shortcut.case
        assert direct.cost == pytest.approx(shortcut.cost)
