"""Tests for the engine-level DSL cache (thresholds + staircase regions).

The cache is read-through: every answer must be identical with and
without it.  These tests pin the hit/miss accounting, the invalidation
contract, the parallel precompute, and the reuse across the engine's
pipelines (safe region, MWQ, approximate store, relaxation analysis).
"""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.dsl_cache import DSLCache, DSLCacheStats
from repro.core.relaxation import leave_one_out_regions
from repro.core.safe_region import compute_safe_region
from repro import WhyNotEngine
from repro.geometry.box import Box
from repro.geometry.transform import to_query_space
from repro.index.scan import ScanIndex
from repro.skyline.dynamic import dynamic_skyline_indices

UNIT = Box([0.0, 0.0], [1.0, 1.0])


@pytest.fixture
def dataset():
    rng = np.random.default_rng(5)
    return rng.uniform(0.05, 0.95, size=(40, 2))


@pytest.fixture
def cache(dataset):
    return DSLCache(
        ScanIndex(dataset), dataset, config=WhyNotConfig(), self_exclude=True
    )


class TestReadThrough:
    def test_thresholds_match_direct_computation(self, dataset, cache):
        for position in (0, 7, 23):
            direct_dsl = dynamic_skyline_indices(
                dataset, dataset[position], (position,)
            )
            direct = to_query_space(dataset[direct_dsl], dataset[position])
            assert cache.thresholds(position).tolist() == direct.tolist()

    def test_region_matches_uncached_construction(self, dataset, cache):
        from repro.core.safe_region import anti_dominance_region

        for position in (3, 11):
            uncached = anti_dominance_region(
                ScanIndex(dataset),
                dataset[position],
                UNIT,
                exclude=(position,),
            )
            cached = cache.region(position, UNIT)
            assert cached.lo.tolist() == uncached.lo.tolist()
            assert cached.hi.tolist() == uncached.hi.tolist()

    def test_safe_region_identical_with_and_without_cache(self, dataset, cache):
        idx = ScanIndex(dataset)
        q = np.array([0.4, 0.6])
        rsl = np.array([2, 9, 17, 30], dtype=np.int64)
        plain = compute_safe_region(idx, dataset, q, rsl, UNIT, self_exclude=True)
        cached = compute_safe_region(
            idx, dataset, q, rsl, UNIT, self_exclude=True, dsl_cache=cache
        )
        assert cached.region.lo.tolist() == plain.region.lo.tolist()
        assert cached.region.hi.tolist() == plain.region.hi.tolist()
        assert cached.area() == plain.area()


class TestAccounting:
    def test_threshold_hit_miss_sequence(self, cache):
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)
        cache.thresholds(4)
        assert (cache.stats.threshold_hits, cache.stats.threshold_misses) == (0, 1)
        cache.thresholds(4)
        assert (cache.stats.threshold_hits, cache.stats.threshold_misses) == (1, 1)
        assert len(cache) == 1

    def test_region_lookup_layers(self, cache):
        cache.region(6, UNIT)
        # First region call misses both layers (region + its thresholds).
        assert cache.stats.region_misses == 1
        assert cache.stats.threshold_misses == 1
        first = cache.region(6, UNIT)
        # Second call is served whole from the region layer.
        assert cache.stats.region_hits == 1
        assert cache.stats.threshold_hits == 0
        assert cache.region(6, UNIT) is first

    def test_region_keyed_by_bounds(self, cache):
        wide = Box([-1.0, -1.0], [2.0, 2.0])
        a = cache.region(2, UNIT)
        b = cache.region(2, wide)
        assert a is not b
        assert cache.stats.region_misses == 2
        # The threshold layer is shared across bounds.
        assert cache.stats.threshold_misses == 1
        assert cache.stats.threshold_hits == 1

    def test_hit_rate(self):
        stats = DSLCacheStats()
        assert stats.hit_rate == 0.0
        stats.threshold_hits = 3
        stats.region_misses = 1
        assert stats.hit_rate == pytest.approx(0.75)


class TestLifecycle:
    def test_precompute_fills_all(self, dataset, cache):
        cache.precompute(n_jobs=2)
        assert len(cache) == dataset.shape[0]
        assert cache.stats.threshold_misses == dataset.shape[0]
        before_hits, before_misses = cache.stats.hits, cache.stats.misses
        for position in range(dataset.shape[0]):
            cache.thresholds(position)
        assert cache.stats.hits - before_hits == dataset.shape[0]
        assert cache.stats.misses == before_misses

    def test_precompute_subset_and_idempotence(self, cache):
        cache.precompute([1, 2, 3])
        assert len(cache) == 3
        misses = cache.stats.threshold_misses
        cache.precompute([2, 3, 4])
        assert len(cache) == 4
        assert cache.stats.threshold_misses == misses + 1

    def test_invalidate_all_rolls_stats(self, cache):
        cache.region(0, UNIT)
        cache.region(1, UNIT)
        assert cache.stats.threshold_misses == 2
        cache.invalidate()
        assert len(cache) == 0
        # Full invalidation starts a new generation: hit/miss counters
        # roll to zero, the lifetime invalidation count is preserved.
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)
        assert cache.stats.invalidations == 1
        cache.thresholds(0)
        assert cache.stats.threshold_misses == 1  # recomputed after drop

    def test_invalidate_selected_positions(self, cache):
        cache.region(0, UNIT)
        cache.region(1, UNIT)
        cache.invalidate([0])
        assert len(cache) == 1
        cache.region(1, UNIT)
        assert cache.stats.region_hits == 1
        cache.region(0, UNIT)
        assert cache.stats.region_misses == 3


class TestEngineIntegration:
    @pytest.fixture
    def engine(self, dataset):
        return WhyNotEngine(dataset, backend="scan")

    def test_engine_owns_cache_by_default(self, engine):
        assert engine.dsl_cache is not None
        assert engine.dsl_cache.self_exclude == engine.monochromatic

    def test_config_can_disable_cache(self, dataset):
        engine = WhyNotEngine(
            dataset, backend="scan", config=WhyNotConfig(dsl_cache=False)
        )
        assert engine.dsl_cache is None
        q = np.array([0.5, 0.5])
        assert engine.safe_region(q).contains(q)

    def test_disabled_cache_same_answers(self, dataset):
        q = np.array([0.45, 0.55])
        with_cache = WhyNotEngine(dataset, backend="scan")
        without = WhyNotEngine(
            dataset, backend="scan", config=WhyNotConfig(dsl_cache=False)
        )
        a = with_cache.safe_region(q)
        b = without.safe_region(q)
        assert a.region.lo.tolist() == b.region.lo.tolist()
        assert a.area() == b.area()

    def test_safe_region_populates_stats(self, engine):
        q = np.array([0.5, 0.5])
        engine.safe_region(q)
        stats = engine.last_safe_region_stats
        assert stats is not None
        assert stats.members == engine.reverse_skyline(q).size
        assert stats.cache_misses > 0
        assert stats.cache_hits == 0
        assert stats.build_seconds > 0.0

    def test_repeat_members_hit_cache(self, engine):
        """Nearby queries share RSL members; the second construction is
        served from the cache."""
        engine.safe_region(np.array([0.5, 0.5]))
        engine.safe_region(np.array([0.5000001, 0.5]))
        stats = engine.last_safe_region_stats
        assert stats.cache_hit_rate > 0.9

    def test_relaxation_reuses_cached_members(self, engine):
        q = np.array([0.5, 0.5])
        engine.safe_region(q)  # warms every member region
        before_hits, before_misses = (
            engine.dsl_cache.stats.hits,
            engine.dsl_cache.stats.misses,
        )
        regions = leave_one_out_regions(engine, q)
        members = len(regions)
        if members >= 2:
            # Each of the n leave-one-out rebuilds reads n-1 member
            # regions, all already cached: a pure-hit phase.
            assert engine.dsl_cache.stats.hits - before_hits == members * (
                members - 1
            )
            assert engine.dsl_cache.stats.misses == before_misses

    def test_modify_both_matches_uncached(self, dataset):
        cached_engine = WhyNotEngine(dataset, backend="scan")
        plain_engine = WhyNotEngine(
            dataset, backend="scan", config=WhyNotConfig(dsl_cache=False)
        )
        q = np.array([0.48, 0.52])
        a = cached_engine.modify_both(0, q)
        b = plain_engine.modify_both(0, q)
        assert a.case == b.case
        assert np.allclose(a.query, b.query)
        if not np.isnan(a.cost) or not np.isnan(b.cost):
            assert a.cost == pytest.approx(b.cost)

    def test_approx_store_shares_threshold_layer(self, engine):
        engine.safe_region(np.array([0.5, 0.5]))  # warm thresholds
        before_hits = engine.dsl_cache.stats.hits
        store = engine.approx_store(k=3)
        for position in engine.reverse_skyline(np.array([0.5, 0.5])).tolist():
            store.entry(int(position))
        assert engine.dsl_cache.stats.hits > before_hits

    def test_invalidate_caches_clears_everything(self, engine):
        q = np.array([0.5, 0.5])
        engine.safe_region(q)
        assert len(engine.dsl_cache) > 0
        engine.invalidate_caches()
        assert len(engine.dsl_cache) == 0
        assert engine.last_safe_region_stats is None
        # The stats-reset contract: hit/miss counters roll with the
        # content they described; the invalidation count survives.
        assert (engine.dsl_cache.stats.hits, engine.dsl_cache.stats.misses) == (0, 0)
        assert engine.dsl_cache.stats.invalidations == 1
        assert engine.safe_region(q).contains(q)

    def test_without_products_gets_fresh_cache(self, engine):
        engine.safe_region(np.array([0.5, 0.5]))
        reduced, _ = engine.without_products([0])
        assert reduced.dsl_cache is not None
        assert reduced.dsl_cache is not engine.dsl_cache
        assert len(reduced.dsl_cache) == 0
        # Parent cache untouched by the reduced engine's existence.
        assert len(engine.dsl_cache) > 0
