"""Tests for Algorithm 2 (modify query point)."""

import numpy as np
import pytest

from repro.config import DominancePolicy, WhyNotConfig
from repro.core.mqp import modify_query_point, mqp_candidate_points
from repro.core._verify import verify_membership
from repro.index.scan import ScanIndex


def random_case(rng, n=30, dim=2):
    pts = rng.uniform(0, 1, size=(n, dim))
    q = rng.uniform(0.3, 0.7, size=dim)
    c = rng.uniform(0, 1, size=dim)
    return ScanIndex(pts), c, q


class TestCandidates:
    def test_member_returns_noop(self):
        idx = ScanIndex(np.array([[10.0, 10.0]]))
        result = modify_query_point(idx, [0.0, 0.0], [1.0, 1.0])
        assert result.is_noop
        assert result.best().cost == 0.0

    def test_every_candidate_enters_dsl(self):
        """Each refined q* must join the dynamic skyline of c_t."""
        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(150):
            idx, c, q = random_case(rng)
            result = modify_query_point(idx, c, q)
            if result.is_noop:
                continue
            for cand in result.candidates:
                assert cand.verified, (c, q, cand)
                checked += 1
        assert checked > 100

    def test_candidates_between_points(self):
        rng = np.random.default_rng(1)
        for _ in range(80):
            idx, c, q = random_case(rng)
            result = modify_query_point(idx, c, q)
            if result.is_noop:
                continue
            lo = np.minimum(c, q) - 1e-12
            hi = np.maximum(c, q) + 1e-12
            for cand in result.candidates:
                assert np.all(cand.point >= lo) and np.all(cand.point <= hi)

    def test_movement_candidates_nondominated(self):
        rng = np.random.default_rng(2)
        for _ in range(60):
            idx, c, q = random_case(rng)
            points, lam, _ = mqp_candidate_points(idx, c, q, WhyNotConfig())
            if lam.size == 0 or len(points) < 2:
                continue
            moves = np.abs(points - q)
            for i in range(len(moves)):
                for j in range(len(moves)):
                    if i != j:
                        assert not (
                            np.all(moves[i] <= moves[j])
                            & np.any(moves[i] < moves[j])
                        )

    def test_margin_weak_membership(self):
        rng = np.random.default_rng(3)
        config = WhyNotConfig(margin=1e-6)
        for _ in range(60):
            idx, c, q = random_case(rng)
            result = modify_query_point(idx, c, q, config=config)
            if result.is_noop:
                continue
            for cand in result.candidates:
                assert verify_membership(
                    idx, c, cand.point, DominancePolicy.WEAK
                ), (c, q, cand)

    def test_frontier_on_opposite_side_mirrored(self):
        """A blocker on the far side of c_t from q still yields candidates
        on q's side (the mirror construction)."""
        # c at origin, q upper-right, blocker lower-left inside the window.
        idx = ScanIndex(np.array([[-0.2, -0.3]]))
        c = np.array([0.0, 0.0])
        q = np.array([1.0, 1.0])
        result = modify_query_point(idx, c, q)
        assert not result.is_noop
        for cand in result.candidates:
            assert np.all(cand.point >= -1e-12)  # Never crosses to far side.
            assert cand.verified

    def test_3d_has_verified_candidate(self):
        rng = np.random.default_rng(4)
        seen = False
        for _ in range(60):
            idx, c, q = random_case(rng, dim=3)
            result = modify_query_point(idx, c, q)
            if result.is_noop:
                continue
            assert any(cand.verified for cand in result.candidates)
            seen = True
        assert seen


class TestSymmetryWithMWP:
    def test_computations_not_symmetrical(self, paper_engine, paper_q):
        """Section V: 'their computations are not symmetrical' — MQP moves
        q onto the dynamic skyline of c_t, MWP moves c_t so q dominates
        the window content.  The two candidate sets differ."""
        mwp = {tuple(c.point) for c in paper_engine.modify_why_not_point(0, paper_q)}
        mqp = {tuple(c.point) for c in paper_engine.modify_query_point(0, paper_q)}
        assert mwp.isdisjoint(mqp)
