"""Golden tests pinning every worked example of the paper.

Each test names the paper location it reproduces.  Two documented
deviations (see EXPERIMENTS.md): our exact safe region is slightly larger
than the rectangles listed in Section V.B (brute-force verification shows
ours is the maximal correct region), and consequently the why-not point
c1 falls under case C1 rather than C2 in Algorithm 4.
"""

import numpy as np
import pytest

from repro import MWQCase
from repro.data.paperdata import paper_points, paper_query


def candidate_set(result):
    return {tuple(np.round(c.point, 6)) for c in result.candidates}


class TestSectionI:
    def test_dynamic_skyline_of_c2_gains_q(self, paper_engine):
        # "After careful examination, c2's dynamic skyline becomes
        # {p1, p4, p6, q}" — i.e. c2 is in RSL(q).
        assert paper_engine.is_member(1, paper_query())


class TestSectionII:
    def test_reverse_skyline(self, paper_engine, paper_q):
        rsl = paper_engine.reverse_skyline(paper_q)
        assert rsl.tolist() == [1, 2, 3, 5, 7]

    def test_c1_not_member(self, paper_engine, paper_q):
        assert not paper_engine.is_member(0, paper_q)


class TestSectionIII_Explanation:
    def test_lambda_is_p2(self, paper_engine, paper_q):
        explanation = paper_engine.explain(0, paper_q)
        assert explanation.culprit_positions.tolist() == [1]
        assert explanation.culprits.tolist() == [[7.5, 42.0]]
        assert not explanation.is_member
        assert "more interesting" in explanation.describe()

    def test_member_has_empty_explanation(self, paper_engine, paper_q):
        explanation = paper_engine.explain(1, paper_q)
        assert explanation.is_member
        assert "already in the reverse skyline" in explanation.describe()


class TestSectionIV_MWP:
    """Algorithm 1 example: c1* in {(5K, 48.5K), (8K, 30K)}."""

    def test_candidates_match_paper(self, paper_engine, paper_q):
        result = paper_engine.modify_why_not_point(0, paper_q)
        assert candidate_set(result) == {(5.0, 48.5), (8.0, 30.0)}

    def test_all_candidates_verified(self, paper_engine, paper_q):
        result = paper_engine.modify_why_not_point(0, paper_q)
        assert all(c.verified for c in result.candidates)

    def test_costs_sorted_ascending(self, paper_engine, paper_q):
        result = paper_engine.modify_why_not_point(0, paper_q)
        costs = [c.cost for c in result.candidates]
        assert costs == sorted(costs)

    def test_interpretations(self, paper_engine, paper_q):
        # Option 1: mileage preference 30K -> 48.5K; option 2: pay 3K more.
        points = candidate_set(paper_engine.modify_why_not_point(0, paper_q))
        assert (5.0, 48.5) in points  # Only mileage moved.
        assert (8.0, 30.0) in points  # Only price moved (by 3K).

    def test_rtree_backend_identical(self, paper_engine_rtree, paper_q):
        result = paper_engine_rtree.modify_why_not_point(0, paper_q)
        assert candidate_set(result) == {(5.0, 48.5), (8.0, 30.0)}


class TestSectionV_MQP:
    """Algorithm 2 example: q* in {(8.5K, 42K), (7.5K, 55K)}."""

    def test_candidates_match_paper(self, paper_engine, paper_q):
        result = paper_engine.modify_query_point(0, paper_q)
        assert candidate_set(result) == {(8.5, 42.0), (7.5, 55.0)}

    def test_all_candidates_verified(self, paper_engine, paper_q):
        result = paper_engine.modify_query_point(0, paper_q)
        assert all(c.verified for c in result.candidates)

    def test_price_cut_interpretation(self, paper_engine, paper_q):
        # "the car dealer has to decrease the price of q at least 1K".
        result = paper_engine.modify_query_point(0, paper_q)
        best_price_only = [
            c for c in result.candidates if c.point[1] == paper_q[1]
        ]
        assert best_price_only and best_price_only[0].point[0] == 7.5


class TestSectionV_SafeRegion:
    def test_contains_paper_rectangles(self, paper_engine, paper_q):
        """Our exact region must contain the paper's listed rectangles
        {(7.5,50),(10,58)} and {(7.5,50),(12.5,54)} (they are safe)."""
        region = paper_engine.safe_region(paper_q).region
        for corner in [
            (7.5, 50.0),
            (10.0, 58.0),
            (7.5, 58.0),
            (10.0, 50.0),
            (12.5, 54.0),
            (12.5, 50.0),
        ]:
            assert region.contains_point(corner), corner

    def test_contains_query(self, paper_engine, paper_q):
        assert paper_engine.safe_region(paper_q).contains(paper_q)

    def test_every_sampled_point_retains_members(self, paper_engine, paper_q):
        """Lemma 2 (the deviation-proof test): every point of our region
        keeps all of {c2, c3, c4, c6, c8} in the reverse skyline."""
        region = paper_engine.safe_region(paper_q)
        rng = np.random.default_rng(0)
        samples = region.region.sample_points(rng, 200)
        members = paper_engine.reverse_skyline(paper_q).tolist()
        for q_star in samples:
            for member in members:
                assert paper_engine.is_member(member, q_star), (q_star, member)

    def test_larger_than_paper_rectangles_is_genuinely_safe(
        self, paper_engine, paper_q
    ):
        """The point (9, 65) lies outside the paper's rectangles but inside
        our region — and manual verification confirms it keeps everyone."""
        region = paper_engine.safe_region(paper_q).region
        assert region.contains_point([9.0, 65.0])
        for member in paper_engine.reverse_skyline(paper_q).tolist():
            assert paper_engine.is_member(member, [9.0, 65.0])


class TestSectionV_MWQ:
    def test_c7_overlap_case_matches_paper(self, paper_engine, paper_q):
        """Paper: SR(q) ∩ anti-dominance(c7) = {(7.5,60),(10,70)} and the
        new location of q is (8.5K, 60K)."""
        result = paper_engine.modify_both(6, paper_q)
        assert result.case is MWQCase.OVERLAP
        assert result.cost == 0.0
        best = result.best_query_candidate()
        assert best is not None
        assert best.point.tolist() == [8.5, 60.0]
        assert best.verified

    def test_c7_candidate_keeps_everyone(self, paper_engine, paper_q):
        result = paper_engine.modify_both(6, paper_q)
        q_star = result.best_query_candidate().point
        for member in paper_engine.reverse_skyline(paper_q).tolist():
            assert paper_engine.is_member(member, q_star)
        assert paper_engine.is_member(6, q_star)

    def test_c1_zero_cost_via_boundary_touch(self, paper_engine, paper_q):
        """Documented deviation: with closed-box semantics the anti-
        dominance region of c1 touches SR(q) at price 7.5, so Algorithm 4
        resolves c1 at zero cost with q* = (7.5, 55) — the same location
        the paper's own MQP example endorses."""
        result = paper_engine.modify_both(0, paper_q)
        assert result.case is MWQCase.OVERLAP
        best = result.best_query_candidate()
        assert best.point.tolist() == [7.5, 55.0]
        assert best.verified
        # The answer truly admits c1 and keeps all previous members.
        assert paper_engine.is_member(0, best.point)
        for member in paper_engine.reverse_skyline(paper_q).tolist():
            assert paper_engine.is_member(member, best.point)

    def test_member_short_circuits(self, paper_engine, paper_q):
        result = paper_engine.modify_both(1, paper_q)
        assert result.case is MWQCase.ALREADY_MEMBER
        assert result.cost == 0.0


class TestTableI_Cases:
    def test_overlap_means_only_query_moves(self, paper_engine, paper_q):
        result = paper_engine.modify_both(6, paper_q)
        assert result.case is MWQCase.OVERLAP
        assert result.pairs == []
        assert result.query_candidates
