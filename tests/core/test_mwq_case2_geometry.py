"""Hand-constructed case-C2 geometry for Algorithm 4, checkable on paper.

Construction (see each fixture comment):

* two members ``m1 = (40, 60)`` and ``m2 = (60, 40)``, each pinned by a
  blocker at distance (2, 2), so their anti-dominance regions are plus
  shapes with 4-wide arms;
* the query ``q = (41, 41)`` sits in m1's vertical arm and m2's
  horizontal arm; the safe region (their intersection) is two bounded
  boxes: ``[38,42]^2`` around q and ``[58,62] x [58,60]`` (clipped);
* the why-not customer ``c = (90, 10)`` is blocked by ``(88, 12)``; its
  plus shape (arms at x ∈ [88,92], y ∈ [8,12]) misses both safe boxes —
  a certified C2.

Hand-derived optimum: the safe corner nearest to c is ``(62, 58)``;
against it, only c's own blocker stays in the window, Algorithm 1's
midpoint thresholds are ``(13, 23)`` with cap ``(28, 48)``, and the
cheapest candidate keeps c's mileage and pays 15 price units:
``c* = (75, 10)`` at normalised cost ``0.5 * 15 / 52``.
"""

import numpy as np
import pytest

from repro import MWQCase, WhyNotEngine
from repro.core.safe_region import anti_dominance_region
from repro.geometry.box import Box


@pytest.fixture()
def scenario():
    products = np.array(
        [
            [38.0, 58.0],  # 0: blocker shaping m1's region
            [58.0, 38.0],  # 1: blocker shaping m2's region
            [40.0, 60.0],  # 2: m1 (member)
            [60.0, 40.0],  # 3: m2 (member)
            [88.0, 12.0],  # 4: blocker of the why-not customer
            [90.0, 10.0],  # 5: c (the why-not customer)
        ]
    )
    engine = WhyNotEngine(products, backend="scan")
    return engine, np.array([41.0, 41.0])


class TestConstructedC2:
    def test_membership_layout(self, scenario):
        engine, q = scenario
        assert engine.reverse_skyline(q).tolist() == [2, 3]

    def test_safe_region_is_the_two_expected_boxes(self, scenario):
        engine, q = scenario
        boxes = set(engine.safe_region(q).region.boxes)
        assert boxes == {
            Box([38.0, 38.0], [42.0, 42.0]),
            Box([58.0, 58.0], [62.0, 60.0]),  # Clipped at the y-universe.
        }

    def test_disjoint_case_certified(self, scenario):
        engine, q = scenario
        point, exclude = engine._resolve_customer(5)
        ddr = anti_dominance_region(
            engine.index, point, engine._geometry_bounds(q), exclude=exclude
        )
        assert engine.safe_region(q).region.intersect(ddr).is_empty()
        assert engine.modify_both(5, q).case is MWQCase.DISJOINT

    def test_hand_derived_optimum(self, scenario):
        engine, q = scenario
        result = engine.modify_both(5, q)
        q_cand, c_cand = result.best_pair()
        assert q_cand.point.tolist() == [62.0, 58.0]
        assert c_cand.point.tolist() == [75.0, 10.0]
        # Price range is 90 - 38 = 52; the move is 15 price units.
        assert result.cost == pytest.approx(0.5 * 15.0 / 52.0)
        assert c_cand.verified

    def test_answer_achieves_the_goal(self, scenario):
        engine, q = scenario
        q_cand, c_cand = engine.modify_both(5, q).best_pair()
        # The relocated customer accepts the relocated query...
        assert engine.is_member(c_cand.point, q_cand.point)
        # ...and both original members stay on board (Lemma 2).
        assert engine.is_member(2, q_cand.point)
        assert engine.is_member(3, q_cand.point)

    def test_cost_bounded_by_direct_mwp(self, scenario):
        engine, q = scenario
        result = engine.modify_both(5, q)
        mwp = engine.modify_why_not_point(5, q)
        assert result.cost <= mwp.best().cost + 1e-9
