"""Engine lifecycle: close(), context management, thread-safety switch."""

from __future__ import annotations

import numpy as np
import pytest

from repro import WhyNotEngine


def _engine() -> WhyNotEngine:
    rng = np.random.default_rng(11)
    return WhyNotEngine(rng.random((30, 2)), customers=rng.random((20, 2)))


def test_close_is_idempotent_and_observable():
    engine = _engine()
    assert not engine.closed
    engine.reverse_skyline([0.5, 0.5])
    engine.close()
    assert engine.closed
    engine.close()  # second close is a no-op
    assert engine.closed


def test_context_manager_closes():
    with _engine() as engine:
        engine.reverse_skyline([0.4, 0.6])
        assert not engine.closed
    assert engine.closed


def test_context_manager_closes_on_error():
    engine = _engine()
    with pytest.raises(ValueError, match="boom"):
        with engine:
            raise ValueError("boom")
    assert engine.closed


def test_close_tears_down_shard_executors():
    engine = _engine()
    # Force a shard executor into existence, then close must reap it.
    from repro.plan.operators import ensure_shard_executor

    ensure_shard_executor(engine)
    assert engine._shard_executors
    engine.close()
    assert not engine._shard_executors


def test_enable_thread_safety_locks_registry():
    engine = _engine()
    assert not engine.obs.metrics.thread_safe
    engine.enable_thread_safety()
    assert engine.obs.metrics.thread_safe
    engine.enable_thread_safety()  # idempotent
    assert engine.obs.metrics.thread_safe
    # Metrics created after the switch are locked too.
    counter = engine.obs.counter("test.after_switch")
    assert counter._lock is not None
