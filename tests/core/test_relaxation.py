"""Tests for safe-region relaxation analysis."""

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.core.relaxation import leave_one_out_regions, relaxation_analysis
from repro.data.paperdata import paper_points
from repro.data.synthetic import generate_uniform


class TestLeaveOneOut:
    def test_one_region_per_member(self, paper_engine, paper_q):
        members = paper_engine.reverse_skyline(paper_q)
        regions = leave_one_out_regions(paper_engine, paper_q)
        assert set(regions) == set(members.tolist())

    def test_each_region_superset_of_full(self, paper_engine, paper_q):
        """Dropping a constraint can only grow the intersection."""
        full = paper_engine.safe_region(paper_q).area()
        for region in leave_one_out_regions(paper_engine, paper_q).values():
            assert region.area() >= full - 1e-12

    def test_remaining_members_kept(self, paper_engine, paper_q):
        """Lemma 2 for the reduced member set: sampling the relaxed
        region must never lose anyone except the dropped member."""
        rng = np.random.default_rng(0)
        members = set(paper_engine.reverse_skyline(paper_q).tolist())
        for dropped, region in leave_one_out_regions(
            paper_engine, paper_q
        ).items():
            if region.region.is_empty():
                continue
            for q_star in region.region.sample_points(rng, 20):
                lost = set(
                    paper_engine.lost_customers(paper_q, q_star).tolist()
                )
                assert lost <= {dropped}, (dropped, q_star, lost)

    def test_no_members_empty(self):
        pts = paper_points()
        engine = WhyNotEngine(pts[1:], customers=pts[:1], backend="scan")
        q = np.array([8.5, 55.0])
        assert engine.reverse_skyline(q).size == 0
        assert leave_one_out_regions(engine, q) == {}


class TestRelaxationAnalysis:
    def test_sorted_by_gain(self, paper_engine, paper_q):
        options = relaxation_analysis(paper_engine, paper_q)
        gains = [option.area_gain for option in options]
        assert gains == sorted(gains, reverse=True)

    def test_gains_non_negative(self, paper_engine, paper_q):
        for option in relaxation_analysis(paper_engine, paper_q):
            assert option.area_gain >= -1e-12

    def test_binding_member_identified(self):
        """On random data the top-ranked sacrifice buys the most area,
        and at least one member is genuinely binding (positive gain)."""
        ds = generate_uniform(300, seed=4)
        engine = WhyNotEngine(ds.points, backend="scan", bounds=ds.bounds)
        rng = np.random.default_rng(1)
        for _ in range(40):
            q = np.clip(
                ds.points[int(rng.integers(0, 300))] * 1.02, 0, 1
            )
            members = engine.reverse_skyline(q)
            if members.size < 2:
                continue
            options = relaxation_analysis(engine, q)
            assert len(options) == members.size
            if options[0].area_gain > 0:
                return
        pytest.skip("no binding member found in sampled queries")

    def test_repr(self, paper_engine, paper_q):
        options = relaxation_analysis(paper_engine, paper_q)
        if options:
            assert "drop customer" in repr(options[0])
