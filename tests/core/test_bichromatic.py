"""End-to-end tests of the bichromatic setting (distinct P and C).

The library API supports separate product and customer sets even though
the paper's experiments are monochromatic; these tests pin the whole
pipeline in that mode.
"""

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.core.answer import MWQCase
from repro.data.paperdata import paper_points, paper_query


@pytest.fixture()
def split_engine():
    """The paper's Section-II split: products pt2-pt8, customer c1=pt1."""
    pts = paper_points()
    return WhyNotEngine(pts[1:], customers=pts[:1], backend="scan")


class TestPaperSplit:
    def test_c1_not_member(self, split_engine):
        assert split_engine.reverse_skyline(paper_query()).size == 0
        assert not split_engine.is_member(0, paper_query())

    def test_explanation_is_p2(self, split_engine):
        exp = split_engine.explain(0, paper_query())
        # p2 is now product position 0 of the split product matrix.
        assert exp.culprits.tolist() == [[7.5, 42.0]]

    def test_mwp_matches_monochromatic(self, split_engine):
        """Self-exclusion made the monochromatic run equivalent to this
        explicit split, so the answers must coincide."""
        result = split_engine.modify_why_not_point(0, paper_query())
        points = {tuple(c.point) for c in result}
        assert points == {(5.0, 48.5), (8.0, 30.0)}

    def test_mqp_matches_monochromatic(self, split_engine):
        result = split_engine.modify_query_point(0, paper_query())
        points = {tuple(c.point) for c in result}
        assert points == {(8.5, 42.0), (7.5, 55.0)}

    def test_empty_rsl_gives_universe_safe_region(self, split_engine):
        sr = split_engine.safe_region(paper_query())
        assert sr.rsl_positions.size == 0
        # Nobody to lose: the whole universe is safe, so MWQ is free.
        result = split_engine.modify_both(0, paper_query())
        assert result.case is MWQCase.OVERLAP
        assert result.cost == 0.0


class TestRandomBichromatic:
    def make(self, seed, n_prod=60, n_cust=25):
        rng = np.random.default_rng(seed)
        prods = rng.uniform(0, 1, size=(n_prod, 2))
        custs = rng.uniform(0, 1, size=(n_cust, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        return WhyNotEngine(prods, customers=custs, backend="scan"), q

    def test_rsl_against_definition(self):
        for seed in range(10):
            engine, q = self.make(seed)
            members = set(engine.reverse_skyline(q).tolist())
            for j in range(engine.customers.shape[0]):
                assert (j in members) == engine.is_member(j, q)

    def test_mwp_verified(self):
        checked = 0
        for seed in range(10):
            engine, q = self.make(seed)
            members = set(engine.reverse_skyline(q).tolist())
            for j in range(engine.customers.shape[0]):
                if j in members:
                    continue
                result = engine.modify_why_not_point(j, q)
                if result.is_noop:
                    continue
                assert all(c.verified for c in result.candidates)
                checked += 1
                break
        assert checked >= 5

    def test_safe_region_lemma2(self):
        rng = np.random.default_rng(99)
        for seed in range(6):
            engine, q = self.make(seed)
            sr = engine.safe_region(q)
            if sr.region.is_empty():
                continue
            for q_star in sr.region.sample_points(rng, 15):
                assert engine.lost_customers(q, q_star).size == 0, (seed, q_star)

    def test_customers_never_pollute_products(self):
        """A customer point must not appear as a window culprit."""
        engine, q = self.make(3)
        for j in range(engine.customers.shape[0]):
            exp = engine.explain(j, q)
            for culprit in exp.culprits:
                assert any(
                    np.array_equal(culprit, p) for p in engine.products
                )
