"""Incremental maintenance of the epoch-versioned tile summaries."""

import numpy as np
import pytest

from repro.prune.classify import tile_bounds
from repro.prune.summaries import PruneSummaries, TileSummary
from repro.store.base import CustomerStore, ProductStore


def fresh(store, tile_size):
    """Oracle: full tile_bounds of the store's current matrix."""
    return tile_bounds(store.matrix, tile_size)


def assert_matches_oracle(summary: TileSummary):
    lo, hi = summary.bounds
    exp_lo, exp_hi = fresh(summary.store, summary.tile_size)
    np.testing.assert_array_equal(lo, exp_lo)
    np.testing.assert_array_equal(hi, exp_hi)
    assert summary.epoch == summary.store.epoch


class TestTileSummary:
    def test_initial_bounds(self):
        store = ProductStore(np.random.default_rng(0).random((23, 2)))
        summary = TileSummary(store, 8)
        assert summary.tiles == 3
        assert_matches_oracle(summary)

    def test_rejects_bad_tile_size(self):
        store = ProductStore(np.ones((3, 2)))
        with pytest.raises(ValueError):
            TileSummary(store, 0)

    def test_insert_rebuilds_only_the_tail(self):
        store = ProductStore(np.random.default_rng(1).random((64, 2)))
        summary = TileSummary(store, 8)
        before = summary.tiles_rebuilt
        store.insert(np.random.default_rng(2).random((4, 2)))
        # 64 rows / tile 8 → the append lands in a brand-new tile 8;
        # exactly one tile is recomputed.
        assert summary.tiles_rebuilt - before == 1
        assert_matches_oracle(summary)

    def test_insert_into_partial_tail_tile(self):
        store = ProductStore(np.random.default_rng(3).random((60, 2)))
        summary = TileSummary(store, 8)
        before = summary.tiles_rebuilt
        store.insert(np.random.default_rng(4).random((10, 2)))
        # Rows 56..59 were a partial tile: it and the appended tiles
        # (rows 60..69) are rebuilt, tiles 0..6 are not.
        assert summary.tiles_rebuilt - before == 2
        assert_matches_oracle(summary)

    def test_update_rebuilds_only_touched_tiles(self):
        store = ProductStore(np.random.default_rng(5).random((64, 2)))
        summary = TileSummary(store, 8)
        before = summary.tiles_rebuilt
        store.update([3, 5], np.random.default_rng(6).random((2, 2)))
        assert summary.tiles_rebuilt - before == 1  # both rows in tile 0
        assert_matches_oracle(summary)

    def test_update_across_tiles(self):
        store = ProductStore(np.random.default_rng(7).random((64, 2)))
        summary = TileSummary(store, 8)
        before = summary.tiles_rebuilt
        store.update([1, 60], np.random.default_rng(8).random((2, 2)))
        assert summary.tiles_rebuilt - before == 2
        assert_matches_oracle(summary)

    def test_delete_rebuilds_from_first_removed_row(self):
        store = ProductStore(np.random.default_rng(9).random((64, 2)))
        summary = TileSummary(store, 8)
        before = summary.tiles_rebuilt
        store.delete([57, 60])
        # First removed row 57 lives in tile 7; only the tail rebuilds.
        assert summary.tiles_rebuilt - before == 1
        assert_matches_oracle(summary)

    def test_delete_from_the_front_rebuilds_everything_after(self):
        store = ProductStore(np.random.default_rng(10).random((64, 2)))
        summary = TileSummary(store, 8)
        store.delete([0])
        assert_matches_oracle(summary)

    def test_mutation_program_stays_coherent(self):
        rng = np.random.default_rng(11)
        store = ProductStore(rng.random((40, 3)))
        summary = TileSummary(store, 7)
        for _ in range(30):
            op = rng.integers(3)
            n = store.size
            if op == 0 or n < 4:
                store.insert(rng.random((int(rng.integers(1, 5)), 3)))
            elif op == 1:
                count = int(rng.integers(1, min(4, n)))
                store.delete(rng.choice(n, count, replace=False))
            else:
                count = int(rng.integers(1, min(4, n)))
                positions = rng.choice(n, count, replace=False)
                store.update(positions, rng.random((count, 3)))
            assert_matches_oracle(summary)

    def test_delete_to_empty(self):
        store = ProductStore(np.ones((3, 2)))
        summary = TileSummary(store, 2)
        store.delete([0, 1])  # ProductStore must keep >= 1 row? try 2 of 3
        assert_matches_oracle(summary)


class TestPruneSummaries:
    def test_monochromatic_shares_one_summary(self):
        store = ProductStore(np.random.default_rng(0).random((20, 2)))
        bundle = PruneSummaries(store, store, tile_size=8)
        assert bundle.customers is bundle.products

    def test_bichromatic_keeps_two_summaries(self):
        products = ProductStore(np.random.default_rng(1).random((20, 2)))
        customers = CustomerStore(np.random.default_rng(2).random((15, 2)))
        bundle = PruneSummaries(products, customers, tile_size=8)
        assert bundle.customers is not bundle.products
        assert bundle.customers.tiles == 2
        assert bundle.products.tiles == 3

    def test_predict_fractions_sum_to_one(self):
        products = ProductStore(np.random.default_rng(3).random((30, 2)))
        customers = CustomerStore(np.random.default_rng(4).random((30, 2)))
        bundle = PruneSummaries(products, customers, tile_size=8)
        result = bundle.predict(np.array([0.5, 0.5]))
        assert result["pairs"] == 16
        assert result["skip"] + result["blocked"] + result["refine"] == (
            pytest.approx(1.0)
        )

    def test_predict_memoized_until_epoch_changes(self):
        products = ProductStore(np.random.default_rng(5).random((30, 2)))
        bundle = PruneSummaries(products, products, tile_size=8)
        q = np.array([0.5, 0.5])
        first = bundle.predict(q)
        assert bundle.predict(q) is first  # cache hit, same dict object
        products.insert(np.array([[0.9, 0.9]]))
        assert bundle.predict(q) is not first  # epoch moved: recompute

    def test_sparse_geometry_predicts_low_refine_rate(self):
        rng = np.random.default_rng(6)
        products = ProductStore(rng.uniform(0.9, 1.0, size=(64, 2)))
        customers = CustomerStore(rng.uniform(0.45, 0.55, size=(64, 2)))
        bundle = PruneSummaries(products, customers, tile_size=8)
        rate = bundle.predicted_refine_rate(np.array([0.5, 0.5]))
        assert rate == 0.0
        # The centroid probe sits between the clusters — conservative,
        # but still bounded by 1.
        assert 0.0 <= bundle.centroid_refine_rate() <= 1.0

    def test_dense_geometry_predicts_full_refine_rate(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0.0, 1.0, size=(64, 2))
        store = ProductStore(points)
        bundle = PruneSummaries(store, store, tile_size=8)
        assert bundle.centroid_refine_rate() == pytest.approx(1.0)

    def test_empty_pairs_defaults_to_refine(self):
        store = ProductStore(np.ones((2, 2)))
        bundle = PruneSummaries(store, store, tile_size=8)
        bundle.products._lo = np.empty((0, 2))
        bundle.products._hi = np.empty((0, 2))
        result = bundle.predict(np.array([0.5, 0.5]))
        assert result == {
            "pairs": 0,
            "skip": 0.0,
            "blocked": 0.0,
            "refine": 1.0,
        }
