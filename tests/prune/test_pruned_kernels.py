"""Bit-identity and accounting of the filter-refinement kernels."""

import numpy as np
import pytest

from repro.config import DominancePolicy
from repro.exceptions import InvalidParameterError
from repro.kernels.membership import (
    batch_lambda_counts,
    batch_verify_membership,
    batch_window_membership,
)
from repro.kernels.pruned import (
    _blocked_chunk_safe,
    batch_lambda_counts_pruned,
    batch_verify_membership_pruned,
    batch_window_membership_pruned,
)
from repro.prune.classify import tile_bounds
from repro.prune.counters import PruneCounters


def clustered(rng, n):
    """Sparse geometry: customers around 0.5, products in far clusters."""
    half = n // 2
    products = np.vstack(
        [
            rng.uniform(0.0, 0.1, size=(half, 2)),
            rng.uniform(0.9, 1.0, size=(n - half, 2)),
        ]
    )
    customers = rng.uniform(0.45, 0.55, size=(n, 2))
    return products, customers


class TestBitIdentity:
    @pytest.mark.parametrize(
        "policy", [DominancePolicy.WEAK, DominancePolicy.STRICT]
    )
    @pytest.mark.parametrize("tile_size", [3, 7, 64])
    def test_membership_matches_plain(self, policy, tile_size):
        rng = np.random.default_rng(0)
        products = rng.random((53, 2))
        customers = rng.random((41, 2))
        q = np.array([0.5, 0.5])
        plain = batch_window_membership(products, customers, q, policy)
        pruned = batch_window_membership_pruned(
            products, customers, q, policy, tile_size=tile_size
        )
        np.testing.assert_array_equal(plain, pruned)

    @pytest.mark.parametrize("tile_size", [3, 16])
    def test_lambda_matches_plain(self, tile_size):
        rng = np.random.default_rng(1)
        products = rng.random((37, 3))
        customers = rng.random((29, 3))
        q = rng.random(3)
        plain = batch_lambda_counts(products, customers, q)
        pruned = batch_lambda_counts_pruned(
            products, customers, q, tile_size=tile_size
        )
        np.testing.assert_array_equal(plain, pruned)

    def test_verify_matches_plain_with_tolerance(self):
        rng = np.random.default_rng(2)
        points = rng.random((40, 2))
        q = np.array([0.5, 0.5])
        sp = np.arange(40)
        plain = batch_verify_membership(points, points, q, self_positions=sp)
        pruned = batch_verify_membership_pruned(
            points, points, q, self_positions=sp, tile_size=8
        )
        np.testing.assert_array_equal(plain, pruned)

    def test_monochromatic_self_exclusion(self):
        rng = np.random.default_rng(3)
        points = rng.random((31, 2))
        q = np.array([0.4, 0.6])
        sp = np.arange(31)
        plain = batch_window_membership(points, points, q, self_positions=sp)
        pruned = batch_window_membership_pruned(
            points, points, q, self_positions=sp, tile_size=5
        )
        np.testing.assert_array_equal(plain, pruned)

    def test_one_row_chunk_self_exclusion_downgrade(self):
        # A single customer whose only would-be blocker is its own
        # product, sitting alone in a 1-row chunk: the all-blocked label
        # must be voided and the customer stays a member.
        products = np.array([[0.5, 0.5]])
        customers = np.array([[0.5, 0.5]])
        q = np.array([0.0, 0.0])
        sp = np.array([0])
        pruned = batch_window_membership_pruned(
            products, customers, q, self_positions=sp, tile_size=1
        )
        plain = batch_window_membership(
            products, customers, q, self_positions=sp
        )
        np.testing.assert_array_equal(plain, pruned)
        assert pruned[0]

    def test_precomputed_product_bounds(self):
        rng = np.random.default_rng(4)
        products, customers = clustered(rng, 48)
        q = np.array([0.5, 0.5])
        bounds = tile_bounds(products, 8)
        with_bounds = batch_window_membership_pruned(
            products, customers, q, tile_size=8, product_bounds=bounds
        )
        inline = batch_window_membership_pruned(
            products, customers, q, tile_size=8
        )
        np.testing.assert_array_equal(with_bounds, inline)

    def test_float32_matches_plain_float32(self):
        rng = np.random.default_rng(5)
        products = rng.random((33, 2))
        customers = rng.random((27, 2))
        q = np.array([0.5, 0.5])
        plain = batch_window_membership(
            products, customers, q, dtype=np.float32
        )
        pruned = batch_window_membership_pruned(
            products, customers, q, tile_size=8, dtype=np.float32
        )
        np.testing.assert_array_equal(plain, pruned)

    def test_empty_inputs(self):
        q = np.array([0.5, 0.5])
        none = np.empty((0, 2))
        prods = np.random.default_rng(6).random((5, 2))
        assert batch_window_membership_pruned(prods, none, q).shape == (0,)
        out = batch_window_membership_pruned(none, prods, q)
        assert out.all() and out.shape == (5,)
        assert batch_lambda_counts_pruned(none, prods, q).sum() == 0


class TestAccounting:
    def test_counters_balance_on_sparse_geometry(self):
        rng = np.random.default_rng(7)
        products, customers = clustered(rng, 64)
        q = np.array([0.5, 0.5])
        pc = PruneCounters()
        batch_window_membership_pruned(
            products, customers, q, tile_size=8, prune_counters=pc
        )
        assert pc.balanced()
        snap = pc.snapshot()
        assert snap["pairs_total"] == 8 * 8
        assert snap["pairs_skipped"] > 0
        assert snap["tiles_skipped"] > 0

    def test_all_blocked_tile_charges_every_pair(self):
        # Customers far from q, products hugging the customers: every
        # chunk blocks every customer → one blocked chunk resolves the
        # tile and all pairs are charged as blocked.
        rng = np.random.default_rng(8)
        customers = rng.uniform(0.9, 1.0, size=(16, 2))
        products = rng.uniform(0.88, 1.0, size=(16, 2))
        q = np.array([0.0, 0.0])
        pc = PruneCounters()
        out = batch_window_membership_pruned(
            products, customers, q, tile_size=8, prune_counters=pc
        )
        assert not out.any()
        assert pc.balanced()
        snap = pc.snapshot()
        assert snap["tiles_all_blocked"] == 2
        assert snap["pairs_blocked"] == snap["pairs_total"] == 4

    def test_lambda_counts_blocked_pairs_as_refined(self):
        rng = np.random.default_rng(9)
        customers = rng.uniform(0.9, 1.0, size=(8, 2))
        products = rng.uniform(0.88, 1.0, size=(8, 2))
        q = np.array([0.0, 0.0])
        pc = PruneCounters()
        counts = batch_lambda_counts_pruned(
            products, customers, q, tile_size=8, prune_counters=pc
        )
        assert (counts == 8).all()
        snap = pc.snapshot()
        assert pc.balanced()
        assert snap["pairs_blocked"] == 0
        assert snap["pairs_refined"] == snap["pairs_total"]

    def test_counters_balance_random(self):
        rng = np.random.default_rng(10)
        for _ in range(20):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(1, 40))
            products = rng.random((n, 2)) * rng.choice([0.2, 1.0, 5.0])
            customers = rng.random((m, 2)) * rng.choice([0.2, 1.0])
            q = rng.random(2)
            pc = PruneCounters()
            batch_window_membership_pruned(
                products,
                customers,
                q,
                tile_size=int(rng.integers(1, 16)),
                prune_counters=pc,
            )
            assert pc.balanced(), pc.snapshot()


class TestValidation:
    def test_bad_product_bounds_shape_raises(self):
        rng = np.random.default_rng(11)
        products = rng.random((20, 2))
        customers = rng.random((10, 2))
        bad = tile_bounds(products, 4)  # wrong width for tile_size=8
        with pytest.raises(InvalidParameterError):
            batch_window_membership_pruned(
                products,
                customers,
                np.array([0.5, 0.5]),
                tile_size=8,
                product_bounds=bad,
            )

    def test_bad_tile_size_raises(self):
        rng = np.random.default_rng(12)
        with pytest.raises(InvalidParameterError):
            batch_window_membership_pruned(
                rng.random((4, 2)),
                rng.random((4, 2)),
                np.array([0.5, 0.5]),
                tile_size=0,
            )
        with pytest.raises(InvalidParameterError):
            batch_lambda_counts_pruned(
                rng.random((4, 2)),
                rng.random((4, 2)),
                np.array([0.5, 0.5]),
                tile_size=-3,
            )

    def test_blocked_chunk_safe_rules(self):
        sp = np.array([5, 9])
        # >= 2 rows: always safe.
        assert _blocked_chunk_safe(0, 4, 20, sp)
        # 1-row tail chunk not containing any excluded product: safe.
        assert _blocked_chunk_safe(2, 4, 9, np.array([3]))
        # 1-row tail chunk that IS someone's own product: unsafe.
        assert not _blocked_chunk_safe(2, 4, 9, np.array([8]))
        # No exclusions at all: safe.
        assert _blocked_chunk_safe(2, 4, 9, None)
