"""Unit tests of the conservative (tile, chunk) classifier."""

import numpy as np
import pytest

from repro.prune.classify import (
    PAIR_BLOCKED,
    PAIR_REFINE,
    PAIR_SKIP,
    classify_pairs,
    tile_bounds,
    tile_count,
)


class TestTileCount:
    def test_exact_multiple(self):
        assert tile_count(100, 10) == 10

    def test_partial_tail(self):
        assert tile_count(101, 10) == 11

    def test_empty(self):
        assert tile_count(0, 10) == 0


class TestTileBounds:
    def test_bounds_cover_their_rows_exactly(self):
        rng = np.random.default_rng(0)
        points = rng.random((37, 3))
        lo, hi = tile_bounds(points, 8)
        assert lo.shape == (tile_count(37, 8), 3)
        for t in range(lo.shape[0]):
            seg = points[t * 8 : (t + 1) * 8]
            np.testing.assert_array_equal(lo[t], seg.min(axis=0))
            np.testing.assert_array_equal(hi[t], seg.max(axis=0))

    def test_corners_are_exact_data_values(self):
        # No arithmetic: every corner coordinate must be a value that
        # literally occurs in the tile (the float-soundness premise).
        points = np.array([[0.1, 0.7], [0.3, 0.2], [0.9, 0.5]])
        lo, hi = tile_bounds(points, 2)
        for row in np.vstack([lo, hi]):
            for d, value in enumerate(row):
                assert value in points[:, d]

    def test_empty_matrix(self):
        lo, hi = tile_bounds(np.empty((0, 2)), 4)
        assert lo.shape == (0, 2) and hi.shape == (0, 2)

    def test_single_row_tiles(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        lo, hi = tile_bounds(points, 1)
        np.testing.assert_array_equal(lo, points)
        np.testing.assert_array_equal(hi, points)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            tile_bounds(np.ones((3, 2)), 0)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            tile_bounds(np.ones(5), 2)


class TestClassifyPairs:
    def test_far_chunk_is_skip(self):
        # Customers near q with tiny radii, products far away in dim 0.
        labels = classify_pairs(
            cust_lo=[[0.45, 0.45]],
            cust_hi=[[0.55, 0.55]],
            prod_lo=[[0.9, 0.0]],
            prod_hi=[[1.0, 1.0]],
            query=np.array([0.5, 0.5]),
        )
        assert labels.shape == (1, 1)
        assert labels[0, 0] == PAIR_SKIP

    def test_near_chunk_far_tile_is_blocked(self):
        # Every chunk point is strictly closer to every tile customer
        # than the query in every dimension.
        labels = classify_pairs(
            cust_lo=[[0.9, 0.9]],
            cust_hi=[[1.0, 1.0]],
            prod_lo=[[0.88, 0.88]],
            prod_hi=[[1.0, 1.0]],
            query=np.array([0.0, 0.0]),
        )
        assert labels[0, 0] == PAIR_BLOCKED

    def test_straddling_chunk_is_refine(self):
        labels = classify_pairs(
            cust_lo=[[0.4, 0.4]],
            cust_hi=[[0.6, 0.6]],
            prod_lo=[[0.0, 0.0]],
            prod_hi=[[1.0, 1.0]],
            query=np.array([0.5, 0.5]),
        )
        assert labels[0, 0] == PAIR_REFINE

    def test_query_inside_tile_zeroes_rlo(self):
        # With q inside the tile interval some customer may coincide
        # with q (radius 0), so nothing can be all-blocked.
        labels = classify_pairs(
            cust_lo=[[0.4, 0.4]],
            cust_hi=[[0.6, 0.6]],
            prod_lo=[[0.49, 0.49]],
            prod_hi=[[0.51, 0.51]],
            query=np.array([0.5, 0.5]),
        )
        assert labels[0, 0] == PAIR_REFINE

    def test_labels_sound_against_brute_force(self):
        # Randomized soundness oracle: a skip pair must have no blocking
        # (weak OR strict) between any (customer, product) drawn from
        # the boxes; a blocked pair must have every product strictly
        # blocking every customer.
        rng = np.random.default_rng(42)
        for _ in range(50):
            d = rng.integers(1, 4)
            q = rng.random(d)
            c_pts = rng.random((6, d)) * rng.choice([0.2, 1.0])
            p_pts = rng.random((6, d)) * rng.choice([0.2, 1.0]) + rng.choice(
                [0.0, 0.8]
            )
            cl, ch = c_pts.min(axis=0)[None], c_pts.max(axis=0)[None]
            pl, ph = p_pts.min(axis=0)[None], p_pts.max(axis=0)[None]
            label = classify_pairs(cl, ch, pl, ph, q)[0, 0]
            radii = np.abs(c_pts - q)
            dd = np.abs(c_pts[:, None, :] - p_pts[None, :, :])
            weak = (dd <= radii[:, None, :]).all(axis=2) & (
                dd < radii[:, None, :]
            ).any(axis=2)
            strict = (dd < radii[:, None, :]).all(axis=2)
            if label == PAIR_SKIP:
                assert not weak.any() and not strict.any()
            elif label == PAIR_BLOCKED:
                assert strict.all() and weak.all()

    def test_rtol_slack_widens_both_thresholds(self):
        # A pair right on the skip threshold flips to refine once the
        # slack covers the margin.
        kwargs = dict(
            cust_lo=[[0.45]],
            cust_hi=[[0.55]],
            prod_lo=[[0.66]],
            prod_hi=[[0.70]],
            query=np.array([0.5]),
        )
        assert classify_pairs(**kwargs)[0, 0] == PAIR_SKIP
        assert classify_pairs(**kwargs, rtol=1e-1)[0, 0] == PAIR_REFINE

    def test_shapes(self):
        rng = np.random.default_rng(1)
        labels = classify_pairs(
            rng.random((3, 2)),
            rng.random((3, 2)) + 1,
            rng.random((5, 2)),
            rng.random((5, 2)) + 1,
            np.array([0.5, 0.5]),
        )
        assert labels.shape == (3, 5)
        assert labels.dtype == np.int8
