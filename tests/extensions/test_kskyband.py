"""Tests for the k-skyband extension."""

import numpy as np
import pytest

from repro.config import DominancePolicy, WhyNotConfig
from repro.exceptions import InvalidParameterError
from repro.extensions.kskyband import (
    dynamic_kskyband_indices,
    is_reverse_kskyband_member,
    kskyband_indices,
    modify_why_not_point_kskyband,
    reverse_kskyband,
)
from repro.index.scan import ScanIndex
from repro.skyline.algorithms import skyline_indices
from repro.skyline.dynamic import dynamic_skyline_indices
from repro.skyline.reverse import reverse_skyline_naive


def dominator_count(arr, i):
    others = np.delete(arr, i, axis=0)
    return int(
        np.sum(np.all(others <= arr[i], axis=1) & np.any(others < arr[i], axis=1))
    )


class TestKSkyband:
    def test_k1_equals_skyline(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            pts = rng.uniform(0, 1, size=(int(rng.integers(1, 60)), 2))
            assert np.array_equal(kskyband_indices(pts, 1), skyline_indices(pts))

    def test_counts_against_oracle(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            pts = np.round(rng.uniform(0, 1, size=(25, 2)) * 6) / 6
            for k in (1, 2, 3):
                expected = [
                    i for i in range(len(pts)) if dominator_count(pts, i) < k
                ]
                assert kskyband_indices(pts, k).tolist() == expected

    def test_monotone_in_k(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(100, 2))
        sizes = [kskyband_indices(pts, k).size for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_k_covers_everything_eventually(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(40, 2))
        assert kskyband_indices(pts, 40).size == 40

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            kskyband_indices(np.array([[1.0, 2.0]]), 0)

    def test_dynamic_k1_equals_dsl(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 1, size=(50, 2))
        origin = rng.uniform(0, 1, size=2)
        assert np.array_equal(
            dynamic_kskyband_indices(pts, origin, 1),
            dynamic_skyline_indices(pts, origin),
        )

    def test_dynamic_exclusion(self):
        pts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        origin = np.array([0.0, 0.0])
        with_self = dynamic_kskyband_indices(pts, origin, 1, exclude=(0,))
        assert 0 not in with_self.tolist()


class TestReverseKSkyband:
    def test_k1_equals_reverse_skyline(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            pts = rng.uniform(0, 1, size=(40, 2))
            q = rng.uniform(0.3, 0.7, size=2)
            idx = ScanIndex(pts)
            assert np.array_equal(
                reverse_kskyband(idx, pts, q, 1, self_exclude=True),
                reverse_skyline_naive(
                    idx, pts, q, DominancePolicy.STRICT, self_exclude=True
                ),
            )

    def test_monotone_in_k(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 1, size=(80, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        idx = ScanIndex(pts)
        sizes = [
            reverse_kskyband(idx, pts, q, k, self_exclude=True).size
            for k in (1, 2, 4, 8)
        ]
        assert sizes == sorted(sizes)

    def test_membership_matches_dominator_count(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(30, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        idx = ScanIndex(pts)
        from repro.extensions.kskyband import query_dominators

        for j in range(30):
            count = query_dominators(idx, pts[j], q, exclude=(j,)).size
            for k in (1, 2, 3):
                assert is_reverse_kskyband_member(
                    idx, pts[j], q, k, exclude=(j,)
                ) == (count < k)


class TestModifyWithTolerance:
    def test_already_member_noop(self):
        idx = ScanIndex(np.array([[10.0, 10.0]]))
        result = modify_why_not_point_kskyband(idx, [0.0, 0.0], [1.0, 1.0], k=1)
        assert result.best().cost == 0.0

    def test_candidates_verified(self):
        rng = np.random.default_rng(8)
        checked = 0
        for _ in range(60):
            pts = rng.uniform(0, 1, size=(30, 2))
            q = rng.uniform(0.3, 0.7, size=2)
            c = rng.uniform(0, 1, size=2)
            idx = ScanIndex(pts)
            for k in (1, 2, 3):
                result = modify_why_not_point_kskyband(idx, c, q, k=k)
                for cand in result.candidates:
                    assert cand.verified is not False, (pts, c, q, k, cand)
                    checked += 1
        assert checked > 100

    def test_tolerance_never_increases_cost(self):
        """Allowing more blockers can only make the repair cheaper."""
        rng = np.random.default_rng(9)
        compared = 0
        for _ in range(60):
            pts = rng.uniform(0, 1, size=(30, 2))
            q = rng.uniform(0.3, 0.7, size=2)
            c = rng.uniform(0, 1, size=2)
            idx = ScanIndex(pts)
            base = modify_why_not_point_kskyband(idx, c, q, k=1)
            relaxed = modify_why_not_point_kskyband(idx, c, q, k=3)
            if base.best() is None or relaxed.best() is None:
                continue
            assert relaxed.best().cost <= base.best().cost + 1e-9
            compared += 1
        assert compared > 20

    def test_k1_matches_algorithm1(self):
        from repro.core.mwp import modify_why_not_point

        rng = np.random.default_rng(10)
        for _ in range(40):
            pts = rng.uniform(0, 1, size=(25, 2))
            q = rng.uniform(0.3, 0.7, size=2)
            c = rng.uniform(0, 1, size=2)
            idx = ScanIndex(pts)
            ours = modify_why_not_point_kskyband(idx, c, q, k=1)
            paper = modify_why_not_point(idx, c, q)
            assert {tuple(cand.point) for cand in ours} == {
                tuple(cand.point) for cand in paper
            }

    def test_invalid_k(self):
        idx = ScanIndex(np.array([[1.0, 2.0]]))
        with pytest.raises(InvalidParameterError):
            modify_why_not_point_kskyband(idx, [0.0, 0.0], [1.0, 1.0], k=0)
