"""Tests for the skyline-distance extension."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.extensions.skyline_distance import (
    skyline_distance,
    skyline_upgrade_candidates,
)
from repro.skyline.algorithms import skyline_indices


def is_feasible(products, position):
    """No product strictly dominates the upgraded position."""
    if len(products) == 0:
        return True
    return not np.any(np.all(products < position, axis=1))


class TestBasics:
    def test_undominated_point_costs_zero(self):
        products = np.array([[2.0, 2.0], [3.0, 1.0]])
        cost, position = skyline_distance(products, [1.0, 5.0])
        assert cost == 0.0
        assert position.tolist() == [1.0, 5.0]

    def test_empty_products(self):
        cost, position = skyline_distance(np.empty((0, 2)), [1.0, 1.0])
        assert cost == 0.0

    def test_single_dominator(self):
        products = np.array([[1.0, 1.0]])
        cost, position = skyline_distance(products, [3.0, 4.0])
        # Cheapest escape: drop one dimension to the dominator's value.
        assert cost == pytest.approx(2.0)
        assert is_feasible(products, position)

    def test_weights_steer_dimension(self):
        products = np.array([[1.0, 1.0]])
        # Expensive first dimension: prefer fixing the second.
        cost, position = skyline_distance(products, [3.0, 4.0], weights=[10, 1])
        assert position.tolist() == [3.0, 1.0]
        assert cost == pytest.approx(3.0)

    def test_invalid_weights(self):
        with pytest.raises(InvalidParameterError):
            skyline_distance(np.array([[1.0, 1.0]]), [2.0, 2.0], weights=[1.0])
        with pytest.raises(InvalidParameterError):
            skyline_distance(
                np.array([[1.0, 1.0]]), [2.0, 2.0], weights=[-1.0, 1.0]
            )


class TestFeasibilityAndOptimality:
    def test_candidates_always_feasible(self):
        rng = np.random.default_rng(0)
        for _ in range(150):
            n = int(rng.integers(1, 40))
            products = rng.uniform(0, 1, size=(n, 2))
            p = rng.uniform(0.5, 1.5, size=2)
            for candidate in skyline_upgrade_candidates(products, p):
                assert is_feasible(products, candidate), (products, p, candidate)

    def test_candidates_feasible_3d(self):
        rng = np.random.default_rng(1)
        for _ in range(80):
            products = rng.uniform(0, 1, size=(30, 3))
            p = rng.uniform(0.6, 1.4, size=3)
            for candidate in skyline_upgrade_candidates(products, p):
                assert is_feasible(products, candidate)

    def test_2d_optimal_vs_brute_force(self):
        """Exactness in 2-D: no feasible axis-grid position is cheaper."""
        rng = np.random.default_rng(2)
        for _ in range(60):
            n = int(rng.integers(1, 15))
            products = rng.uniform(0, 1, size=(n, 2))
            p = rng.uniform(0.7, 1.3, size=2)
            cost, _pos = skyline_distance(products, p)
            # Brute force over the relevant grid: per dimension, the
            # useful target values are the dominators' coordinates.
            sky = products[skyline_indices(products)]
            xs = np.concatenate([[p[0]], sky[:, 0]])
            ys = np.concatenate([[p[1]], sky[:, 1]])
            best = np.inf
            for x in xs:
                for y in ys:
                    candidate = np.minimum(p, [x, y])
                    if is_feasible(products, candidate):
                        best = min(best, float(np.sum(np.abs(p - candidate))))
            assert cost <= best + 1e-9, (products, p)

    def test_upgraded_point_joins_strict_skyline(self):
        """After the upgrade, the point belongs to the skyline of the
        augmented dataset under strict-domination semantics."""
        rng = np.random.default_rng(3)
        for _ in range(40):
            products = rng.uniform(0, 1, size=(25, 2))
            p = rng.uniform(0.8, 1.4, size=2)
            _cost, position = skyline_distance(products, p)
            assert not np.any(np.all(products < position, axis=1))

    def test_cost_monotone_in_depth(self):
        """A point dominated by more layers costs at least as much."""
        products = np.array([[1.0, 1.0], [0.5, 0.5]])
        shallow, _ = skyline_distance(products, [1.2, 1.2])
        deep, _ = skyline_distance(products, [3.0, 3.0])
        assert deep >= shallow
