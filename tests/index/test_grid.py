"""Tests for the uniform grid index."""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.index.grid import GridIndex
from repro.index.scan import ScanIndex


class TestConstruction:
    def test_empty(self):
        grid = GridIndex(np.empty((0, 2)))
        assert grid.range_indices(Box([0, 0], [1, 1])).size == 0
        assert grid.knn_indices([0, 0], 3).size == 0

    def test_single_point(self):
        grid = GridIndex(np.array([[1.0, 2.0]]))
        assert grid.range_indices(Box([0, 0], [3, 3])).tolist() == [0]

    def test_auto_resolution(self):
        rng = np.random.default_rng(0)
        grid = GridIndex(rng.uniform(0, 1, size=(10_000, 2)))
        assert grid.cell_count > 100

    def test_explicit_resolution(self):
        rng = np.random.default_rng(1)
        grid = GridIndex(rng.uniform(0, 1, size=(100, 2)), cells_per_dim=4)
        assert grid.cell_count <= 16

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            GridIndex(np.array([[1.0, 2.0]]), cells_per_dim=0)

    def test_identical_points_one_cell(self):
        pts = np.tile([[3.0, 3.0]], (50, 1))
        grid = GridIndex(pts)
        assert grid.cell_count == 1
        assert grid.range_indices(Box([3, 3], [3, 3])).size == 50


class TestQueriesMatchOracle:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_range_matches_scan(self, dim):
        rng = np.random.default_rng(dim)
        pts = rng.uniform(0, 100, size=(400, dim))
        grid = GridIndex(pts, cells_per_dim=5)
        scan = ScanIndex(pts)
        for _ in range(50):
            lo = rng.uniform(0, 80, size=dim)
            hi = lo + rng.uniform(0, 40, size=dim)
            box = Box(lo, hi)
            assert np.array_equal(
                grid.range_indices(box), scan.range_indices(box)
            )

    def test_range_outside_data(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(100, 2))
        grid = GridIndex(pts)
        assert grid.range_indices(Box([5, 5], [6, 6])).size == 0

    def test_knn_matches_scan(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 1, size=(300, 2))
        grid = GridIndex(pts, cells_per_dim=6)
        scan = ScanIndex(pts)
        for _ in range(30):
            p = rng.uniform(-0.2, 1.2, size=2)
            k = int(rng.integers(1, 12))
            g = np.sort(np.linalg.norm(pts[grid.knn_indices(p, k)] - p, axis=1))
            s = np.sort(np.linalg.norm(pts[scan.knn_indices(p, k)] - p, axis=1))
            assert np.allclose(g, s)

    def test_boundary_points_included(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        grid = GridIndex(pts, cells_per_dim=2)
        hits = grid.range_indices(Box([0, 0], [1, 1]))
        assert hits.tolist() == [0, 1, 2]


class TestStats:
    def test_selective_query_touches_few_cells(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(5000, 2))
        grid = GridIndex(pts, cells_per_dim=20)
        grid.reset_stats()
        grid.range_indices(Box([0.5, 0.5], [0.55, 0.55]))
        assert grid.stats.node_accesses <= 9
        assert grid.stats.point_comparisons < 1000


class TestWindowQueryIntegration:
    def test_reverse_skyline_on_grid(self):
        """The whole pipeline runs on the grid backend too."""
        from repro.skyline.reverse import reverse_skyline_naive

        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 1, size=(200, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        grid = GridIndex(pts)
        scan = ScanIndex(pts)
        assert np.array_equal(
            reverse_skyline_naive(grid, pts, q, self_exclude=True),
            reverse_skyline_naive(scan, pts, q, self_exclude=True),
        )
