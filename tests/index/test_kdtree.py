"""Tests for the k-d tree backend."""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.index.kdtree import KDTree
from repro.index.scan import ScanIndex


class TestConstruction:
    def test_empty(self):
        tree = KDTree(np.empty((0, 2)))
        assert tree.range_indices(Box([0, 0], [1, 1])).size == 0
        assert tree.knn_indices([0, 0], 2).size == 0
        assert tree.height() == 0

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        assert tree.range_indices(Box([0, 0], [3, 3])).tolist() == [0]

    def test_all_identical_points(self):
        pts = np.tile([[4.0, 4.0]], (100, 1))
        tree = KDTree(pts, leaf_size=8)
        assert tree.range_indices(Box([4, 4], [4, 4])).size == 100

    def test_identical_in_one_dimension(self):
        rng = np.random.default_rng(0)
        pts = np.column_stack([np.full(200, 1.0), rng.uniform(0, 1, 200)])
        tree = KDTree(pts, leaf_size=4)
        scan = ScanIndex(pts)
        box = Box([1.0, 0.2], [1.0, 0.8])
        assert np.array_equal(tree.range_indices(box), scan.range_indices(box))

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.array([[1.0, 2.0]]), leaf_size=0)

    def test_balanced_height(self):
        rng = np.random.default_rng(1)
        tree = KDTree(rng.uniform(0, 1, size=(4096, 2)), leaf_size=8)
        assert tree.height() <= 16  # ~log2(4096/8) + slack.


class TestQueriesMatchOracle:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_range_matches_scan(self, dim):
        rng = np.random.default_rng(dim + 5)
        pts = np.round(rng.uniform(0, 100, size=(500, dim)), 1)
        tree = KDTree(pts, leaf_size=6)
        scan = ScanIndex(pts)
        for _ in range(50):
            lo = rng.uniform(0, 80, size=dim)
            box = Box(lo, lo + rng.uniform(0, 40, size=dim))
            assert np.array_equal(
                tree.range_indices(box), scan.range_indices(box)
            )

    def test_knn_matches_scan(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 1, size=(400, 2))
        tree = KDTree(pts, leaf_size=8)
        scan = ScanIndex(pts)
        for _ in range(30):
            p = rng.uniform(-0.1, 1.1, size=2)
            k = int(rng.integers(1, 15))
            t = np.sort(np.linalg.norm(pts[tree.knn_indices(p, k)] - p, axis=1))
            s = np.sort(np.linalg.norm(pts[scan.knn_indices(p, k)] - p, axis=1))
            assert np.allclose(t, s)

    def test_reverse_skyline_pipeline(self):
        from repro.skyline.reverse import reverse_skyline_naive

        rng = np.random.default_rng(10)
        pts = rng.uniform(0, 1, size=(150, 2))
        q = rng.uniform(0.3, 0.7, size=2)
        assert np.array_equal(
            reverse_skyline_naive(KDTree(pts), pts, q, self_exclude=True),
            reverse_skyline_naive(ScanIndex(pts), pts, q, self_exclude=True),
        )


class TestStats:
    def test_selective_query_prunes(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 1, size=(5000, 2))
        tree = KDTree(pts, leaf_size=16)
        tree.reset_stats()
        tree.range_indices(Box([0.4, 0.4], [0.42, 0.42]))
        assert tree.stats.point_comparisons < 1000
