"""Cross-backend equivalence matrix.

All four index backends must be observationally identical on the same
data — for raw queries and through the whole why-not pipeline.
"""

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.data.cardb import generate_cardb
from repro.data.paperdata import paper_points, paper_query
from repro.geometry.box import Box
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex

BACKENDS = ["scan", "rtree", "grid", "kdtree"]


@pytest.fixture(scope="module")
def random_points():
    return np.random.default_rng(77).uniform(0, 100, size=(400, 2))


def build(backend, points):
    return {
        "scan": ScanIndex,
        "rtree": RTree,
        "grid": GridIndex,
        "kdtree": KDTree,
    }[backend](points)


class TestRawQueries:
    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_range_matches_scan(self, backend, random_points):
        index = build(backend, random_points)
        oracle = ScanIndex(random_points)
        rng = np.random.default_rng(5)
        for _ in range(40):
            lo = rng.uniform(0, 90, size=2)
            box = Box(lo, lo + rng.uniform(0, 30, size=2))
            assert np.array_equal(
                index.range_indices(box), oracle.range_indices(box)
            ), backend

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_knn_distances_match_scan(self, backend, random_points):
        index = build(backend, random_points)
        oracle = ScanIndex(random_points)
        rng = np.random.default_rng(6)
        for _ in range(20):
            p = rng.uniform(0, 100, size=2)
            k = int(rng.integers(1, 8))
            a = np.sort(
                np.linalg.norm(random_points[index.knn_indices(p, k)] - p, axis=1)
            )
            b = np.sort(
                np.linalg.norm(random_points[oracle.knn_indices(p, k)] - p, axis=1)
            )
            assert np.allclose(a, b), backend


class TestPipelineEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_paper_example_identical(self, backend):
        engine = WhyNotEngine(paper_points(), backend=backend)
        q = paper_query()
        assert engine.reverse_skyline(q).tolist() == [1, 2, 3, 5, 7]
        mwp = {tuple(c.point) for c in engine.modify_why_not_point(0, q)}
        assert mwp == {(5.0, 48.5), (8.0, 30.0)}
        assert engine.modify_both(0, q).cost == 0.0

    def test_cardb_costs_identical_across_backends(self):
        dataset = generate_cardb(400, seed=3)
        q = np.median(dataset.points, axis=0)
        costs = {}
        for backend in BACKENDS:
            engine = WhyNotEngine(
                dataset.points, backend=backend, bounds=dataset.bounds
            )
            members = engine.reverse_skyline(q)
            why_not = next(
                j
                for j in range(dataset.size)
                if j not in set(members.tolist())
                and not engine.explain(j, q).is_member
            )
            costs[backend] = (
                tuple(members.tolist()),
                engine.modify_why_not_point(why_not, q).best().cost,
                engine.modify_both(why_not, q).cost,
            )
        reference = costs["scan"]
        for backend in BACKENDS[1:]:
            assert costs[backend] == reference, backend
