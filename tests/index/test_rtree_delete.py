"""Tests for R*-tree deletion and tree condensation."""

import numpy as np
import pytest

from repro.config import RTreeConfig
from repro.exceptions import IndexCorruptionError
from repro.geometry.box import Box
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex


def make_tree(n=200, seed=0, max_entries=5, bulk=True):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 100, size=(n, 2))
    return pts, RTree(pts, config=RTreeConfig(max_entries=max_entries), bulk=bulk)


class TestDelete:
    def test_deleted_point_not_returned(self):
        pts, tree = make_tree()
        target = 17
        box = Box(pts[target] - 0.1, pts[target] + 0.1)
        assert target in tree.range_indices(box).tolist()
        tree.delete(target)
        assert target not in tree.range_indices(box).tolist()

    def test_integrity_after_each_deletion(self):
        pts, tree = make_tree(n=80, max_entries=4)
        rng = np.random.default_rng(1)
        for position in rng.permutation(80)[:40]:
            tree.delete(int(position))
            tree.check_integrity()

    def test_delete_everything(self):
        pts, tree = make_tree(n=60, max_entries=4)
        for position in range(60):
            tree.delete(position)
        tree.check_integrity()
        assert tree.range_indices(Box([0, 0], [100, 100])).size == 0
        assert tree.deleted_count == 60

    def test_queries_match_filtered_scan(self):
        pts, tree = make_tree(n=150, max_entries=6)
        scan = ScanIndex(pts)
        rng = np.random.default_rng(2)
        removed = set(int(i) for i in rng.permutation(150)[:70])
        for position in removed:
            tree.delete(position)
        for _ in range(30):
            lo = rng.uniform(0, 80, size=2)
            box = Box(lo, lo + rng.uniform(5, 30, size=2))
            expected = [
                i for i in scan.range_indices(box).tolist() if i not in removed
            ]
            assert tree.range_indices(box).tolist() == expected

    def test_knn_skips_deleted(self):
        pts, tree = make_tree(n=50)
        nearest = int(tree.knn_indices(pts[0], 1)[0])
        assert nearest == 0
        tree.delete(0)
        assert int(tree.knn_indices(pts[0], 1)[0]) != 0

    def test_double_delete_rejected(self):
        _pts, tree = make_tree(n=20)
        tree.delete(3)
        with pytest.raises(KeyError):
            tree.delete(3)

    def test_out_of_range_rejected(self):
        _pts, tree = make_tree(n=20)
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_delete_from_insert_built_tree(self):
        pts, tree = make_tree(n=100, max_entries=4, bulk=False)
        for position in range(0, 100, 3):
            tree.delete(position)
        tree.check_integrity()

    def test_delete_then_duplicate_coordinates(self):
        pts = np.tile([[5.0, 5.0]], (30, 1))
        tree = RTree(pts, config=RTreeConfig(max_entries=4))
        tree.delete(10)
        tree.check_integrity()
        hits = tree.range_indices(Box([5, 5], [5, 5]))
        assert hits.size == 29
        assert 10 not in hits.tolist()

    def test_root_collapse(self):
        """Deleting most points must shrink the tree height."""
        pts, tree = make_tree(n=300, max_entries=4)
        initial_height = tree.height
        for position in range(290):
            tree.delete(position)
        tree.check_integrity()
        assert tree.height <= initial_height
        hits = tree.range_indices(Box([0, 0], [100, 100]))
        assert hits.tolist() == list(range(290, 300))
