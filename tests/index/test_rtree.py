"""Tests for the R*-tree: construction paths, queries vs the scan oracle,
structural integrity."""

import numpy as np
import pytest

from repro.config import RTreeConfig
from repro.geometry.box import Box
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex


def random_points(seed, n, dim=2):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 100, size=(n, dim))


class TestConstruction:
    @pytest.mark.parametrize("bulk", [True, False])
    def test_integrity_small(self, bulk):
        tree = RTree(random_points(0, 50), bulk=bulk)
        tree.check_integrity()

    @pytest.mark.parametrize("bulk", [True, False])
    def test_integrity_forces_splits(self, bulk):
        config = RTreeConfig(max_entries=4)
        tree = RTree(random_points(1, 200), config=config, bulk=bulk)
        tree.check_integrity()
        assert tree.height >= 3

    def test_empty_tree(self):
        tree = RTree(np.empty((0, 2)))
        tree.check_integrity()
        assert tree.range_indices(Box([0, 0], [1, 1])).size == 0
        assert tree.knn_indices([0, 0], 3).size == 0

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 2.0]]))
        tree.check_integrity()
        assert tree.range_indices(Box([0, 0], [3, 3])).tolist() == [0]

    def test_duplicate_points(self):
        pts = np.tile([[1.0, 1.0]], (30, 1))
        tree = RTree(pts, config=RTreeConfig(max_entries=5), bulk=False)
        tree.check_integrity()
        hits = tree.range_indices(Box([1, 1], [1, 1]))
        assert hits.size == 30

    def test_3d(self):
        tree = RTree(random_points(2, 300, dim=3), config=RTreeConfig(max_entries=8))
        tree.check_integrity()

    def test_node_count_positive(self):
        tree = RTree(random_points(3, 100))
        assert tree.node_count() >= 1


class TestQueriesMatchOracle:
    @pytest.mark.parametrize("bulk", [True, False])
    @pytest.mark.parametrize("n", [1, 17, 200])
    def test_range_matches_scan(self, bulk, n):
        pts = random_points(4, n)
        tree = RTree(pts, config=RTreeConfig(max_entries=6), bulk=bulk)
        scan = ScanIndex(pts)
        rng = np.random.default_rng(5)
        for _ in range(40):
            lo = rng.uniform(0, 80, size=2)
            hi = lo + rng.uniform(0, 40, size=2)
            box = Box(lo, hi)
            assert np.array_equal(
                tree.range_indices(box), scan.range_indices(box)
            )

    @pytest.mark.parametrize("bulk", [True, False])
    def test_knn_matches_scan(self, bulk):
        pts = random_points(6, 150)
        tree = RTree(pts, config=RTreeConfig(max_entries=6), bulk=bulk)
        scan = ScanIndex(pts)
        rng = np.random.default_rng(7)
        for _ in range(25):
            p = rng.uniform(0, 100, size=2)
            k = int(rng.integers(1, 10))
            t_hits = tree.knn_indices(p, k)
            s_hits = scan.knn_indices(p, k)
            t_d = np.linalg.norm(pts[t_hits] - p, axis=1)
            s_d = np.linalg.norm(pts[s_hits] - p, axis=1)
            # Same distances (indices may differ only on exact ties).
            assert np.allclose(np.sort(t_d), np.sort(s_d))

    def test_range_with_ties_on_boundary(self):
        pts = np.array([[1.0, 1.0], [1.0, 2.0], [2.0, 1.0], [0.999, 1.0]])
        tree = RTree(pts)
        hits = tree.range_indices(Box([1, 1], [2, 2]))
        assert hits.tolist() == [0, 1, 2]


class TestStats:
    def test_node_accesses_counted(self):
        tree = RTree(random_points(8, 500), config=RTreeConfig(max_entries=8))
        tree.reset_stats()
        tree.range_indices(Box([0, 0], [100, 100]))
        assert tree.stats.node_accesses > 1
        assert tree.stats.queries == 1

    def test_small_window_touches_fewer_nodes(self):
        tree = RTree(random_points(9, 2000), config=RTreeConfig(max_entries=16))
        tree.reset_stats()
        tree.range_indices(Box([0, 0], [100, 100]))
        full = tree.stats.node_accesses
        tree.reset_stats()
        tree.range_indices(Box([10, 10], [12, 12]))
        small = tree.stats.node_accesses
        assert small < full


class TestConfigValidation:
    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=2)

    def test_bad_min_fill(self):
        with pytest.raises(ValueError):
            RTreeConfig(min_fill=0.9)

    def test_bad_reinsert(self):
        with pytest.raises(ValueError):
            RTreeConfig(reinsert_fraction=1.0)

    def test_min_entries_derived(self):
        assert RTreeConfig(max_entries=10, min_fill=0.4).min_entries == 4
