"""Tests for the brute-force ScanIndex."""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.index.scan import ScanIndex


@pytest.fixture()
def grid_index():
    # 5x5 integer grid.
    xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
    return ScanIndex(np.column_stack([xs.ravel(), ys.ravel()]))


class TestRange:
    def test_closed_range(self, grid_index):
        hits = grid_index.range_indices(Box([1, 1], [2, 2]))
        assert hits.size == 4
        for pos in hits:
            p = grid_index.get_point(pos)
            assert 1 <= p[0] <= 2 and 1 <= p[1] <= 2

    def test_boundary_included(self, grid_index):
        hits = grid_index.range_indices(Box([0, 0], [0, 0]))
        assert hits.size == 1
        assert grid_index.get_point(hits[0]).tolist() == [0.0, 0.0]

    def test_empty_range(self, grid_index):
        assert grid_index.range_indices(Box([10, 10], [11, 11])).size == 0

    def test_full_range(self, grid_index):
        assert grid_index.range_indices(Box([0, 0], [4, 4])).size == 25

    def test_dim_mismatch_raises(self, grid_index):
        with pytest.raises(ValueError):
            grid_index.range_indices(Box([0, 0, 0], [1, 1, 1]))

    def test_empty_index(self):
        idx = ScanIndex(np.empty((0, 2)))
        assert idx.range_indices(Box([0, 0], [1, 1])).size == 0

    def test_results_sorted(self, grid_index):
        hits = grid_index.range_indices(Box([0, 0], [4, 4]))
        assert np.array_equal(hits, np.sort(hits))


class TestKnn:
    def test_exact_neighbours(self, grid_index):
        hits = grid_index.knn_indices([0.1, 0.1], 3)
        pts = grid_index.points[hits]
        assert pts[0].tolist() == [0.0, 0.0]
        assert len(hits) == 3

    def test_k_capped_at_size(self, grid_index):
        assert grid_index.knn_indices([0, 0], 100).size == 25

    def test_k_zero(self, grid_index):
        assert grid_index.knn_indices([0, 0], 0).size == 0

    def test_deterministic_tie_break(self):
        idx = ScanIndex(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        hits = idx.knn_indices([0.0, 0.0], 3)
        assert hits.tolist() == [0, 1, 2]

    def test_distances_monotone(self, grid_index):
        hits = grid_index.knn_indices([2.2, 2.7], 25)
        dists = np.linalg.norm(grid_index.points[hits] - [2.2, 2.7], axis=1)
        assert np.all(np.diff(dists) >= -1e-12)


class TestStats:
    def test_counters_increment(self, grid_index):
        grid_index.range_indices(Box([0, 0], [1, 1]))
        grid_index.knn_indices([0, 0], 2)
        snap = grid_index.stats.snapshot()
        assert snap["queries"] == 2
        assert snap["point_comparisons"] == 50

    def test_reset(self, grid_index):
        grid_index.range_indices(Box([0, 0], [1, 1]))
        grid_index.reset_stats()
        assert grid_index.stats.queries == 0
