"""Tests for the IndexStats counters."""

from repro.index.stats import IndexStats


class TestIndexStats:
    def test_defaults_zero(self):
        stats = IndexStats()
        assert stats.snapshot() == {
            "node_accesses": 0,
            "point_comparisons": 0,
            "queries": 0,
            "incremental_inserts": 0,
            "incremental_removes": 0,
            "incremental_updates": 0,
            "rebuilds": 0,
            "deferred_rebuilds": 0,
        }

    def test_reset(self):
        stats = IndexStats(node_accesses=5, point_comparisons=9, queries=2)
        stats.reset()
        assert stats.node_accesses == 0
        assert stats.point_comparisons == 0
        assert stats.queries == 0

    def test_merge_sums(self):
        a = IndexStats(node_accesses=1, point_comparisons=2, queries=3)
        b = IndexStats(node_accesses=10, point_comparisons=20, queries=30)
        merged = a.merge(b)
        assert merged.node_accesses == 11
        assert merged.point_comparisons == 22
        assert merged.queries == 33

    def test_merge_sums_mutation_counters(self):
        a = IndexStats(incremental_inserts=1, rebuilds=2, deferred_rebuilds=1)
        b = IndexStats(incremental_inserts=3, incremental_removes=4, rebuilds=5)
        merged = a.merge(b)
        assert merged.incremental_inserts == 4
        assert merged.incremental_removes == 4
        assert merged.incremental_updates == 0
        assert merged.rebuilds == 7
        assert merged.deferred_rebuilds == 1

    def test_merge_does_not_mutate(self):
        a = IndexStats(queries=1)
        b = IndexStats(queries=2)
        a.merge(b)
        assert a.queries == 1
        assert b.queries == 2
