"""Tests for STR bulk loading."""

import numpy as np
import pytest

from repro.config import RTreeConfig
from repro.geometry.box import Box
from repro.index.bulkload import str_bulk_load
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex


class TestStrBulkLoad:
    def test_empty(self):
        root = str_bulk_load(np.empty((0, 2)), RTreeConfig())
        assert root.count == 0
        assert root.is_leaf

    def test_all_points_covered_once(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(1000, 2))
        tree = RTree(pts, config=RTreeConfig(max_entries=10), bulk=True)
        tree.check_integrity()  # Verifies exactly-once coverage.

    def test_leaves_respect_capacity(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(333, 2))
        config = RTreeConfig(max_entries=7)
        root = str_bulk_load(pts, config)
        stack = [root]
        while stack:
            node = stack.pop()
            assert node.count <= config.max_entries
            if not node.is_leaf:
                stack.extend(node.children)

    def test_levels_uniform(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(500, 2))
        root = str_bulk_load(pts, RTreeConfig(max_entries=5))
        leaf_levels = set()
        stack = [(root, root.level)]
        while stack:
            node, level = stack.pop()
            assert node.level == level
            if node.is_leaf:
                leaf_levels.add(level)
            else:
                stack.extend((c, level - 1) for c in node.children)
        assert leaf_levels == {0}

    @pytest.mark.parametrize("n", [1, 5, 38, 39, 77, 1444])
    def test_sizes_around_capacity_boundaries(self, n):
        rng = np.random.default_rng(n)
        pts = rng.uniform(0, 1, size=(n, 2))
        tree = RTree(pts, bulk=True)
        tree.check_integrity()

    def test_query_equivalence_3d(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(800, 3))
        tree = RTree(pts, config=RTreeConfig(max_entries=12), bulk=True)
        scan = ScanIndex(pts)
        for _ in range(20):
            lo = rng.uniform(0, 0.7, size=3)
            box = Box(lo, lo + 0.3)
            assert np.array_equal(
                tree.range_indices(box), scan.range_indices(box)
            )

    def test_str_tiles_spatially(self):
        # Points on a line: each leaf should cover a contiguous segment
        # (low MBR overlap is the whole point of STR).
        xs = np.arange(100.0)
        pts = np.column_stack([xs, np.zeros(100)])
        root = str_bulk_load(pts, RTreeConfig(max_entries=10))
        leaves = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children)
        spans = sorted((leaf.lo[0], leaf.hi[0]) for leaf in leaves)
        for (_, hi_prev), (lo_next, _) in zip(spans[:-1], spans[1:]):
            assert lo_next > hi_prev  # Disjoint segments.
