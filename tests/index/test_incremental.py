"""Incremental mutation surface of every index backend.

The contract (SpatialIndex docstring): after any insert/remove/update,
the index answers range and kNN queries exactly as a freshly built index
over the same matrix — whether the backend absorbed the operation in
place (``stats.incremental_*``) or fell back to a counted rebuild
(``stats.rebuilds``).
"""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex

BACKENDS = {
    "scan": ScanIndex,
    "grid": GridIndex,
    "kdtree": KDTree,
    "rtree": RTree,
}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return request.param


def _points(n: int = 40, d: int = 2, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.round(rng.uniform(0.0, 1.0, size=(n, d)) * 16) / 16


def _assert_counted(index, op: str) -> None:
    """One mutation must be accounted under exactly one regime: absorbed
    in place, deferred (lazy rebuild on next query), or eager rebuild."""
    snap = index.stats.snapshot()
    incremental = (
        snap["incremental_inserts"]
        + snap["incremental_removes"]
        + snap["incremental_updates"]
    )
    if op in index.incremental_ops:
        assert incremental == 1 and snap["rebuilds"] == 0
        assert snap["deferred_rebuilds"] == 0
    elif op in index.deferred_ops:
        assert incremental == 0 and snap["rebuilds"] == 0
        assert snap["deferred_rebuilds"] == 1
    else:
        assert incremental == 0 and snap["rebuilds"] == 1
        assert snap["deferred_rebuilds"] == 0


def _assert_matches_fresh(index, backend: str) -> None:
    """Mutated index ≡ fresh index over the same matrix, on both query
    surfaces, over a deterministic probe battery."""
    fresh = BACKENDS[backend](index.points)
    rng = np.random.default_rng(9)
    for _ in range(6):
        lo = rng.uniform(-0.1, 0.7, size=index.dim)
        hi = lo + rng.uniform(0.05, 0.6, size=index.dim)
        box = Box(lo, hi)
        got = np.sort(index.range_indices(box))
        want = np.sort(fresh.range_indices(box))
        assert np.array_equal(got, want), (backend, "range", lo, hi)
        q = rng.uniform(0.0, 1.0, size=index.dim)
        k = int(rng.integers(1, min(8, index.size) + 1))
        assert np.array_equal(
            index.knn_indices(q, k), fresh.knn_indices(q, k)
        ), (backend, "knn", q, k)


class TestInsert:
    def test_positions_and_matrix(self, backend):
        index = BACKENDS[backend](_points())
        rows = np.array([[0.05, 0.95], [0.5, 0.5]])
        positions = index.insert(rows)
        assert positions.tolist() == [40, 41]
        assert np.array_equal(index.points[40:], rows)
        _assert_matches_fresh(index, backend)

    def test_single_point_accepted(self, backend):
        index = BACKENDS[backend](_points())
        assert index.insert(np.array([0.2, 0.3])).tolist() == [40]
        _assert_matches_fresh(index, backend)

    def test_counted(self, backend):
        index = BACKENDS[backend](_points())
        index.insert([[0.3, 0.3]])
        _assert_counted(index, "insert")


class TestRemove:
    def test_mapping_and_compaction(self, backend):
        pts = _points()
        index = BACKENDS[backend](pts)
        mapping = index.remove([0, 7, 39])
        assert mapping.tolist()[0] == -1
        assert mapping[7] == -1 and mapping[39] == -1
        keep = np.flatnonzero(mapping >= 0)
        assert np.array_equal(index.points, pts[keep])
        _assert_matches_fresh(index, backend)

    def test_counted(self, backend):
        index = BACKENDS[backend](_points())
        index.remove([3])
        _assert_counted(index, "remove")

    def test_out_of_range(self, backend):
        index = BACKENDS[backend](_points())
        with pytest.raises(ValueError, match="out of range"):
            index.remove([40])


class TestUpdate:
    def test_rows_replaced_in_place(self, backend):
        pts = _points()
        index = BACKENDS[backend](pts)
        rows = np.array([[0.01, 0.99], [0.99, 0.01]])
        index.update([5, 2], rows)
        assert np.array_equal(index.points[2], rows[1])
        assert np.array_equal(index.points[5], rows[0])
        assert index.size == pts.shape[0]
        _assert_matches_fresh(index, backend)

    def test_counted(self, backend):
        index = BACKENDS[backend](_points())
        index.update([0], [[0.4, 0.4]])
        _assert_counted(index, "update")

    def test_duplicate_positions_rejected(self, backend):
        index = BACKENDS[backend](_points())
        with pytest.raises(ValueError, match="distinct"):
            index.update([1, 1], [[0.1, 0.1], [0.2, 0.2]])


class TestMutationSequences:
    def test_random_interleaving_matches_fresh(self, backend):
        """A churn of mixed mutations never drifts from a cold build."""
        rng = np.random.default_rng(13)
        index = BACKENDS[backend](_points(30))
        shadow = index.points.copy()
        for step in range(15):
            kind = ("insert", "remove", "update")[step % 3]
            if kind == "insert":
                rows = rng.uniform(0.0, 1.0, size=(int(rng.integers(1, 3)), 2))
                index.insert(rows)
                shadow = np.vstack([shadow, rows])
            elif kind == "remove":
                pos = int(rng.integers(0, shadow.shape[0]))
                index.remove([pos])
                shadow = np.delete(shadow, pos, axis=0)
            else:
                pos = int(rng.integers(0, shadow.shape[0]))
                row = rng.uniform(0.0, 1.0, size=(1, 2))
                index.update([pos], row)
                shadow = shadow.copy()
                shadow[pos] = row[0]
            assert np.array_equal(index.points, shadow), (backend, step, kind)
        _assert_matches_fresh(index, backend)

    def test_out_of_bounds_inserts_stay_queryable(self, backend):
        """Points outside the original extent (grid overflow path)."""
        index = BACKENDS[backend](_points())
        index.insert(np.array([[2.5, -1.0], [3.0, 3.0]]))
        box = Box(np.array([2.0, -2.0]), np.array([4.0, 4.0]))
        assert np.array_equal(np.sort(index.range_indices(box)), [40, 41])
        _assert_matches_fresh(index, backend)

    def test_advertised_ops_are_accurate(self, backend):
        """incremental_ops/deferred_ops must agree with the counters."""
        for op in ("insert", "remove", "update"):
            index = BACKENDS[backend](_points())
            assert not (index.incremental_ops & index.deferred_ops)
            if op == "insert":
                index.insert([[0.5, 0.5]])
            elif op == "remove":
                index.remove([0])
            else:
                index.update([0], [[0.5, 0.5]])
            _assert_counted(index, op)


class TestDeferredRebuilds:
    """The KDTree's lazy-rebuild coalescing (deferred_ops backends)."""

    def test_mutation_batch_coalesces_into_one_rebuild(self):
        index = KDTree(_points())
        index.insert([[0.3, 0.3], [0.6, 0.1]])
        index.update([0], [[0.45, 0.45]])
        index.remove([2])
        snap = index.stats.snapshot()
        assert snap["deferred_rebuilds"] == 3
        assert snap["rebuilds"] == 0
        # The first query pays for exactly one reconstruction...
        index.range_indices(Box(np.zeros(2), np.ones(2)))
        assert index.stats.rebuilds == 1
        # ...and later queries reuse it.
        index.knn_indices([0.5, 0.5], 3)
        assert index.stats.rebuilds == 1
        _assert_matches_fresh(index, "kdtree")

    def test_queries_after_mutation_match_fresh(self):
        index = KDTree(_points())
        index.insert([[0.05, 0.95]])
        _assert_matches_fresh(index, "kdtree")

    def test_height_triggers_rebuild(self):
        index = KDTree(_points(200))
        before = index.height()
        index.remove(list(range(150)))
        assert index.height() <= before
        assert index.stats.rebuilds == 1
