"""Import-layering contract, mirrored from the CI walk.

Source-level scan (so even lazy/function-local imports are caught) of
the library layers that must stay below the planner and the
presentation layers.  The CI job runs the same walk out-of-process;
keeping a tier-1 replica means a violation fails the fast local suite,
not just the workflow.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

RULES = {
    "repro/plan": ("repro.experiments", "repro.viz"),
    "repro/kernels": ("repro.plan",),
    "repro/shard": ("repro.plan", "repro.experiments", "repro.viz"),
    "repro/obs": (
        "repro.core",
        "repro.plan",
        "repro.index",
        "repro.kernels",
        "repro.experiments",
        "repro.viz",
    ),
    # The prune layer sits beside the kernels: summaries/classifier may
    # read the stores and obs counters but must never reach up into the
    # compute, planning or presentation layers (kernels import prune,
    # never the reverse).
    "repro/prune": (
        "repro.core",
        "repro.plan",
        "repro.kernels",
        "repro.index",
        "repro.shard",
        "repro.experiments",
        "repro.viz",
    ),
    # The serving layer is the top of the library: it composes the
    # engine, planner, store and obs but may not reach into the compute
    # layers directly (kernels/index/shard are planner implementation
    # details) nor into the presentation layers.
    "repro/serve": (
        "repro.kernels",
        "repro.index",
        "repro.shard",
        "repro.experiments",
        "repro.viz",
    ),
    # The preference model is foundation-level: every dominance-consuming
    # layer imports it, so it may depend on nothing above the shared
    # config/exception modules (see the positive pin below).
    "repro/prefs": (
        "repro.core",
        "repro.plan",
        "repro.kernels",
        "repro.index",
        "repro.shard",
        "repro.skyline",
        "repro.geometry",
        "repro.prune",
        "repro.store",
        "repro.obs",
        "repro.serve",
        "repro.experiments",
        "repro.viz",
    ),
}

IMPORT_RE = re.compile(
    r"^\s*(?:from\s+([\w.]+)\s+import|import\s+([\w.]+))", re.MULTILINE
)


def violations_for(root: str, forbidden: tuple) -> list[str]:
    found = []
    for path in (SRC / root).rglob("*.py"):
        for match in IMPORT_RE.finditer(path.read_text()):
            module = match.group(1) or match.group(2)
            for banned in forbidden:
                if module == banned or module.startswith(banned + "."):
                    found.append(f"{path}: imports {module}")
    return found


def test_layer_rules_hold():
    problems = []
    for root, forbidden in RULES.items():
        assert (SRC / root).is_dir(), f"layer {root} disappeared"
        problems += violations_for(root, forbidden)
    assert not problems, "layering violations:\n" + "\n".join(problems)


def test_prune_layer_has_only_allowed_dependencies():
    """Positive pin: every repro.* import inside repro/prune must come
    from the explicitly allowed foundations."""
    allowed = ("repro.prune", "repro.store", "repro.obs", "repro.exceptions")
    offending = []
    for path in (SRC / "repro/prune").rglob("*.py"):
        for match in IMPORT_RE.finditer(path.read_text()):
            module = match.group(1) or match.group(2)
            if not module.startswith("repro"):
                continue
            if not any(
                module == a or module.startswith(a + ".") for a in allowed
            ):
                offending.append(f"{path}: imports {module}")
    assert not offending, "\n".join(offending)


def test_serve_layer_has_only_allowed_dependencies():
    """Positive pin for the serving layer: it may compose the facade
    layers (core, plan, store, obs) and the shared config/exception
    modules, nothing else."""
    allowed = (
        "repro.serve",
        "repro.core",
        "repro.plan",
        "repro.store",
        "repro.obs",
        "repro.config",
        "repro.exceptions",
        "repro.prefs",
    )
    offending = []
    for path in (SRC / "repro/serve").rglob("*.py"):
        for match in IMPORT_RE.finditer(path.read_text()):
            module = match.group(1) or match.group(2)
            if not module.startswith("repro"):
                continue
            if not any(
                module == a or module.startswith(a + ".") for a in allowed
            ):
                offending.append(f"{path}: imports {module}")
    assert not offending, "\n".join(offending)


def test_prefs_layer_has_only_allowed_dependencies():
    """Positive pin: the preference model sits at the foundation; inside
    repro/prefs only the shared config/exception modules may be
    imported."""
    allowed = ("repro.prefs", "repro.config", "repro.exceptions")
    offending = []
    for path in (SRC / "repro/prefs").rglob("*.py"):
        for match in IMPORT_RE.finditer(path.read_text()):
            module = match.group(1) or match.group(2)
            if not module.startswith("repro"):
                continue
            if not any(
                module == a or module.startswith(a + ".") for a in allowed
            ):
                offending.append(f"{path}: imports {module}")
    assert not offending, "\n".join(offending)


def test_nothing_below_serve_imports_it():
    """serve is a leaf: only the experiments CLI (presentation) may
    import ``repro.serve``; the library underneath must not know the
    serving layer exists."""
    offending = []
    for path in (SRC / "repro").rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith(("repro/serve/", "repro/experiments/")):
            continue
        for match in IMPORT_RE.finditer(path.read_text()):
            module = match.group(1) or match.group(2)
            if module == "repro.serve" or module.startswith("repro.serve."):
                offending.append(f"{path}: imports {module}")
    assert not offending, "serve leaked downward:\n" + "\n".join(offending)
