"""Smoke tests for the public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.index",
            "repro.skyline",
            "repro.core",
            "repro.data",
            "repro.experiments",
            "repro.experiments.cli",
        ],
    )
    def test_submodules_import(self, module):
        importlib.import_module(module)

    def test_docstring_quickstart_runs(self):
        """The module docstring's example must actually work."""
        import numpy as np

        points = np.array(
            [[5, 30], [7.5, 42], [2.5, 70], [7.5, 90],
             [24, 20], [20, 50], [26, 70], [16, 80]],
            dtype=float,
        )
        engine = repro.WhyNotEngine(points)
        q = np.array([8.5, 55.0])
        assert engine.reverse_skyline(q).size == 5
        assert "p" not in engine.explain(0, q).describe()[:2]
        assert len(engine.modify_why_not_point(0, q)) == 2
        assert engine.modify_both(0, q).cost == 0.0


class TestExceptionsHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro.exceptions import (
            DimensionMismatchError,
            EmptyDatasetError,
            IndexCorruptionError,
            InvalidParameterError,
            NotInReverseSkylineError,
            ReproError,
        )

        for exc in (
            DimensionMismatchError,
            EmptyDatasetError,
            IndexCorruptionError,
            InvalidParameterError,
            NotInReverseSkylineError,
        ):
            assert issubclass(exc, ReproError)

    def test_dimension_mismatch_message(self):
        from repro.exceptions import DimensionMismatchError

        err = DimensionMismatchError(2, 3, what="box")
        assert "box" in str(err)
        assert err.expected == 2 and err.got == 3
