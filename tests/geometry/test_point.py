"""Tests for point coercion helpers."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.point import as_point, as_points, point_distance_l1, weighted_l1


class TestAsPoint:
    def test_list_coerced_to_float64(self):
        p = as_point([1, 2])
        assert p.dtype == np.float64
        assert p.tolist() == [1.0, 2.0]

    def test_tuple_and_array_accepted(self):
        assert as_point((3.5, 4.5)).tolist() == [3.5, 4.5]
        assert as_point(np.array([3.5, 4.5])).tolist() == [3.5, 4.5]

    def test_dim_validated(self):
        with pytest.raises(DimensionMismatchError):
            as_point([1.0, 2.0], dim=3)

    def test_rejects_matrix(self):
        with pytest.raises(InvalidParameterError):
            as_point([[1.0, 2.0]])

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            as_point([])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(InvalidParameterError):
            as_point([1.0, float("nan")])
        with pytest.raises(InvalidParameterError):
            as_point([1.0, float("inf")])


class TestAsPoints:
    def test_matrix_passthrough(self):
        m = as_points([[1, 2], [3, 4]])
        assert m.shape == (2, 2)

    def test_single_point_promoted_to_row(self):
        m = as_points([1.0, 2.0])
        assert m.shape == (1, 2)

    def test_empty_with_dim(self):
        m = as_points([], dim=3)
        assert m.shape == (0, 3)

    def test_empty_without_dim(self):
        assert as_points([]).shape == (0, 0)

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            as_points([[1.0, 2.0]], dim=3)

    def test_rejects_3d(self):
        with pytest.raises(InvalidParameterError):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            as_points([[1.0, float("nan")]])


class TestDistances:
    def test_l1(self):
        assert point_distance_l1([0.0, 0.0], [3.0, 4.0]) == 7.0

    def test_l1_symmetric(self):
        assert point_distance_l1([1, 5], [4, 2]) == point_distance_l1([4, 2], [1, 5])

    def test_weighted_l1(self):
        assert weighted_l1([0.0, 0.0], [2.0, 4.0], [0.5, 0.25]) == 2.0

    def test_weighted_l1_rejects_bad_weights(self):
        with pytest.raises(DimensionMismatchError):
            weighted_l1([0.0, 0.0], [1.0, 1.0], [1.0])
