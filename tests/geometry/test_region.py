"""Tests for BoxRegion (unions of boxes) including exact measure."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.region import BoxRegion


def region(*specs):
    return BoxRegion([Box(lo, hi) for lo, hi in specs])


class TestBasics:
    def test_empty(self):
        r = BoxRegion.empty(2)
        assert r.is_empty()
        assert len(r) == 0
        assert not r.contains_point([0.0, 0.0])
        assert r.bounding_box() is None
        assert r.measure() == 0.0

    def test_single(self):
        r = BoxRegion.single(Box([0, 0], [1, 1]))
        assert len(r) == 1
        assert r.contains_point([0.5, 0.5])

    def test_dim_consistency_enforced(self):
        with pytest.raises(DimensionMismatchError):
            BoxRegion([Box([0, 0], [1, 1]), Box([0, 0, 0], [1, 1, 1])])

    def test_contains_point_any_box(self):
        r = region(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        assert r.contains_point([5.5, 5.5])
        assert r.contains_point([0.5, 0.5])
        assert not r.contains_point([3.0, 3.0])

    def test_open_containment(self):
        r = region(([0, 0], [1, 1]))
        assert not r.contains_point([0.0, 0.5], closed=False)

    def test_bounding_box(self):
        r = region(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        assert r.bounding_box() == Box([0, 0], [6, 6])


class TestAlgebra:
    def test_union(self):
        a = region(([0, 0], [1, 1]))
        b = region(([2, 2], [3, 3]))
        assert len(a.union(b)) == 2

    def test_intersect_box(self):
        r = region(([0, 0], [2, 2]), ([3, 3], [5, 5]))
        clipped = r.intersect_box(Box([1, 1], [4, 4]))
        assert clipped.contains_point([1.5, 1.5])
        assert clipped.contains_point([3.5, 3.5])
        assert not clipped.contains_point([0.5, 0.5])

    def test_intersect_distributes(self):
        # (r11 + r12) . (r21 + r22) from Section V.B.
        left = region(([0, 0], [2, 2]), ([4, 0], [6, 2]))
        right = region(([1, 1], [5, 3]))
        inter = left.intersect(right)
        assert inter.contains_point([1.5, 1.5])
        assert inter.contains_point([4.5, 1.5])
        assert not inter.contains_point([3.0, 1.5])  # Gap between pieces.

    def test_intersect_disjoint_is_empty(self):
        a = region(([0, 0], [1, 1]))
        b = region(([2, 2], [3, 3]))
        assert a.intersect(b).is_empty()

    def test_simplify_drops_contained(self):
        r = region(([0, 0], [4, 4]), ([1, 1], [2, 2]), ([0, 0], [4, 4]))
        simplified = r.simplify()
        assert len(simplified) == 1

    def test_simplify_keeps_partial_overlap(self):
        r = region(([0, 0], [2, 2]), ([1, 1], [3, 3]))
        assert len(r.simplify()) == 2


class TestMeasure:
    def test_disjoint_adds(self):
        r = region(([0, 0], [1, 1]), ([2, 2], [3, 3]))
        assert r.measure() == pytest.approx(2.0)

    def test_overlap_not_double_counted(self):
        r = region(([0, 0], [2, 2]), ([1, 1], [3, 3]))
        assert r.measure() == pytest.approx(7.0)

    def test_contained_box_ignored(self):
        r = region(([0, 0], [4, 4]), ([1, 1], [2, 2]))
        assert r.measure() == pytest.approx(16.0)

    def test_degenerate_measure_zero(self):
        r = region(([0, 0], [0, 5]))
        assert r.measure() == 0.0

    def test_three_dimensional(self):
        r = BoxRegion(
            [Box([0, 0, 0], [2, 2, 2]), Box([1, 1, 1], [3, 3, 3])]
        )
        assert r.measure() == pytest.approx(8 + 8 - 1)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(5)
        boxes = []
        for _ in range(6):
            lo = rng.uniform(0, 0.7, size=2)
            hi = lo + rng.uniform(0.05, 0.3, size=2)
            boxes.append(Box(lo, hi))
        r = BoxRegion(boxes)
        samples = rng.uniform(0, 1, size=(200_000, 2))
        hits = sum(r.contains_point(p) for p in samples[:4000])
        estimate = hits / 4000
        assert r.measure() == pytest.approx(estimate, abs=0.04)


class TestGeometryHelpers:
    def test_nearest_point(self):
        r = region(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        nearest = r.nearest_point_to([4.8, 4.8])
        assert nearest.tolist() == [5.0, 5.0]

    def test_nearest_point_empty(self):
        assert BoxRegion.empty(2).nearest_point_to([0, 0]) is None

    def test_corner_points_dedupe(self):
        r = region(([0, 0], [1, 1]), ([1, 1], [2, 2]))
        corners = r.corner_points()
        # 4 + 4 corners with (1,1) shared once.
        assert corners.shape == (7, 2)

    def test_sample_points_stay_inside(self):
        r = region(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        pts = r.sample_points(np.random.default_rng(0), 50)
        assert pts.shape == (50, 2)
        assert all(r.contains_point(p) for p in pts)

    def test_sample_from_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            BoxRegion.empty(2).sample_points(np.random.default_rng(0), 1)

    def test_sample_degenerate_boxes(self):
        r = region(([1, 1], [1, 1]))
        pts = r.sample_points(np.random.default_rng(0), 5)
        assert np.allclose(pts, [1.0, 1.0])


class TestDimZeroEdge:
    """Regression tests for the empty / dimension-unknown edge case.

    A ``BoxRegion`` built with no boxes and no explicit dimension has
    ``dim == 0`` ("not yet known"); combining used to fall through an
    ``or`` fallback that could silently mix dimensions.  The contract is
    now explicit: dim-0 *adopts* the other operand's dimension, while two
    known, different dimensions always raise — even when one side is
    empty.
    """

    def test_default_empty_has_dim_zero(self):
        r = BoxRegion()
        assert r.dim == 0
        assert r.is_empty()
        assert r.measure() == 0.0

    def test_dim_zero_union_adopts_dimension(self):
        unknown = BoxRegion()
        known = region(([0, 0], [1, 1]))
        for combined in (unknown.union(known), known.union(unknown)):
            assert combined.dim == 2
            assert len(combined) == 1
            assert combined.contains_point([0.5, 0.5])

    def test_dim_zero_intersect_adopts_dimension(self):
        unknown = BoxRegion()
        known = region(([0, 0], [1, 1]))
        for combined in (unknown.intersect(known), known.intersect(unknown)):
            assert combined.dim == 2
            assert combined.is_empty()

    def test_dim_zero_union_dim_zero_stays_unknown(self):
        combined = BoxRegion().union(BoxRegion())
        assert combined.dim == 0
        assert combined.is_empty()

    def test_known_empty_dims_still_clash(self):
        """The fix must not loosen the check: two *known* dimensions
        refuse to combine even when both regions are empty."""
        with pytest.raises(DimensionMismatchError):
            BoxRegion.empty(2).union(BoxRegion.empty(3))
        with pytest.raises(DimensionMismatchError):
            BoxRegion.empty(2).intersect(BoxRegion.empty(3))

    def test_known_empty_vs_nonempty_clash(self):
        known3 = BoxRegion([Box([0, 0, 0], [1, 1, 1])])
        with pytest.raises(DimensionMismatchError):
            BoxRegion.empty(2).union(known3)
        with pytest.raises(DimensionMismatchError):
            known3.intersect(BoxRegion.empty(2))
