"""Tests for the query-space transform, orthants, and window boxes."""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.geometry.transform import (
    orthant_of,
    orthants_of,
    to_query_space,
    window_box,
)


class TestToQuerySpace:
    def test_single_point(self):
        out = to_query_space(np.array([3.0, 10.0]), [5.0, 7.0])
        assert out.tolist() == [2.0, 3.0]

    def test_matrix(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        out = to_query_space(pts, [5.0, 5.0])
        assert out.tolist() == [[5.0, 5.0], [5.0, 5.0]]

    def test_origin_maps_to_zero(self):
        assert to_query_space(np.array([2.0, 2.0]), [2.0, 2.0]).tolist() == [0.0, 0.0]

    def test_reflection_invariance(self):
        # |c - p| is invariant to mirroring p through c.
        c = np.array([1.0, 2.0])
        p = np.array([4.0, -1.0])
        mirrored = 2 * c - p
        assert np.allclose(to_query_space(p, c), to_query_space(mirrored, c))


class TestOrthants:
    def test_2d_quadrants(self):
        origin = [0.0, 0.0]
        assert orthant_of([1.0, 1.0], origin) == 3
        assert orthant_of([-1.0, 1.0], origin) == 2
        assert orthant_of([1.0, -1.0], origin) == 1
        assert orthant_of([-1.0, -1.0], origin) == 0

    def test_boundary_goes_up(self):
        assert orthant_of([0.0, -1.0], [0.0, 0.0]) == 1

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1, 1, size=(50, 3))
        origin = [0.1, -0.2, 0.0]
        vec = orthants_of(pts, origin)
        for i, p in enumerate(pts):
            assert vec[i] == orthant_of(p, origin)

    def test_range(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1, 1, size=(100, 2))
        orth = orthants_of(pts, [0.0, 0.0])
        assert orth.min() >= 0 and orth.max() <= 3


class TestWindowBox:
    def test_paper_window(self):
        # Window of c2=pt2 w.r.t. q (Fig. 4(a)).
        box = window_box([7.5, 42.0], [8.5, 55.0])
        assert box == Box([6.5, 29.0], [8.5, 55.0])

    def test_query_on_corner(self):
        box = window_box([2.0, 2.0], [3.0, 5.0])
        assert box.contains_point([3.0, 5.0])
        mirrored = [1.0, -1.0]
        assert box.contains_point(mirrored)

    def test_degenerate_when_center_equals_query(self):
        box = window_box([1.0, 1.0], [1.0, 1.0])
        assert box.is_degenerate()
        assert box.volume() == 0.0

    def test_symmetric_around_center(self):
        box = window_box([5.0, 5.0], [7.0, 2.0])
        assert np.allclose(box.center, [5.0, 5.0])
