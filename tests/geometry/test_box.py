"""Tests for the Box primitive."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.box import Box


class TestConstruction:
    def test_basic(self):
        box = Box([0, 0], [2, 3])
        assert box.dim == 2
        assert box.volume() == 6.0
        assert box.margin() == 5.0

    def test_rejects_inverted(self):
        with pytest.raises(InvalidParameterError):
            Box([1.0, 0.0], [0.0, 1.0])

    def test_degenerate_allowed(self):
        box = Box([1, 1], [1, 2])
        assert box.is_degenerate()
        assert box.volume() == 0.0

    def test_from_center(self):
        box = Box.from_center([5, 5], [1, 2])
        assert box.lo.tolist() == [4.0, 3.0]
        assert box.hi.tolist() == [6.0, 7.0]

    def test_from_center_rejects_negative_extent(self):
        with pytest.raises(InvalidParameterError):
            Box.from_center([0, 0], [-1, 1])

    def test_from_points_any_order(self):
        box = Box.from_points([3, 0], [1, 2])
        assert box.lo.tolist() == [1.0, 0.0]
        assert box.hi.tolist() == [3.0, 2.0]

    def test_immutable_arrays(self):
        box = Box([0, 0], [1, 1])
        with pytest.raises(ValueError):
            box.lo[0] = 5.0


class TestContainment:
    def test_closed_contains_boundary(self):
        box = Box([0, 0], [1, 1])
        assert box.contains_point([0.0, 1.0])
        assert box.contains_point([0.5, 0.5])
        assert not box.contains_point([1.0001, 0.5])

    def test_open_excludes_boundary(self):
        box = Box([0, 0], [1, 1])
        assert not box.contains_point([0.0, 0.5], closed=False)
        assert box.contains_point([0.5, 0.5], closed=False)

    def test_contains_box(self):
        outer = Box([0, 0], [4, 4])
        inner = Box([1, 1], [2, 2])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)


class TestIntersection:
    def test_overlap(self):
        a = Box([0, 0], [2, 2])
        b = Box([1, 1], [3, 3])
        inter = a.intersect(b)
        assert inter == Box([1, 1], [2, 2])

    def test_touching_gives_degenerate(self):
        a = Box([0, 0], [1, 1])
        b = Box([1, 0], [2, 1])
        inter = a.intersect(b)
        assert inter is not None
        assert inter.is_degenerate()

    def test_disjoint_gives_none(self):
        a = Box([0, 0], [1, 1])
        b = Box([2, 2], [3, 3])
        assert a.intersect(b) is None
        assert not a.intersects(b)

    def test_overlap_volume(self):
        a = Box([0, 0], [2, 2])
        b = Box([1, 1], [3, 3])
        assert a.overlap_volume(b) == 1.0
        assert a.overlap_volume(Box([5, 5], [6, 6])) == 0.0

    def test_union_bound(self):
        a = Box([0, 0], [1, 1])
        b = Box([2, 2], [3, 3])
        assert a.union_bound(b) == Box([0, 0], [3, 3])

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Box([0, 0], [1, 1]).intersect(Box([0, 0, 0], [1, 1, 1]))


class TestGeometryHelpers:
    def test_nearest_point_inside(self):
        box = Box([0, 0], [2, 2])
        assert box.nearest_point_to([1, 1]).tolist() == [1.0, 1.0]

    def test_nearest_point_clamps(self):
        box = Box([0, 0], [2, 2])
        assert box.nearest_point_to([5, -1]).tolist() == [2.0, 0.0]

    def test_min_l1_distance(self):
        box = Box([0, 0], [2, 2])
        assert box.min_l1_distance([3, 3]) == 2.0
        assert box.min_l1_distance([1, 1]) == 0.0

    def test_corners_count_and_membership(self):
        box = Box([0, 0, 0], [1, 2, 3])
        corners = box.corners()
        assert corners.shape == (8, 3)
        for corner in corners:
            assert box.contains_point(corner)

    def test_corners_2d_exact(self):
        corners = Box([0, 0], [1, 2]).corners()
        expected = {(0, 0), (0, 2), (1, 0), (1, 2)}
        assert {tuple(c) for c in corners.tolist()} == expected

    def test_sample_points_inside(self):
        box = Box([1, 2], [3, 5])
        pts = box.sample_points(np.random.default_rng(0), 64)
        assert pts.shape == (64, 2)
        assert all(box.contains_point(p) for p in pts)


class TestDunder:
    def test_equality_and_hash(self):
        a = Box([0, 0], [1, 1])
        b = Box([0, 0], [1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box([0, 0], [2, 1])

    def test_approx_equals(self):
        a = Box([0, 0], [1, 1])
        b = Box([0, 1e-12], [1, 1])
        assert a.approx_equals(b)
        assert not a.approx_equals(Box([0, 0.1], [1, 1]))

    def test_iter_unpacks(self):
        lo, hi = Box([0, 0], [1, 1])
        assert lo.tolist() == [0.0, 0.0]
        assert hi.tolist() == [1.0, 1.0]

    def test_repr_readable(self):
        assert "Box" in repr(Box([0, 0], [1, 1]))
