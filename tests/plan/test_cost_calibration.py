"""Measured calibration of the cost model's dispatch constants."""

import pytest

import repro.plan.cost as cost
from repro.plan.cost import CostModel, DatasetStats, measured_shard_dispatch_s


def make_stats(**kwargs):
    defaults = dict(
        n=1_000,
        m=1_000,
        d=2,
        backend="scan",
        epoch=0,
        kernels_enabled=True,
        cpus=1,
    )
    defaults.update(kwargs)
    return DatasetStats(**defaults)


class TestMeasuredShardDispatch:
    def test_probe_returns_positive_seconds(self):
        value = measured_shard_dispatch_s()
        assert value >= 1e-5
        assert value < 10.0  # sanity: dispatch is not tens of seconds

    def test_memoized_per_process(self, monkeypatch):
        first = measured_shard_dispatch_s()
        # Poison the pool machinery: a second call must not touch it.
        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures,
            "ProcessPoolExecutor",
            None,
        )
        assert measured_shard_dispatch_s() == first

    def test_refresh_resamples(self, monkeypatch):
        measured_shard_dispatch_s()
        monkeypatch.setattr(cost, "_MEASURED_SHARD_DISPATCH", 123.0)
        assert measured_shard_dispatch_s() == 123.0
        assert measured_shard_dispatch_s(refresh=True) != 123.0

    def test_failure_falls_back_to_calibrated_constant(self, monkeypatch):
        monkeypatch.setattr(cost, "_MEASURED_SHARD_DISPATCH", None)
        import multiprocessing

        def boom(*args, **kwargs):
            raise RuntimeError("no multiprocessing here")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        assert measured_shard_dispatch_s() == CostModel.SHARD_DISPATCH_S
        monkeypatch.setattr(cost, "_MEASURED_SHARD_DISPATCH", None)

    def test_process_backend_uses_measured_probe(self, monkeypatch):
        monkeypatch.setattr(cost, "_MEASURED_SHARD_DISPATCH", 0.123)
        model = CostModel()
        proc = make_stats(shards=2, shard_backend="process")
        serial = make_stats(shards=2, shard_backend="serial")
        assert model.shard_task_seconds(proc) == 0.123
        assert model.shard_task_seconds(serial) == (
            model.SERIAL_SHARD_DISPATCH_S
        )


class TestPrunedCostTerms:
    def test_classify_term_scales_with_pair_count(self):
        model = CostModel()
        small = make_stats(n=1_000, m=1_000, prune="auto")
        large = make_stats(n=100_000, m=100_000, prune="auto")
        assert model.prune_classify_seconds(
            1_000, small
        ) < model.prune_classify_seconds(100_000, large)

    def test_full_refine_rate_never_beats_plain_kernel(self):
        # refine_rate=1.0 means classification buys nothing: the pruned
        # estimate must be strictly worse so auto declines.
        model = CostModel()
        for rows in (10, 1_000, 100_000):
            stats = make_stats(
                n=50_000, m=50_000, prune="auto", prune_refine_rate=1.0
            )
            assert model.pruned_kernel_seconds(
                rows, stats
            ) > model.kernel_seconds(rows, stats)

    def test_low_refine_rate_wins_at_scale(self):
        model = CostModel()
        stats = make_stats(
            n=50_000, m=50_000, prune="auto", prune_refine_rate=0.02
        )
        rows = 10_000
        assert model.pruned_kernel_seconds(
            rows, stats
        ) < model.kernel_seconds(rows, stats)

    def test_refine_rate_clamped(self):
        model = CostModel()
        stats = make_stats(prune="auto", prune_refine_rate=7.5)
        capped = make_stats(prune="auto", prune_refine_rate=1.0)
        assert model.pruned_kernel_seconds(
            1_000, stats
        ) == pytest.approx(model.pruned_kernel_seconds(1_000, capped))
