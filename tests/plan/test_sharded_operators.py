"""Planner integration of the sharded physical operators.

Fixed mode dispatches to the sharded arms whenever the user opted in
(``shards > 1``); auto mode treats fan-out as one more candidate and
must never lose meaningfully to the best fixed arm — on tiny inputs or
a single CPU it declines to fan out.
"""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.plan.cost import CostModel, DatasetStats
from repro.plan.logical import (
    BatchWhyNotQuery,
    MembershipMaskQuery,
    RetainedMaskQuery,
    RSLQuery,
    SafeRegionQuery,
)
from repro.plan.planner import Planner

SHARDED_NAMES = {
    "rsl-sharded-kernel",
    "membership-sharded",
    "retained-sharded",
    "sr-sharded-fold",
    "batch-sharded",
}

LOGICALS = (
    RSLQuery(),
    MembershipMaskQuery(count=8),
    RetainedMaskQuery(),
    SafeRegionQuery(),
    BatchWhyNotQuery(count=8),
)


def make_stats(n=1_000, m=1_000, cpus=1, shards=1, shard_backend="process"):
    return DatasetStats(
        n=n,
        m=m,
        d=2,
        backend="scan",
        epoch=0,
        kernels_enabled=True,
        cpus=cpus,
        shards=shards,
        shard_backend=shard_backend,
    )


class TestFixedMode:
    def test_shards_opt_in_picks_sharded_operators(self):
        planner = Planner(WhyNotConfig(planner="fixed", shards=4))
        stats = make_stats(shards=4)
        expected = {
            "reverse_skyline": "rsl-sharded-kernel",
            "membership": "membership-sharded",
            "retained_mask": "retained-sharded",
            "safe_region": "sr-sharded-fold",
            "batch": "batch-sharded",
        }
        for logical in LOGICALS:
            chosen = planner.choose(logical, stats)
            assert chosen.name == expected[logical.surface]

    def test_single_shard_keeps_historical_dispatch(self):
        planner = Planner(WhyNotConfig(planner="fixed", shards=1))
        stats = make_stats(shards=1)
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name not in SHARDED_NAMES

    def test_float32_safe_region_falls_back(self):
        planner = Planner(
            WhyNotConfig(planner="fixed", shards=4, shard_dtype="float32")
        )
        chosen = planner.choose(SafeRegionQuery(), make_stats(shards=4))
        assert chosen.name == "sr-cached-fold"

    def test_box_budget_safe_region_falls_back(self):
        planner = Planner(
            WhyNotConfig(planner="fixed", shards=4, sr_box_budget=32)
        )
        chosen = planner.choose(SafeRegionQuery(), make_stats(shards=4))
        assert chosen.name == "sr-cached-fold"


class TestAutoMode:
    def test_declines_fanout_on_one_cpu(self):
        planner = Planner(WhyNotConfig(planner="auto", shards=4))
        stats = make_stats(n=2_000, m=2_000, cpus=1, shards=4)
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name not in SHARDED_NAMES

    def test_declines_fanout_on_tiny_inputs(self):
        planner = Planner(WhyNotConfig(planner="auto", shards=4))
        stats = make_stats(n=50, m=50, cpus=8, shards=4)
        for logical in (RSLQuery(), MembershipMaskQuery(count=4)):
            assert planner.choose(logical, stats).name not in SHARDED_NAMES

    def test_fans_out_on_large_inputs_with_many_cpus(self):
        planner = Planner(WhyNotConfig(planner="auto", shards=8))
        stats = make_stats(n=2_000_000, m=2_000_000, cpus=8, shards=8)
        chosen = planner.choose(RSLQuery(), stats)
        assert chosen.name == "rsl-sharded-kernel"

    @pytest.mark.parametrize(
        "stats",
        [
            make_stats(n=100, m=100, cpus=1, shards=2),
            make_stats(n=10_000, m=10_000, cpus=4, shards=4),
            make_stats(n=1_000_000, m=1_000_000, cpus=8, shards=8),
        ],
        ids=["tiny-1cpu", "mid-4cpu", "large-8cpu"],
    )
    def test_auto_never_loses_to_best_fixed_arm(self, stats):
        """The acceptance criterion: auto's estimated cost is within 5%
        of the best candidate under the same cost model."""
        planner = Planner(WhyNotConfig(planner="auto", shards=stats.shards))
        model = CostModel()
        for logical in LOGICALS:
            chosen = planner.choose(logical, stats)
            best = min(
                op.estimate(logical, stats, model).seconds
                for op in planner.candidates(logical, stats)
            )
            got = chosen.estimate(logical, stats, model).seconds
            assert got <= best * 1.05


class TestCostModel:
    def test_serial_backend_has_no_parallel_speedup(self):
        # Large enough that the kernel work dwarfs dispatch overhead —
        # there the serial backend (1 worker) must cost more than the
        # process pool (8 workers).
        model = CostModel()
        proc = make_stats(
            n=100_000, cpus=8, shards=8, shard_backend="process"
        )
        serial = make_stats(
            n=100_000, cpus=8, shards=8, shard_backend="serial"
        )
        assert model.shard_workers(proc) == 8
        assert model.shard_workers(serial) == 1
        assert model.sharded_kernel_seconds(
            100_000, serial
        ) > model.sharded_kernel_seconds(100_000, proc)

    def test_workers_capped_by_cpus(self):
        model = CostModel()
        assert model.shard_workers(make_stats(cpus=2, shards=8)) == 2

    def test_fanout_cost_grows_with_shards(self):
        model = CostModel()
        few = make_stats(cpus=8, shards=2)
        many = make_stats(cpus=8, shards=16)
        assert model.fanout_seconds(many) > model.fanout_seconds(few)


class TestEngineWiring:
    def test_prepare_batch_shows_sharded_tree(self):
        points = np.random.default_rng(3).random((60, 2))
        engine = WhyNotEngine(
            points,
            config=WhyNotConfig(
                planner="fixed", shards=2, shard_backend="serial"
            ),
        )
        prepared = engine.prepare(
            "batch", [np.array([0.2, 0.3]), np.array([0.6, 0.7])],
            np.array([0.5, 0.5]),
        )
        assert prepared.node.operator.name == "batch-sharded"
        child_ops = {c.operator.name for c in prepared.node.children}
        assert "sr-sharded-fold" in child_ops
        assert "membership-sharded" in child_ops

    def test_explain_plan_reports_sharded_operator(self):
        points = np.random.default_rng(4).random((50, 2))
        engine = WhyNotEngine(
            points,
            config=WhyNotConfig(
                planner="fixed", shards=3, shard_backend="serial"
            ),
        )
        report = engine.explain_plan("reverse_skyline", np.array([0.5, 0.5]))
        assert report.root.operator.name == "rsl-sharded-kernel"

    def test_auto_on_small_input_leaves_shard_counters_zero(self):
        points = np.random.default_rng(5).random((50, 2))
        engine = WhyNotEngine(
            points, config=WhyNotConfig(planner="auto", shards=2)
        )
        engine.reverse_skyline(np.array([0.5, 0.5]))
        engine.safe_region(np.array([0.5, 0.5]))
        snap = engine.shard_stats.snapshot()
        assert snap["fanouts"] == 0
        assert snap["dispatched"] == 0

    def test_mutation_rebuilds_executor_for_new_epoch(self):
        points = np.random.default_rng(6).random((40, 2))
        engine = WhyNotEngine(
            points,
            config=WhyNotConfig(
                planner="fixed", shards=2, shard_backend="serial"
            ),
        )
        q = np.array([0.5, 0.5])
        engine.reverse_skyline(q)
        assert set(engine._shard_executors) == {engine.dataset_epoch}
        engine.insert_products(np.array([[0.25, 0.75]]))
        # The commit hook closes the stale executor eagerly.
        assert engine._shard_executors == {}
        # The next sharded dispatch rebuilds one for the new epoch
        # (membership is never answered from a cross-epoch cache).
        engine.membership_mask(list(range(5)), q)
        assert set(engine._shard_executors) == {engine.dataset_epoch}


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shards": -2},
            {"shard_backend": "thread"},
            {"shard_partition": "zorder"},
            {"shard_dtype": "float16"},
        ],
    )
    def test_rejects_bad_shard_settings(self, kwargs):
        with pytest.raises(ValueError):
            WhyNotConfig(**kwargs)

    def test_accepts_valid_shard_settings(self):
        config = WhyNotConfig(
            shards=4,
            shard_backend="serial",
            shard_partition="grid",
            shard_dtype="float32",
        )
        assert config.shards == 4
