"""The per-epoch prepared-plan pool used by the serving layer."""

from __future__ import annotations

import numpy as np

from repro import WhyNotEngine
from repro.plan import PlanPool


def _engine() -> WhyNotEngine:
    rng = np.random.default_rng(5)
    return WhyNotEngine(rng.random((40, 2)), customers=rng.random((25, 2)))


def test_pool_hits_on_repeated_request():
    engine = _engine()
    pool = PlanPool(engine)
    q = np.array([0.4, 0.5])
    first = pool.prepare("safe_region", q, approximate=False, k=10)
    assert len(pool) == 1
    again = pool.prepare("safe_region", q, approximate=False, k=10)
    assert int(pool.hits.value) == 1
    assert int(pool.misses.value) == 1
    assert again.node is first.node  # the pooled tree, re-bound


def test_pooled_plan_results_match_engine():
    engine = _engine()
    pool = PlanPool(engine)
    q = np.array([0.4, 0.5])
    direct = engine.reverse_skyline(q)
    pool.prepare("reverse_skyline", q)  # prime the pool
    pooled = pool.prepare("reverse_skyline", q).execute()
    np.testing.assert_array_equal(pooled, direct)


def test_prune_stale_drops_dead_epoch():
    engine = _engine()
    pool = PlanPool(engine)
    q = np.array([0.4, 0.5])
    pool.prepare("reverse_skyline", q)
    engine.insert_products([[0.9, 0.9]])
    assert pool.prune_stale() == 1
    assert len(pool) == 0
    assert int(pool.pruned.value) == 1
    # A fresh request at the new epoch misses and repopulates.
    pool.prepare("reverse_skyline", q)
    assert len(pool) == 1
    assert pool.prune_stale() == 0


def test_clear_counts_dropped_entries():
    engine = _engine()
    pool = PlanPool(engine)
    q = np.array([0.2, 0.7])
    pool.prepare("reverse_skyline", q)
    pool.prepare("safe_region", q, approximate=False, k=10)
    assert pool.clear() == 2
    assert len(pool) == 0
    assert int(pool.pruned.value) == 2
