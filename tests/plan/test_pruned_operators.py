"""Planner integration of the filter-refinement (pruned) operators.

Fixed mode dispatches to the pruned arms whenever the user forces them
(``prune="always"`` at ``shards == 1``); auto mode treats pruning as
one more candidate whose kernel term is scaled by the tile-summary
selectivity probe, so it declines when the predicted refine rate says
classification cannot pay for itself.
"""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.plan.cache import config_fingerprint
from repro.plan.cost import CostModel, DatasetStats
from repro.plan.logical import (
    BatchWhyNotQuery,
    MembershipMaskQuery,
    RSLQuery,
)
from repro.plan.planner import Planner

PRUNED_NAMES = {"rsl-pruned-kernel", "membership-pruned", "batch-pruned"}

LOGICALS = (RSLQuery(), MembershipMaskQuery(count=8), BatchWhyNotQuery(count=8))


def make_stats(n=10_000, m=10_000, prune="off", refine_rate=1.0, **kwargs):
    return DatasetStats(
        n=n,
        m=m,
        d=2,
        backend="scan",
        epoch=0,
        kernels_enabled=True,
        cpus=1,
        prune=prune,
        prune_tile_size=512,
        prune_refine_rate=refine_rate,
        **kwargs,
    )


class TestFixedMode:
    def test_always_picks_pruned_operators(self):
        planner = Planner(WhyNotConfig(planner="fixed", prune="always"))
        stats = make_stats(prune="always")
        expected = {
            "reverse_skyline": "rsl-pruned-kernel",
            "membership": "membership-pruned",
            "batch": "batch-pruned",
        }
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name == (
                expected[logical.surface]
            )

    def test_prune_off_keeps_historical_dispatch(self):
        planner = Planner(WhyNotConfig(planner="fixed", prune="off"))
        stats = make_stats(prune="off")
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name not in PRUNED_NAMES

    def test_auto_prune_config_keeps_fixed_dispatch_unpruned(self):
        # prune="auto" under a fixed planner: pruning is a cost-based
        # decision, so fixed mode keeps the historical operators.
        planner = Planner(WhyNotConfig(planner="fixed", prune="auto"))
        stats = make_stats(prune="auto")
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name not in PRUNED_NAMES

    def test_sharding_outranks_pruning_in_fixed_mode(self):
        planner = Planner(
            WhyNotConfig(
                planner="fixed",
                prune="always",
                shards=2,
                shard_backend="serial",
            )
        )
        stats = make_stats(prune="always", shards=2, shard_backend="serial")
        assert planner.choose(RSLQuery(), stats).name == "rsl-sharded-kernel"


class TestAutoMode:
    def test_declines_pruning_at_full_refine_rate(self):
        planner = Planner(WhyNotConfig(planner="auto", prune="auto"))
        stats = make_stats(prune="auto", refine_rate=1.0)
        for logical in LOGICALS:
            assert planner.choose(logical, stats).name not in PRUNED_NAMES

    def test_prunes_at_low_refine_rate(self):
        planner = Planner(WhyNotConfig(planner="auto", prune="auto"))
        stats = make_stats(
            n=50_000, m=50_000, prune="auto", refine_rate=0.02
        )
        chosen = planner.choose(MembershipMaskQuery(count=512), stats)
        assert chosen.name == "membership-pruned"

    @pytest.mark.parametrize("refine_rate", [0.0, 0.05, 0.5, 1.0])
    def test_auto_never_loses_to_best_fixed_arm(self, refine_rate):
        planner = Planner(WhyNotConfig(planner="auto", prune="auto"))
        stats = make_stats(prune="auto", refine_rate=refine_rate)
        model = CostModel()
        for logical in LOGICALS:
            chosen = planner.choose(logical, stats)
            best = min(
                op.estimate(logical, stats, model).seconds
                for op in planner.candidates(logical, stats)
            )
            got = chosen.estimate(logical, stats, model).seconds
            assert got <= best * 1.05

    def test_pruned_estimate_scales_with_refine_rate(self):
        model = CostModel()
        logical = MembershipMaskQuery(count=512)
        from repro.plan.operators import MembershipPruned

        op = MembershipPruned()
        cheap = op.estimate(
            logical, make_stats(prune="auto", refine_rate=0.01), model
        )
        dear = op.estimate(
            logical, make_stats(prune="auto", refine_rate=1.0), model
        )
        assert cheap.seconds < dear.seconds


class TestPlanCacheKeys:
    def test_fingerprint_differs_across_prune_values(self):
        fps = {
            config_fingerprint(WhyNotConfig(prune=mode))
            for mode in ("off", "auto", "always")
        }
        assert len(fps) == 3

    def test_fingerprint_differs_across_tile_sizes(self):
        assert config_fingerprint(
            WhyNotConfig(prune_tile_size=128)
        ) != config_fingerprint(WhyNotConfig(prune_tile_size=256))


class TestEngineWiring:
    def test_explain_plan_reports_pruned_operator(self):
        points = np.random.default_rng(0).random((60, 2))
        engine = WhyNotEngine(
            points,
            backend="scan",
            config=WhyNotConfig(planner="fixed", prune="always"),
        )
        report = engine.explain_plan("reverse_skyline", np.array([0.5, 0.5]))
        assert report.root.operator.name == "rsl-pruned-kernel"

    def test_prune_off_builds_no_summaries(self):
        points = np.random.default_rng(1).random((30, 2))
        engine = WhyNotEngine(
            points, backend="scan", config=WhyNotConfig(prune="off")
        )
        assert engine.prune_summaries is None

    def test_default_config_builds_summaries(self):
        points = np.random.default_rng(2).random((30, 2))
        engine = WhyNotEngine(points, backend="scan")
        assert engine.config.prune == "auto"
        assert engine.prune_summaries is not None
        assert engine.prune_summaries.tile_size == engine.prune_tile_size

    def test_dataset_stats_sample_the_selectivity_probe(self):
        rng = np.random.default_rng(3)
        products = np.vstack(
            [
                rng.uniform(0.0, 0.05, size=(32, 2)),
                rng.uniform(0.95, 1.0, size=(32, 2)),
            ]
        )
        customers = rng.uniform(0.45, 0.55, size=(64, 2))
        engine = WhyNotEngine(
            products,
            customers,
            backend="scan",
            config=WhyNotConfig(prune="auto", prune_tile_size=8),
        )
        stats = DatasetStats.of(engine)
        assert stats.prune == "auto"
        assert stats.prune_tile_size == 8
        assert stats.prune_refine_rate < 0.5

    def test_prune_off_stats_pin_refine_rate_to_one(self):
        points = np.random.default_rng(4).random((30, 2))
        engine = WhyNotEngine(
            points, backend="scan", config=WhyNotConfig(prune="off")
        )
        stats = DatasetStats.of(engine)
        assert stats.prune_refine_rate == 1.0
