"""Planner operator selection: fixed mode reproduces the historical
dispatch, auto mode picks the cheapest estimate, and capability gating
removes operators the config cannot run."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.plan.cost import CostModel, DatasetStats
from repro.plan.logical import (
    BatchWhyNotQuery,
    MembershipMaskQuery,
    RetainedMaskQuery,
    RSLQuery,
    SafeRegionQuery,
)
from repro.plan.planner import Planner


def make_stats(n=1_000, m=1_000, kernels=True, dsl_warm=0):
    return DatasetStats(
        n=n,
        m=m,
        d=2,
        backend="scan",
        epoch=0,
        dsl_warm=dsl_warm,
        kernels_enabled=kernels,
    )


class TestFixedMode:
    """fixed must pick exactly what the pre-planner engine dispatched to."""

    def test_kernel_config_picks_kernel_operators(self):
        planner = Planner(WhyNotConfig(planner="fixed", batch_kernels=True))
        stats = make_stats(kernels=True)
        assert planner.choose(RSLQuery(), stats).name == "rsl-kernel-verify"
        assert (
            planner.choose(MembershipMaskQuery(count=5), stats).name
            == "membership-kernel"
        )
        assert planner.choose(RetainedMaskQuery(), stats).name == "retained-kernel"
        assert (
            planner.choose(BatchWhyNotQuery(count=5), stats).name
            == "batch-prefilter"
        )

    def test_no_kernel_config_picks_index_operators(self):
        planner = Planner(WhyNotConfig(planner="fixed", batch_kernels=False))
        stats = make_stats(kernels=False)
        assert planner.choose(RSLQuery(), stats).name == "rsl-index-verify"
        assert (
            planner.choose(MembershipMaskQuery(count=5), stats).name
            == "membership-index-loop"
        )
        assert (
            planner.choose(RetainedMaskQuery(), stats).name
            == "retained-index-loop"
        )
        assert (
            planner.choose(BatchWhyNotQuery(count=5), stats).name
            == "batch-sequential"
        )

    def test_dsl_cache_config_selects_safe_region_fold(self):
        stats = make_stats()
        cached = Planner(WhyNotConfig(planner="fixed", dsl_cache=True))
        direct = Planner(WhyNotConfig(planner="fixed", dsl_cache=False))
        assert cached.choose(SafeRegionQuery(), stats).name == "sr-cached-fold"
        assert direct.choose(SafeRegionQuery(), stats).name == "sr-direct-fold"

    def test_approximate_safe_region_has_one_operator(self):
        planner = Planner(WhyNotConfig(planner="fixed"))
        chosen = planner.choose(
            SafeRegionQuery(approximate=True, k=10), make_stats()
        )
        assert chosen.name == "sr-approx-store"


class TestAutoMode:
    def test_picks_minimum_estimated_cost(self):
        planner = Planner(WhyNotConfig(planner="auto"))
        stats = make_stats()
        logical = MembershipMaskQuery(count=8)
        model = CostModel()
        chosen = planner.choose(logical, stats)
        best = min(
            planner.candidates(logical, stats),
            key=lambda op: op.estimate(logical, stats, model).seconds,
        )
        assert chosen.name == best.name

    def test_auto_is_deterministic(self):
        planner = Planner(WhyNotConfig(planner="auto"))
        stats = make_stats()
        names = {planner.choose(RSLQuery(), stats).name for _ in range(10)}
        assert len(names) == 1


class TestCapabilityGating:
    def test_kernel_operators_unavailable_without_batch_kernels(self):
        planner = Planner(WhyNotConfig(planner="auto", batch_kernels=False))
        stats = make_stats(kernels=False)
        for logical in (
            RSLQuery(),
            MembershipMaskQuery(count=5),
            RetainedMaskQuery(),
            BatchWhyNotQuery(count=5),
        ):
            names = {op.name for op in planner.candidates(logical, stats)}
            assert not any("kernel" in n or "prefilter" in n for n in names), (
                logical.surface,
                names,
            )

    def test_dsl_cache_gating(self):
        planner = Planner(WhyNotConfig(planner="auto", dsl_cache=False))
        names = {
            op.name
            for op in planner.candidates(SafeRegionQuery(), make_stats())
        }
        assert names == {"sr-direct-fold"}

    def test_unknown_surface_rejected(self):
        class Bogus(RSLQuery):
            surface = "bogus"

        planner = Planner(WhyNotConfig())
        with pytest.raises(ValueError):
            planner.candidates(Bogus(), make_stats())


class TestPlanTrees:
    def test_safe_region_plan_nests_rsl_child(self):
        planner = Planner(WhyNotConfig())
        node = planner.plan(SafeRegionQuery(), make_stats())
        assert node.logical.surface == "safe_region"
        assert [c.logical.surface for c in node.children] == ["reverse_skyline"]
        assert node.estimate.seconds >= 0

    def test_batch_prefilter_plan_has_two_children(self):
        planner = Planner(WhyNotConfig(planner="fixed", batch_kernels=True))
        node = planner.plan(BatchWhyNotQuery(count=7), make_stats())
        assert node.operator.name == "batch-prefilter"
        surfaces = [c.logical.surface for c in node.children]
        assert surfaces == ["safe_region", "membership"]

    def test_batch_sequential_plan_drops_prefilter_child(self):
        planner = Planner(WhyNotConfig(planner="fixed", batch_kernels=False))
        node = planner.plan(
            BatchWhyNotQuery(count=7), make_stats(kernels=False)
        )
        assert node.operator.name == "batch-sequential"
        surfaces = [c.logical.surface for c in node.children]
        assert surfaces == ["safe_region"]


class TestEngineWiring:
    def test_engine_planner_mode_from_config(self):
        points = np.random.default_rng(0).random((40, 2))
        auto = WhyNotEngine(points)
        fixed = WhyNotEngine(points, config=WhyNotConfig(planner="fixed"))
        assert auto.planner.config.planner == "auto"
        assert fixed.planner.config.planner == "fixed"

    def test_last_plan_tracks_surface_calls(self):
        points = np.random.default_rng(1).random((40, 2))
        engine = WhyNotEngine(points)
        q = np.array([0.5, 0.5])
        engine.reverse_skyline(q)
        assert engine.last_plan.logical.surface == "reverse_skyline"
        engine.safe_region(q)
        assert engine.last_plan.logical.surface == "safe_region"

    def test_dataset_stats_snapshot(self):
        points = np.random.default_rng(2).random((30, 2))
        engine = WhyNotEngine(points, backend="grid")
        stats = engine.dataset_stats()
        assert stats.n == 30 and stats.m == 30 and stats.d == 2
        assert stats.backend == "grid"
        assert stats.epoch == engine.dataset_epoch
