"""Prepared plans are epoch-pinned: a mutation between planning and
execution raises StaleSessionError — never a mixed-epoch answer."""

import numpy as np
import pytest

from repro.core.engine import WhyNotEngine
from repro.exceptions import InvalidParameterError, StaleSessionError


@pytest.fixture
def engine():
    points = np.random.default_rng(11).random((40, 2))
    return WhyNotEngine(points)


Q = np.array([0.5, 0.5])


class TestStaleness:
    def test_execute_after_mutation_raises(self, engine):
        prepared = engine.prepare("reverse_skyline", Q)
        engine.insert_products(np.array([[0.25, 0.75]]))
        assert prepared.stale
        with pytest.raises(StaleSessionError) as excinfo:
            prepared.execute()
        assert excinfo.value.pinned_epoch == 0
        assert excinfo.value.current_epoch == 1

    def test_every_surface_is_pinned(self, engine):
        surfaces = [
            ("reverse_skyline", (Q,), {}),
            ("membership", ([1, 2], Q), {}),
            ("explain", (1, Q), {}),
            ("mwp", (1, Q), {}),
            ("mqp", (1, Q), {}),
            ("safe_region", (Q,), {}),
            ("safe_region", (Q,), {"approximate": True, "k": 4}),
            ("mwq", (1, Q), {}),
            ("batch", ([1, 2], Q), {}),
        ]
        prepared = [
            engine.prepare(surface, *args, **kwargs)
            for surface, args, kwargs in surfaces
        ]
        engine.update_products([0], np.array([[0.9, 0.9]]))
        for plan in prepared:
            with pytest.raises(StaleSessionError):
                plan.execute()

    def test_replan_recovers(self, engine):
        prepared = engine.prepare("reverse_skyline", Q)
        before = prepared.execute()
        engine.insert_products(np.array([[0.25, 0.75]]))
        replanned = prepared.replan()
        assert not replanned.stale
        after = replanned.execute()
        assert after.dtype == before.dtype
        # The replanned answer reflects the mutated dataset.
        assert np.array_equal(after, engine.reverse_skyline(Q))

    def test_fresh_plan_executes_repeatedly(self, engine):
        prepared = engine.prepare("safe_region", Q)
        first = prepared.execute()
        second = prepared.execute()
        assert np.array_equal(first.region.lo, second.region.lo)
        assert np.array_equal(first.region.hi, second.region.hi)

    def test_results_match_direct_surface_calls(self, engine):
        prepared = engine.prepare("reverse_skyline", Q)
        assert np.array_equal(prepared.execute(), engine.reverse_skyline(Q))


class TestSessionPlannerSurface:
    def test_session_prepare_checks_epoch_first(self, engine):
        session = engine.session()
        engine.insert_products(np.array([[0.1, 0.1]]))
        with pytest.raises(StaleSessionError):
            session.prepare("reverse_skyline", Q)
        with pytest.raises(StaleSessionError):
            session.explain_plan("reverse_skyline", Q)
        session.refresh()
        session.prepare("reverse_skyline", Q).execute()

    def test_session_explain_plan_delegates(self, engine):
        report = engine.session().explain_plan("reverse_skyline", Q)
        assert report.surface == "reverse_skyline"
        report.validate()


class TestRequestValidation:
    def test_unknown_surface(self, engine):
        with pytest.raises(InvalidParameterError, match="unknown surface"):
            engine.prepare("bogus", Q)

    def test_unknown_kwargs(self, engine):
        with pytest.raises(InvalidParameterError, match="unknown arguments"):
            engine.prepare("reverse_skyline", Q, wrong=1)
