"""Plan-cache behaviour: the counter balance invariant, reuse across
query points of the same shape, and eviction on store mutation."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.plan.cache import PlanCache, config_fingerprint


@pytest.fixture
def engine():
    points = np.random.default_rng(7).random((50, 2))
    return WhyNotEngine(points)


def assert_balanced(cache):
    assert cache.considered.value == cache.hits.value + cache.misses.value


class TestCounterInvariant:
    def test_balanced_after_mixed_workload(self, engine):
        rng = np.random.default_rng(8)
        for _ in range(6):
            q = rng.random(2)
            engine.reverse_skyline(q)
            engine.safe_region(q)
            engine.modify_both(3, q)
        assert_balanced(engine.plan_cache)
        assert engine.plan_cache.hits.value > 0
        assert engine.plan_cache.misses.value > 0

    def test_standalone_cache_counts(self):
        cache = PlanCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), object())
        assert cache.get(("k",)) is not None
        assert cache.considered.value == 2
        assert cache.hits.value == 1
        assert cache.misses.value == 1
        assert_balanced(cache)


class TestPlanReuse:
    def test_same_shape_different_query_hits(self, engine):
        engine.reverse_skyline(np.array([0.2, 0.8]))
        misses = engine.plan_cache.misses.value
        engine.reverse_skyline(np.array([0.9, 0.1]))
        assert engine.plan_cache.misses.value == misses
        assert engine.plan_cache.hits.value >= 1

    def test_membership_count_buckets_share_plans(self, engine):
        q = np.array([0.5, 0.5])
        engine.membership_mask([1, 2, 3], q)
        misses = engine.plan_cache.misses.value
        # Same bit_length bucket (3 and 2 both have bit_length 2).
        engine.membership_mask([4, 5], q)
        assert engine.plan_cache.misses.value == misses


class TestEviction:
    def test_mutation_clears_plan_cache(self, engine):
        q = np.array([0.4, 0.6])
        engine.reverse_skyline(q)
        engine.safe_region(q)
        assert len(engine.plan_cache) > 0
        engine.insert_products(np.array([[0.3, 0.3]]))
        assert len(engine.plan_cache) == 0
        assert engine.plan_cache.evicted.value > 0
        assert_balanced(engine.plan_cache)

    def test_post_mutation_plans_are_fresh_misses(self, engine):
        q = np.array([0.4, 0.6])
        engine.reverse_skyline(q)
        engine.update_products([0], np.array([[0.1, 0.9]]))
        misses = engine.plan_cache.misses.value
        engine.reverse_skyline(q)
        assert engine.plan_cache.misses.value == misses + 1

    def test_customer_mutation_also_evicts(self):
        rng = np.random.default_rng(9)
        engine = WhyNotEngine(rng.random((30, 2)), customers=rng.random((20, 2)))
        engine.reverse_skyline(np.array([0.5, 0.5]))
        assert len(engine.plan_cache) > 0
        engine.insert_customers(np.array([[0.2, 0.2]]))
        assert len(engine.plan_cache) == 0


class TestConfigFingerprint:
    def test_differs_per_config(self):
        a = config_fingerprint(WhyNotConfig())
        b = config_fingerprint(WhyNotConfig(planner="fixed"))
        c = config_fingerprint(WhyNotConfig(batch_kernels=False))
        assert a != b and a != c and b != c

    def test_stable_for_equal_configs(self):
        assert config_fingerprint(WhyNotConfig()) == config_fingerprint(
            WhyNotConfig()
        )

    def test_hashable(self):
        hash(config_fingerprint(WhyNotConfig()))
