"""EXPLAIN reports: every executed operator carries estimated and
measured costs, trees render readably, and validation catches holes."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.plan.explain import render_plan_tree, validate_plan_report

Q = np.array([0.5, 0.5])

SURFACE_CALLS = [
    ("reverse_skyline", (Q,), {}),
    ("membership", ([1, 2, 3], Q), {}),
    ("explain", (1, Q), {}),
    ("mwp", (1, Q), {}),
    ("mqp", (1, Q), {}),
    ("safe_region", (Q,), {}),
    ("safe_region", (Q,), {"approximate": True, "k": 4}),
    ("mwq", (1, Q), {}),
    ("batch", ([1, 2], Q), {}),
]


@pytest.fixture(params=["auto", "fixed"])
def engine(request):
    points = np.random.default_rng(13).random((50, 2))
    return WhyNotEngine(
        points, config=WhyNotConfig(planner=request.param, trace=True)
    )


class TestReportContract:
    @pytest.mark.parametrize(
        "surface,args,kwargs",
        SURFACE_CALLS,
        ids=[c[0] + str(c[2]) for c in SURFACE_CALLS],
    )
    def test_every_surface_validates(self, engine, surface, args, kwargs):
        report = engine.explain_plan(surface, *args, **kwargs)
        report.validate()
        assert report.surface == surface
        assert report.result is not None
        for node in report.executed_nodes():
            assert node.estimate.seconds >= 0
            assert node.actual_seconds is not None
            assert node.actual_seconds >= 0
            assert node.executions >= 1

    def test_result_matches_direct_call(self, engine):
        report = engine.explain_plan("reverse_skyline", Q)
        assert np.array_equal(report.result, engine.reverse_skyline(Q))

    def test_plan_cached_flag(self, engine):
        first = engine.explain_plan("reverse_skyline", Q)
        second = engine.explain_plan("reverse_skyline", np.array([0.1, 0.9]))
        assert not first.plan_cached
        assert second.plan_cached


class TestRendering:
    def test_render_contains_operator_and_costs(self, engine):
        text = engine.explain_plan("mwq", 1, Q).render()
        assert "surface=mwq" in text
        assert "mwq-combine" in text
        assert "est=" in text and "actual=" in text
        # Children indent under the root.
        lines = text.splitlines()
        assert any(line.startswith("  ") for line in lines[2:])

    def test_render_plan_tree_alone(self, engine):
        report = engine.explain_plan("safe_region", Q)
        tree = render_plan_tree(report.root)
        assert "safe_region" in tree
        assert "reverse_skyline" in tree


class TestValidationFailures:
    def test_unexecuted_root_rejected(self, engine):
        prepared = engine.prepare("reverse_skyline", Q)
        report = prepared.report()
        with pytest.raises(ValueError, match="never executed"):
            validate_plan_report(report)

    def test_missing_actual_rejected(self, engine):
        report = engine.explain_plan("reverse_skyline", Q)
        report.root.actual_seconds = None
        with pytest.raises(ValueError, match="actual"):
            report.validate()


class TestTracingOff:
    def test_explain_works_untraced(self):
        points = np.random.default_rng(17).random((40, 2))
        engine = WhyNotEngine(points)  # trace defaults off
        report = engine.explain_plan("mwq", 2, Q)
        report.validate()
        # Actuals fall back to the executor's own clock when spans are
        # null; they must still be present.
        for node in report.executed_nodes():
            assert node.actual_seconds is not None
