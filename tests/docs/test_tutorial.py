"""Executable checks for every snippet in docs/TUTORIAL.md.

If the tutorial drifts from the library, these fail.
"""

import numpy as np
import pytest

from repro import (
    Box,
    MWQCase,
    WhyNotEngine,
    answer_why_not_batch,
    relaxation_analysis,
)


@pytest.fixture()
def engine():
    points = np.array(
        [
            [5.0, 30.0],
            [7.5, 42.0],
            [2.5, 70.0],
            [7.5, 90.0],
            [24.0, 20.0],
            [20.0, 50.0],
            [26.0, 70.0],
            [16.0, 80.0],
        ]
    )
    return WhyNotEngine(points, backend="scan")


Q = np.array([8.5, 55.0])


class TestTutorialSnippets:
    def test_section2_reverse_skyline(self, engine):
        assert engine.reverse_skyline(Q).tolist() == [1, 2, 3, 5, 7]
        assert not engine.is_member(0, Q)

    def test_section3_explanation_and_counterfactual(self, engine):
        explanation = engine.explain(0, Q)
        assert explanation.culprits.tolist() == [[7.5, 42.0]]
        reduced, mapping = engine.without_products(
            explanation.culprit_positions
        )
        assert reduced.is_member(int(mapping[0]), Q)

    def test_section4_three_strategies(self, engine):
        mwp = engine.modify_why_not_point(0, Q)
        assert {tuple(c.point) for c in mwp} == {(5.0, 48.5), (8.0, 30.0)}
        mqp = engine.modify_query_point(0, Q)
        assert {tuple(c.point) for c in mqp} == {(8.5, 42.0), (7.5, 55.0)}
        mwq = engine.modify_both(0, Q)
        assert mwq.case is MWQCase.OVERLAP
        assert mwq.best_query_candidate().point.tolist() == [7.5, 55.0]

    def test_section4_cost_quantifiers(self, engine):
        assert engine.lost_customers(Q, [25.0, 25.0]).size > 0
        mqp = engine.modify_query_point(0, Q)
        total = engine.mqp_total_cost(Q, mqp.best().point)
        assert np.isfinite(total)

    def test_section5_safe_region(self, engine):
        sr = engine.safe_region(Q)
        assert len(sr.region.boxes) == 2
        assert sr.contains([9.0, 65.0])
        clipped = sr.restricted(Box([8.0, 50.0], [9.5, 60.0]))
        assert clipped.area() <= sr.area()
        options = relaxation_analysis(engine, Q)
        assert len(options) == 5

    def test_section6_batch(self, engine):
        answers = answer_why_not_batch(engine, [0, 4, 6], Q)
        assert len(answers) == 3
        assert all("query" in a.recommendation() for a in answers)

    def test_section7_approximation(self, engine):
        members = engine.reverse_skyline(Q)
        store = engine.approx_store(k=10)
        store.precompute(members.tolist())
        fast = engine.modify_both(0, Q, approximate=True, k=10)
        assert fast.case is not None
