"""Worker telemetry: per-task counter snapshots, the executor-side
merge, and survival across teardown and epoch-keyed rebuilds."""

import numpy as np
import pytest

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.geometry.box import Box
from repro.kernels.membership import KernelCounters
from repro.obs import Observability
from repro.prune.counters import PruneCounters
from repro.shard import _worker
from repro.shard.executor import ShardExecutor
from repro.shard.stats import ShardStats

BOUNDS = Box(np.zeros(2), np.ones(2))


def _points(n: int, seed: int = 9) -> np.ndarray:
    return np.random.default_rng(seed).random((n, 2))


def _payload(rows: np.ndarray, query: np.ndarray, **extra) -> dict:
    payload = {
        "policy": "strict",
        "block_size": 64,
        "prune": False,
        "prune_tile_size": 64,
        "rows": rows,
        "query": query,
        "self_positions": None,
        "rtol": 0.0,
    }
    payload.update(extra)
    return payload


class TestTaskContract:
    def test_bare_result_without_telemetry_flag(self):
        points = _points(30)
        result = _worker.run_task(
            "membership_rows",
            _payload(np.arange(10), points[0]),
            (points, points),
        )
        assert isinstance(result, np.ndarray)

    def test_telemetry_flag_returns_result_and_snapshots(self):
        points = _points(30)
        result, snapshots = _worker.run_task(
            "membership_rows",
            _payload(np.arange(10), points[0], telemetry=True),
            (points, points),
        )
        assert isinstance(result, np.ndarray)
        assert set(snapshots) == {"kernels"}
        assert snapshots["kernels"]["customers_evaluated"] == 10

    def test_pruned_task_also_ships_prune_snapshot(self):
        points = _points(40)
        result, snapshots = _worker.run_task(
            "lambda_rows",
            _payload(
                np.arange(20), points[0], telemetry=True, prune=True
            ),
            (points, points),
        )
        assert isinstance(result, np.ndarray)
        assert set(snapshots) == {"kernels", "prune"}
        prune = snapshots["prune"]
        assert prune["pairs_total"] == (
            prune["pairs_skipped"]
            + prune["pairs_blocked"]
            + prune["pairs_refined"]
        )

    def test_telemetry_never_changes_results(self):
        points = _points(50)
        rows = np.arange(25)
        bare = _worker.run_task(
            "membership_rows", _payload(rows, points[1]), (points, points)
        )
        wrapped, _ = _worker.run_task(
            "membership_rows",
            _payload(rows, points[1], telemetry=True),
            (points, points),
        )
        assert np.array_equal(bare, wrapped)

    def test_safe_region_chunk_ships_empty_snapshots(self):
        points = _points(20).astype(np.float64)
        payload = {
            "rows": np.arange(3),
            "bounds_lo": np.zeros(2),
            "bounds_hi": np.ones(2),
            "sort_dim": 0,
            "self_exclude": True,
            "chunk_size": 4,
            "telemetry": True,
        }
        result, snapshots = _worker.run_task(
            "safe_region_chunk", payload, (points, points)
        )
        assert snapshots == {}
        assert "lo" in result


class TestExecutorMerge:
    def test_merges_into_totals_bundles_and_registry(self):
        points = _points(80)
        obs = Observability(enabled=True)
        kc, pc = KernelCounters(), PruneCounters()
        stats = ShardStats()
        with ShardExecutor(
            points,
            shards=3,
            backend="serial",
            prune=True,
            obs=obs,
            stats=stats,
            kernel_counters=kc,
            prune_counters=pc,
        ) as ex:
            ex.membership_rows(np.arange(60), points[0], "strict")
        totals = ex.worker_totals["kernels"]
        assert totals["customers_evaluated"] == 60
        assert kc.snapshot()["customers_evaluated"] == 60
        assert (
            obs.metrics.get(
                "shard.worker.kernels.customers_evaluated"
            ).value
            == 60
        )
        assert stats.worker_merges == 3
        assert pc.balanced()

    def test_telemetry_auto_resolution(self):
        points = _points(10)
        assert ShardExecutor(points, shards=2).telemetry is False
        assert (
            ShardExecutor(
                points, shards=2, kernel_counters=KernelCounters()
            ).telemetry
            is True
        )
        assert (
            ShardExecutor(
                points, shards=2, obs=Observability(enabled=True)
            ).telemetry
            is True
        )
        assert (
            ShardExecutor(
                points, shards=2, obs=Observability(enabled=False)
            ).telemetry
            is False
        )
        assert (
            ShardExecutor(points, shards=2, telemetry=False).telemetry
            is False
        )

    def test_merge_without_obs_or_bundles_still_accumulates_totals(self):
        points = _points(40)
        with ShardExecutor(
            points, shards=2, backend="serial", telemetry=True
        ) as ex:
            ex.lambda_rows(np.arange(30), points[0], "strict")
        assert ex.worker_totals["kernels"]["customers_evaluated"] == 30

    def test_lambda_products_counts_probes_per_product_shard(self):
        points = _points(60)
        probes = _points(7, seed=2)
        with ShardExecutor(
            points, shards=3, backend="serial", telemetry=True
        ) as ex:
            ex.lambda_products(probes, points[0], "strict")
        # The product-axis fan-out evaluates every probe once per live
        # product shard.
        evaluated = ex.worker_totals["kernels"]["customers_evaluated"]
        assert evaluated == 7 * 3


class TestEngineLifecycle:
    def _engine(self, points: np.ndarray, backend: str) -> WhyNotEngine:
        return WhyNotEngine(
            points,
            backend="scan",
            config=WhyNotConfig(
                trace=True,
                planner="fixed",
                shards=2,
                shard_backend=backend,
            ),
            bounds=BOUNDS,
        )

    def test_kernel_totals_accurate_when_fanned_out(self):
        points = _points(120)
        engine = self._engine(points, "serial")
        q = np.array([0.5, 0.5])
        engine.membership_mask(list(range(100)), q)
        # Before worker telemetry these stayed at zero under fan-out.
        merged = engine.obs.metrics.get("kernels.customers_evaluated").value
        assert merged == 100
        engine.close_shard_executors()

    def test_merged_counters_survive_executor_teardown(self):
        points = _points(100)
        engine = self._engine(points, "serial")
        q = np.array([0.5, 0.5])
        engine.membership_mask(list(range(80)), q)
        before = engine.obs.metrics.get(
            "shard.worker.kernels.customers_evaluated"
        ).value
        assert before > 0
        engine.close_shard_executors()
        after = engine.obs.metrics.get(
            "shard.worker.kernels.customers_evaluated"
        ).value
        assert after == before

    def test_epoch_rebuild_keeps_counting_without_double_merge(self):
        points = _points(90)
        engine = self._engine(points, "serial")
        q = np.array([0.5, 0.5])
        engine.membership_mask(list(range(50)), q)
        merges_before = engine.shard_stats.worker_merges
        evaluated_before = engine.obs.metrics.get(
            "shard.worker.kernels.customers_evaluated"
        ).value
        engine.insert_products(np.array([[0.2, 0.8]]))  # epoch bump
        engine.membership_mask(list(range(50)), q)
        assert engine.shard_stats.worker_merges > merges_before
        evaluated_after = engine.obs.metrics.get(
            "shard.worker.kernels.customers_evaluated"
        ).value
        # Exactly one more request's worth of rows; nothing replayed.
        assert evaluated_after == evaluated_before + 50

    def test_process_pool_accounting_once_per_generation(self):
        points = _points(60)
        engine = self._engine(points, "process")
        q = np.array([0.5, 0.5])
        engine.membership_mask(list(range(40)), q)
        engine.membership_mask(list(range(40)), q)
        assert engine.shard_stats.pool_starts == 1
        assert engine.shard_stats.bytes_shared == points.nbytes
        assert (
            engine.obs.metrics.get(
                "shard.worker.kernels.customers_evaluated"
            ).value
            == 80
        )
        engine.close_shard_executors()

    def test_journal_records_worker_deltas(self):
        points = _points(100)
        engine = WhyNotEngine(
            points,
            backend="scan",
            config=WhyNotConfig(
                trace=True,
                journal=True,
                planner="fixed",
                shards=2,
                shard_backend="serial",
            ),
            bounds=BOUNDS,
        )
        engine.membership_mask(list(range(70)), np.array([0.5, 0.5]))
        (entry,) = engine.journal.records()
        assert (
            entry.counters["shard.worker.kernels.customers_evaluated"] == 70
        )
        assert entry.counters["kernels.customers_evaluated"] == 70
