"""Partition strategies: coverage, disjointness, balance."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.shard.partition import STRATEGIES, partition_matrix, shard_assignment


def _points(n, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestPartitionMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_covers_all_rows_exactly_once(self, strategy, shards):
        pts = _points(53)
        parts = partition_matrix(pts, shards, strategy)
        assert len(parts) == shards
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(53))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_balance_within_one_row(self, strategy):
        parts = partition_matrix(_points(100), 7, strategy)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1 or strategy == "grid"
        # The grid strategy still covers everything even when cells are
        # uneven; rows/str are balanced by construction.
        assert sum(sizes) == 100

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_more_shards_than_rows(self, strategy):
        parts = partition_matrix(_points(3), 7, strategy)
        assert len(parts) == 7
        assert sum(p.size for p in parts) == 3

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_matrix(self, strategy):
        parts = partition_matrix(np.empty((0, 2)), 4, strategy)
        assert len(parts) == 4
        assert all(p.size == 0 for p in parts)

    def test_rows_strategy_is_contiguous(self):
        parts = partition_matrix(_points(20), 4, "rows")
        assert np.array_equal(np.concatenate(parts), np.arange(20))

    def test_dtype_is_int64(self):
        for part in partition_matrix(_points(10), 3, "str"):
            assert part.dtype == np.int64

    def test_rejects_bad_arguments(self):
        with pytest.raises(InvalidParameterError):
            partition_matrix(_points(5), 0)
        with pytest.raises(InvalidParameterError):
            partition_matrix(_points(5), 2, "hilbert")
        with pytest.raises(InvalidParameterError):
            partition_matrix(np.zeros(5), 2)

    def test_degenerate_coordinates(self):
        # All-identical points must still partition (zero-span guard).
        pts = np.ones((20, 2))
        for strategy in STRATEGIES:
            parts = partition_matrix(pts, 3, strategy)
            assert sum(p.size for p in parts) == 20


class TestShardAssignment:
    def test_inverse_of_partition(self):
        pts = _points(31)
        parts = partition_matrix(pts, 4, "str")
        assignment = shard_assignment(parts, 31)
        for shard_id, part in enumerate(parts):
            assert np.all(assignment[part] == shard_id)

    def test_uncovered_row_rejected(self):
        parts = [np.array([0, 1], dtype=np.int64)]
        with pytest.raises(InvalidParameterError):
            shard_assignment(parts, 3)
