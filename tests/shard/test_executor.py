"""ShardExecutor: merge correctness against the single-process kernels.

The serial backend is the deterministic oracle — it runs the very same
task functions in-process — so most coverage runs there; one small
process-backend case per call shape proves the pool + shared-memory
path produces the same bits.
"""

import numpy as np
import pytest

from repro.config import DominancePolicy, WhyNotConfig
from repro.core.safe_region import compute_safe_region
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.index.scan import ScanIndex
from repro.kernels.membership import (
    batch_lambda_counts,
    batch_window_membership,
)
from repro.shard import ShardExecutor
from repro.skyline.reverse import reverse_skyline_naive

POLICY = DominancePolicy.STRICT


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.random((90, 2)), rng.random((70, 2)), np.array([0.45, 0.55])


def canon(lo, hi):
    order = np.lexsort(np.hstack([lo, hi]).T[::-1])
    return lo[order], hi[order]


class TestKernelMerges:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("partition", ["rows", "str", "grid"])
    def test_serial_masks_and_counts(self, data, shards, partition):
        products, customers, q = data
        ref_mask = batch_window_membership(products, customers, q, POLICY)
        ref_counts = batch_lambda_counts(products, customers, q, POLICY)
        with ShardExecutor(
            products,
            customers,
            shards=shards,
            backend="serial",
            partition=partition,
        ) as ex:
            rows = np.arange(customers.shape[0])
            assert np.array_equal(
                ex.membership_rows(rows, q, POLICY), ref_mask
            )
            assert np.array_equal(
                ex.membership_points(customers, q, POLICY), ref_mask
            )
            assert np.array_equal(ex.lambda_rows(rows, q, POLICY), ref_counts)
            assert np.array_equal(
                ex.lambda_products(customers, q, POLICY), ref_counts
            )

    def test_process_backend_matches_serial(self, data):
        products, customers, q = data
        rows = np.arange(customers.shape[0])
        with ShardExecutor(
            products, customers, shards=2, backend="serial"
        ) as serial, ShardExecutor(
            products, customers, shards=2, backend="process"
        ) as proc:
            assert np.array_equal(
                proc.membership_rows(rows, q, POLICY),
                serial.membership_rows(rows, q, POLICY),
            )
            assert np.array_equal(
                proc.lambda_products(customers, q, POLICY),
                serial.lambda_products(customers, q, POLICY),
            )

    def test_monochromatic_self_exclusion(self, data):
        products, _, q = data
        sp = np.arange(products.shape[0], dtype=np.int64)
        ref = batch_window_membership(
            products, products, q, POLICY, self_positions=sp
        )
        with ShardExecutor(products, shards=3, backend="serial") as ex:
            assert np.array_equal(
                ex.membership_rows(sp, q, POLICY, self_positions=sp), ref
            )

    def test_row_subset_scatter(self, data):
        products, customers, q = data
        rows = np.array([5, 60, 2, 33, 41], dtype=np.int64)
        ref = batch_window_membership(products, customers[rows], q, POLICY)
        with ShardExecutor(products, customers, shards=3, backend="serial") as ex:
            assert np.array_equal(ex.membership_rows(rows, q, POLICY), ref)

    def test_empty_inputs(self, data):
        products, customers, q = data
        with ShardExecutor(products, customers, shards=2, backend="serial") as ex:
            empty = np.empty(0, dtype=np.int64)
            assert ex.membership_rows(empty, q, POLICY).shape == (0,)
            assert ex.lambda_rows(empty, q, POLICY).shape == (0,)
            assert ex.membership_points(
                np.empty((0, 2)), q, POLICY
            ).shape == (0,)

    def test_counters(self, data):
        products, customers, q = data
        with ShardExecutor(products, customers, shards=4, backend="serial") as ex:
            ex.membership_points(customers, q, POLICY)
            snap = ex.stats.snapshot()
        assert snap["fanouts"] == 1
        assert snap["dispatched"] == 4
        assert snap["merged"] == 1
        assert snap["pool_starts"] == 0  # serial: no pool, no shm


class TestSafeRegionFold:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_fold_matches_sequential(self, data, shards):
        products, customers, q = data
        index = ScanIndex(products)
        config = WhyNotConfig()
        bounds = Box(np.zeros(2), np.ones(2))
        rsl = reverse_skyline_naive(index, customers, q, config.policy)
        ref = compute_safe_region(index, customers, q, rsl, bounds, config)
        ref_lo, ref_hi = canon(ref.region.lo, ref.region.hi)
        with ShardExecutor(
            products, customers, shards=shards, backend="serial"
        ) as ex:
            lo, hi, info = ex.safe_region_fold(
                rsl,
                bounds.lo,
                bounds.hi,
                config.sort_dim,
                self_exclude=False,
                chunk_size=config.sr_chunk_size,
            )
        got_lo, got_hi = canon(lo, hi)
        assert np.array_equal(got_lo, ref_lo)
        assert np.array_equal(got_hi, ref_hi)
        assert info["members"] == rsl.size

    def test_fold_refuses_float32(self, data):
        products, customers, _ = data
        with ShardExecutor(
            products, customers, shards=2, backend="serial", dtype="float32"
        ) as ex:
            with pytest.raises(InvalidParameterError):
                ex.safe_region_fold(
                    np.array([0]),
                    np.zeros(2),
                    np.ones(2),
                    0,
                    self_exclude=False,
                    chunk_size=16,
                )

    def test_fold_with_no_members_is_universe(self, data):
        products, customers, _ = data
        with ShardExecutor(products, customers, shards=2, backend="serial") as ex:
            lo, hi, info = ex.safe_region_fold(
                np.empty(0, dtype=np.int64),
                np.zeros(2),
                np.ones(2),
                0,
                self_exclude=False,
                chunk_size=16,
            )
        assert lo.shape == (1, 2)
        assert np.array_equal(lo[0], np.zeros(2))
        assert np.array_equal(hi[0], np.ones(2))


class TestValidationAndLifecycle:
    def test_rejects_bad_arguments(self, data):
        products, customers, _ = data
        with pytest.raises(InvalidParameterError):
            ShardExecutor(products, customers, shards=0)
        with pytest.raises(InvalidParameterError):
            ShardExecutor(products, customers, shards=2, backend="thread")
        with pytest.raises(InvalidParameterError):
            ShardExecutor(products, customers, shards=2, partition="zorder")
        with pytest.raises(InvalidParameterError):
            ShardExecutor(products, customers, shards=2, dtype="float16")

    def test_close_is_idempotent(self, data):
        products, customers, q = data
        ex = ShardExecutor(products, customers, shards=2, backend="process")
        ex.membership_points(customers[:5], q, POLICY)
        ex.close()
        ex.close()
        with pytest.raises(InvalidParameterError):
            ex._ensure_pool()

    def test_float32_results_close_to_float64(self, data):
        products, customers, q = data
        ref = batch_window_membership(products, customers, q, POLICY)
        with ShardExecutor(
            products, customers, shards=2, backend="serial", dtype="float32"
        ) as ex:
            mask = ex.membership_points(customers, q, POLICY)
        # Random data sits far from window boundaries, so float32
        # rounding flips nothing here; boundary-heavy data may differ
        # within float32 eps (documented tolerance).
        assert np.mean(mask == ref) > 0.95
