"""Shared-memory matrix lifecycle: publish, attach, close."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.shard.sharedmem import MatrixSpec, SharedMatrix, attach_matrix


class TestSharedMatrix:
    def test_roundtrip_float64(self):
        data = np.random.default_rng(0).random((40, 3))
        with SharedMatrix(data) as shared:
            view, handle = attach_matrix(shared.spec)
            try:
                assert view.dtype == np.float64
                assert np.array_equal(view, data)
                assert not view.flags.writeable
            finally:
                del view
                handle.close()

    def test_roundtrip_float32(self):
        data = np.random.default_rng(1).random((10, 2))
        with SharedMatrix(data, dtype=np.float32) as shared:
            assert shared.spec.dtype == np.dtype(np.float32).str
            view, handle = attach_matrix(shared.spec)
            try:
                assert np.array_equal(view, data.astype(np.float32))
            finally:
                del view
                handle.close()

    def test_spec_is_picklable_dataclass(self):
        import pickle

        spec = MatrixSpec(name="x", shape=(2, 2), dtype="<f8")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_close_is_idempotent_and_invalidates_view(self):
        shared = SharedMatrix(np.zeros((2, 2)))
        assert shared.array.shape == (2, 2)
        shared.close()
        shared.close()
        with pytest.raises(InvalidParameterError):
            shared.array

    def test_rejects_non_2d(self):
        with pytest.raises(InvalidParameterError):
            SharedMatrix(np.zeros(5))

    def test_empty_matrix(self):
        with SharedMatrix(np.empty((0, 2))) as shared:
            view, handle = attach_matrix(shared.spec)
            try:
                assert view.shape == (0, 2)
            finally:
                del view
                handle.close()
