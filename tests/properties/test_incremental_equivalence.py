"""Property tests: a mutated engine is bit-identical to a fresh one.

The scoped-invalidation contract is absolute — after ANY sequence of
store mutations, every query surface (reverse skyline, membership,
exact and approximate safe regions) must equal a cold engine built over
the final matrices, on every index backend.  Hypothesis drives random
mutation programs over tie-rich dyadic data to hunt for sequences the
window-locality reasoning misses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, WhyNotConfig, WhyNotEngine

# Bounds are the domain, not the data extent: pin them so the fresh
# comparison engine cannot infer a different box after mutations.
BOUNDS = Box(np.zeros(2), np.ones(2))

BACKENDS = ["scan", "grid", "kdtree", "rtree"]


def dyadic(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=np.float64) * 8) / 8


def point_lists(min_rows: int, max_rows: int):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: dyadic(v).reshape(-1, 2))
    )


def mutation_ops():
    """One abstract mutation: (kind, row-fraction, replacement point).

    The fraction picks a position scaled by the live row count at apply
    time, so ops stay valid however the preceding ops resized the store.
    """
    return st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.floats(0, 1, exclude_max=True, allow_nan=False),
        st.lists(
            st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
        ).map(dyadic),
    )


def _apply_product(engine: WhyNotEngine, op) -> None:
    kind, fraction, row = op
    n = engine.products.shape[0]
    if kind == "insert":
        engine.insert_products(row.reshape(1, 2))
    elif kind == "delete" and n > 2:
        engine.delete_products([int(fraction * n)])
    elif kind == "update":
        engine.update_products([int(fraction * n)], row.reshape(1, 2))


def _apply_customer(engine: WhyNotEngine, op) -> None:
    kind, fraction, row = op
    m = engine.customers.shape[0]
    if kind == "insert":
        engine.insert_customers(row.reshape(1, 2))
    elif kind == "delete" and m > 2:
        engine.delete_customers([int(fraction * m)])
    elif kind == "update":
        engine.update_customers([int(fraction * m)], row.reshape(1, 2))


def _assert_surfaces_equal(engine: WhyNotEngine, fresh: WhyNotEngine, queries):
    assert np.array_equal(engine.index.points, engine.products)
    for q in queries:
        assert np.array_equal(
            engine.reverse_skyline(q), fresh.reverse_skyline(q)
        ), q
        everyone = list(range(engine.customers.shape[0]))
        if everyone:
            assert np.array_equal(
                engine.membership_mask(everyone, q),
                fresh.membership_mask(everyone, q),
            ), q
        a, b = engine.safe_region(q).region, fresh.safe_region(q).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi), q
        a = engine.safe_region(q, approximate=True, k=4).region
        b = fresh.safe_region(q, approximate=True, k=4).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi), q


QUERIES = [np.array([0.5, 0.5]), np.array([0.25, 0.625])]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    points=point_lists(6, 12),
    ops=st.lists(mutation_ops(), min_size=1, max_size=4),
)
def test_monochromatic_mutations_match_fresh_engine(backend, points, ops):
    engine = WhyNotEngine(points, backend=backend, bounds=BOUNDS)
    for q in QUERIES:  # warm every cache layer before mutating
        engine.reverse_skyline(q)
        engine.safe_region(q)
        engine.safe_region(q, approximate=True, k=4)
    for op in ops:
        _apply_product(engine, op)
    fresh = WhyNotEngine(engine.products, backend=backend, bounds=BOUNDS)
    _assert_surfaces_equal(engine, fresh, QUERIES)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=15, deadline=None)
@given(
    products=point_lists(5, 9),
    customers=point_lists(4, 8),
    ops=st.lists(
        st.tuples(st.booleans(), mutation_ops()), min_size=1, max_size=4
    ),
)
def test_bichromatic_mutations_match_fresh_engine(
    backend, products, customers, ops
):
    engine = WhyNotEngine(
        products, customers=customers, backend=backend, bounds=BOUNDS
    )
    for q in QUERIES:
        engine.reverse_skyline(q)
        engine.safe_region(q)
        engine.safe_region(q, approximate=True, k=4)
    for product_side, op in ops:
        if product_side:
            _apply_product(engine, op)
        else:
            _apply_customer(engine, op)
    fresh = WhyNotEngine(
        engine.products,
        customers=engine.customers,
        backend=backend,
        bounds=BOUNDS,
    )
    _assert_surfaces_equal(engine, fresh, QUERIES)


@settings(max_examples=20, deadline=None)
@given(
    points=point_lists(6, 12),
    ops=st.lists(mutation_ops(), min_size=1, max_size=4),
)
def test_scoped_and_full_invalidation_agree(points, ops):
    """The scoped path is an optimisation, never a semantics change."""
    scoped = WhyNotEngine(points, backend="scan", bounds=BOUNDS)
    full = WhyNotEngine(
        points,
        backend="scan",
        bounds=BOUNDS,
        config=WhyNotConfig(scoped_invalidation=False),
    )
    for engine in (scoped, full):
        for q in QUERIES:
            engine.reverse_skyline(q)
            engine.safe_region(q)
        for op in ops:
            _apply_product(engine, op)
    _assert_surfaces_equal(scoped, full, QUERIES)


@settings(max_examples=25, deadline=None)
@given(
    points=point_lists(6, 12),
    ops=st.lists(mutation_ops(), min_size=1, max_size=4),
)
def test_counter_balance_invariant(points, ops):
    """cache.scoped_considered == evicted_scoped + retained_scoped after
    any mutation program, and repairs are a subset of retentions."""
    engine = WhyNotEngine(points, backend="scan", bounds=BOUNDS)
    for q in QUERIES:
        engine.reverse_skyline(q)
        engine.safe_region(q)
    for op in ops:
        _apply_product(engine, op)
    considered = engine._scoped_considered.value
    evicted = engine._scoped_evicted.value
    retained = engine._scoped_retained.value
    assert considered == evicted + retained
    assert engine._scoped_repaired.value <= retained
