"""Property tests: worker telemetry is a balance sheet, not a sample.

The tentpole invariant of cross-process telemetry — the counter totals a
sharded engine merges from its workers equal the totals the serial
single-process engine would have recorded for the same workload, because
the serial shard backend runs the identical task code the process pool
runs.  Hypothesis drives the serial backend (pool startup per example
would dominate); one deterministic process-backend case seals the
invariant across a real pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, WhyNotConfig, WhyNotEngine
from repro.kernels.membership import KernelCounters
from repro.obs import Observability
from repro.shard.executor import ShardExecutor

BOUNDS = Box(np.zeros(2), np.ones(2))


def dyadic(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=np.float64) * 8) / 8


def point_lists(min_rows: int, max_rows: int):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: dyadic(v).reshape(-1, 2))
    )


def _sharded_engine(points, shards: int, backend: str = "serial"):
    return WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(
            trace=True,
            planner="fixed",
            shards=shards,
            shard_backend=backend,
        ),
        bounds=BOUNDS,
    )


def _serial_engine(points):
    return WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(trace=True, planner="fixed"),
        bounds=BOUNDS,
    )


def _workload(engine, points):
    q = dyadic(points[0] + 0.125)
    everyone = list(range(points.shape[0]))
    engine.membership_mask(everyone, q)
    engine.reverse_skyline(q)


def _kernel_totals(engine) -> dict[str, int]:
    return {
        field: counter.value
        for field, counter in engine._kernel_counters.counters().items()
        if counter.value
    }


@given(points=point_lists(4, 24), shards=st.sampled_from([1, 2, 3, 7]))
@settings(max_examples=15, deadline=None)
def test_sharded_row_totals_match_single_process(points, shards):
    """Row-granular counters are partition invariants: the rows entering
    a sweep don't change when the sweep is split across shards.  Block
    granular counters (tiles, product chunks) may only fragment upward —
    each shard blocks its slice independently."""
    serial = _serial_engine(points)
    sharded = _sharded_engine(points, shards)
    _workload(serial, points)
    _workload(sharded, points)
    serial_totals = _kernel_totals(serial)
    sharded_totals = _kernel_totals(sharded)
    assert serial_totals["customers_evaluated"] == (
        sharded_totals["customers_evaluated"]
    )
    assert sharded_totals.get("tiles", 0) >= serial_totals.get("tiles", 0)
    assert sharded_totals.get("product_chunks", 0) >= serial_totals.get(
        "product_chunks", 0
    )


@given(points=point_lists(4, 24), shards=st.sampled_from([2, 3, 7]))
@settings(max_examples=15, deadline=None)
def test_bundle_registry_and_totals_agree(points, shards):
    """Three views of the same merge — the parent counter bundle, the
    registry's ``shard.worker.*`` mirrors, and the executor's raw
    ``worker_totals`` ledger — never diverge."""
    engine = _sharded_engine(points, shards)
    _workload(engine, points)
    (executor,) = engine._shard_executors.values()
    worker_kernels = executor.worker_totals["kernels"]
    assert worker_kernels  # telemetry actually flowed
    for field, value in worker_kernels.items():
        assert (
            engine.obs.metrics.get(f"shard.worker.kernels.{field}").value
            == value
        )
        assert getattr(engine._kernel_counters, field).value == value


@given(points=point_lists(6, 30), shards=st.sampled_from([2, 3, 5]))
@settings(max_examples=15, deadline=None)
def test_customers_evaluated_is_additive_over_shards(points, shards):
    """Row-sharded membership touches every requested row exactly once
    across all shards — no row is dropped or double-counted."""
    obs = Observability(enabled=True)
    kc = KernelCounters()
    rows = np.arange(points.shape[0])
    with ShardExecutor(
        points,
        shards=shards,
        backend="serial",
        obs=obs,
        kernel_counters=kc,
    ) as executor:
        executor.membership_rows(rows, points[0], "strict")
    assert executor.worker_totals["kernels"]["customers_evaluated"] == len(
        rows
    )
    assert kc.snapshot()["customers_evaluated"] == len(rows)


def test_process_backend_telemetry_identical_end_to_end():
    """One deterministic seal: counters merged back over the real
    process pool equal the serial backend's, field for field."""
    rng = np.random.default_rng(31)
    points = dyadic(rng.random((40, 2)))
    serial = _sharded_engine(points, 2, backend="serial")
    pooled = _sharded_engine(points, 2, backend="process")
    _workload(serial, points)
    _workload(pooled, points)
    (serial_ex,) = serial._shard_executors.values()
    (pooled_ex,) = pooled._shard_executors.values()
    assert serial_ex.worker_totals == pooled_ex.worker_totals
    assert _kernel_totals(serial) == _kernel_totals(pooled)
    assert serial_ex.worker_totals["kernels"]
    pooled.close_shard_executors()
