"""Property-based tests for the why-not algorithms themselves.

These encode the paper's correctness claims:
* MWP answers admit the why-not point (Definition 5);
* MQP answers enter the customer's dynamic skyline (Definition 6);
* every point of the safe region preserves the reverse skyline (Lemma 2);
* the approximate safe region is a subset of the exact one (Fig. 16).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WhyNotConfig
from repro.core.approx import ApproximateDSLStore
from repro.core.mqp import modify_query_point
from repro.core.mwp import modify_why_not_point
from repro.core.safe_region import compute_safe_region
from repro.core._verify import verify_membership
from repro.geometry.box import Box
from repro.index.scan import ScanIndex
from repro.skyline.reverse import reverse_skyline_naive

UNIT = Box([0.0, 0.0], [1.0, 1.0])


def matrices(min_rows=2, max_rows=25):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: np.round(np.array(v).reshape(-1, 2) * 16) / 16)
    )


def unit_points():
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
    ).map(lambda v: np.round(np.array(v) * 16) / 16)


@settings(max_examples=100, deadline=None)
@given(matrices(), unit_points(), unit_points())
def test_mwp_answers_always_admit(pts, c, q):
    idx = ScanIndex(pts)
    result = modify_why_not_point(idx, c, q)
    for cand in result.candidates:
        assert cand.verified is not False, (pts, c, q, cand)


@settings(max_examples=100, deadline=None)
@given(matrices(), unit_points(), unit_points())
def test_mqp_answers_always_enter_dsl(pts, c, q):
    idx = ScanIndex(pts)
    result = modify_query_point(idx, c, q)
    for cand in result.candidates:
        assert cand.verified is not False, (pts, c, q, cand)


@settings(max_examples=40, deadline=None)
@given(matrices(max_rows=15), unit_points())
def test_lemma2_safe_region(pts, q):
    idx = ScanIndex(pts)
    rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
    sr = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
    rng = np.random.default_rng(0)
    if sr.region.is_empty():
        return
    for q_star in sr.region.sample_points(rng, 10):
        for member in rsl.tolist():
            assert verify_membership(idx, pts[member], q_star, exclude=(member,)), (
                pts,
                q,
                q_star,
                member,
            )


@settings(max_examples=40, deadline=None)
@given(matrices(max_rows=15), unit_points(), st.integers(1, 6))
def test_approx_safe_region_subset(pts, q, k):
    idx = ScanIndex(pts)
    rsl = reverse_skyline_naive(idx, pts, q, self_exclude=True)
    exact = compute_safe_region(idx, pts, q, rsl, UNIT, self_exclude=True)
    store = ApproximateDSLStore(idx, pts, k=k, self_exclude=True)
    approx = store.safe_region(q, rsl, UNIT)
    assert approx.area() <= exact.area() + 1e-9
    rng = np.random.default_rng(1)
    if approx.region.is_empty():
        return
    for p in approx.region.sample_points(rng, 10):
        assert exact.region.contains_point(p) or np.allclose(p, q), (pts, q, p)
