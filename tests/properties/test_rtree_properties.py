"""Property-based tests: the R*-tree is indistinguishable from the scan
oracle and structurally sound under any input."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RTreeConfig
from repro.geometry.box import Box
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex


def matrices(max_rows=60, dim=2):
    return st.integers(1, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 100, allow_nan=False, width=32),
            min_size=n * dim,
            max_size=n * dim,
        ).map(lambda v: np.round(np.array(v).reshape(-1, dim), 1))
    )


def query_boxes(dim=2):
    return st.lists(
        st.floats(0, 100, allow_nan=False, width=32),
        min_size=2 * dim,
        max_size=2 * dim,
    ).map(
        lambda v: Box(
            np.minimum(v[:dim], v[dim:]), np.maximum(v[:dim], v[dim:])
        )
    )


@settings(max_examples=60, deadline=None)
@given(matrices(), st.booleans())
def test_integrity_any_input(pts, bulk):
    tree = RTree(pts, config=RTreeConfig(max_entries=4), bulk=bulk)
    tree.check_integrity()


@settings(max_examples=60, deadline=None)
@given(matrices(), query_boxes(), st.booleans())
def test_range_equals_scan(pts, box, bulk):
    tree = RTree(pts, config=RTreeConfig(max_entries=4), bulk=bulk)
    scan = ScanIndex(pts)
    assert np.array_equal(tree.range_indices(box), scan.range_indices(box))


@settings(max_examples=60, deadline=None)
@given(
    matrices(),
    st.lists(st.floats(0, 100, allow_nan=False, width=32), min_size=2, max_size=2),
    st.integers(1, 8),
)
def test_knn_distances_equal_scan(pts, target, k):
    tree = RTree(pts, config=RTreeConfig(max_entries=4))
    scan = ScanIndex(pts)
    target = np.array(target)
    t = np.sort(np.linalg.norm(pts[tree.knn_indices(target, k)] - target, axis=1))
    s = np.sort(np.linalg.norm(pts[scan.knn_indices(target, k)] - target, axis=1))
    assert np.allclose(t, s)
