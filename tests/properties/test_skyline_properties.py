"""Property-based tests (hypothesis) for the skyline substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DominancePolicy
from repro.index.scan import ScanIndex
from repro.skyline.algorithms import skyline_indices
from repro.skyline.dominance import dominates
from repro.skyline.dynamic import dynamic_skyline_indices
from repro.skyline.reverse import reverse_skyline_bbrs, reverse_skyline_naive
from repro.skyline.window import window_is_empty


def point_matrices(min_rows=1, max_rows=30, dim=2, grid=8):
    """Matrices with deliberate coordinate collisions, snapped to a dyadic
    grid so mirror arithmetic (2*o - p) is exact in floating point."""

    def build(draw_values):
        arr = np.array(draw_values, dtype=np.float64).reshape(-1, dim)
        return np.round(arr * grid) / grid

    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * dim,
            max_size=n * dim,
        ).map(build)
    )


def points(dim=2, grid=8):
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=dim, max_size=dim
    ).map(lambda v: np.round(np.array(v) * grid) / grid)


@settings(max_examples=120, deadline=None)
@given(point_matrices())
def test_skyline_members_not_dominated(pts):
    sky = skyline_indices(pts)
    sky_pts = pts[sky]
    for i, p in enumerate(sky_pts):
        for j, other in enumerate(sky_pts):
            if i != j:
                assert not dominates(other, p)


@settings(max_examples=120, deadline=None)
@given(point_matrices())
def test_excluded_points_dominated_by_some_member(pts):
    sky = set(skyline_indices(pts).tolist())
    sky_pts = pts[sorted(sky)]
    for i in range(len(pts)):
        if i in sky:
            continue
        assert any(dominates(s, pts[i]) for s in sky_pts)


@settings(max_examples=80, deadline=None)
@given(point_matrices())
def test_skyline_idempotent(pts):
    first = pts[skyline_indices(pts)]
    second = first[skyline_indices(first)]
    assert np.array_equal(
        np.unique(first, axis=0), np.unique(second, axis=0)
    )


@settings(max_examples=80, deadline=None)
@given(point_matrices(), points())
def test_dynamic_skyline_invariant_under_reflection(pts, origin):
    mirrored = 2 * origin - pts
    assert np.array_equal(
        dynamic_skyline_indices(pts, origin),
        dynamic_skyline_indices(mirrored, origin),
    )


@settings(max_examples=60, deadline=None)
@given(point_matrices(min_rows=2), points())
def test_reverse_skyline_definition(pts, q):
    """c in RSL(q) iff its window over P is empty — per customer."""
    idx = ScanIndex(pts)
    members = set(
        reverse_skyline_naive(idx, pts, q, self_exclude=True).tolist()
    )
    for j in range(len(pts)):
        empty = window_is_empty(idx, pts[j], q, exclude=(j,))
        assert (j in members) == empty


@settings(max_examples=60, deadline=None)
@given(point_matrices(min_rows=2), points())
def test_bbrs_equals_naive(pts, q):
    idx = ScanIndex(pts)
    for policy in (DominancePolicy.WEAK, DominancePolicy.STRICT):
        assert np.array_equal(
            reverse_skyline_naive(idx, pts, q, policy, self_exclude=True),
            reverse_skyline_bbrs(idx, pts, q, policy, self_exclude=True),
        )


@settings(max_examples=60, deadline=None)
@given(point_matrices(min_rows=2, dim=3), points(dim=3))
def test_bbrs_equals_naive_3d(pts, q):
    idx = ScanIndex(pts)
    assert np.array_equal(
        reverse_skyline_naive(idx, pts, q, self_exclude=True),
        reverse_skyline_bbrs(idx, pts, q, self_exclude=True),
    )
