"""Property tests: filter-refinement pruning changes work, never answers.

The acceptance contract of the prune layer — for float64, every surface
answered through the pruned operators (``planner="fixed"`` with
``prune="always"`` forces them) is bit-identical to the unpruned
engine, across tile sizes, all four index backends, shard counts
(pruning inside the shard workers stacks with fan-out), and random
mutation programs driving the incremental tile-summary maintenance.
The counter balance invariant (pairs skipped + blocked + refined ==
total) must hold on every traced run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, WhyNotConfig, WhyNotEngine

BOUNDS = Box(np.zeros(2), np.ones(2))
BACKENDS = ["scan", "grid", "kdtree", "rtree"]
QUERIES = [np.array([0.5, 0.5]), np.array([0.25, 0.625])]


def dyadic(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=np.float64) * 8) / 8


def point_lists(min_rows: int, max_rows: int):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: dyadic(v).reshape(-1, 2))
    )


def _pruned_config(**overrides) -> WhyNotConfig:
    return WhyNotConfig(planner="fixed", prune="always", **overrides)


def _assert_engines_agree(base: WhyNotEngine, pruned: WhyNotEngine):
    for q in QUERIES:
        assert np.array_equal(
            base.reverse_skyline(q), pruned.reverse_skyline(q)
        )
        everyone = list(range(base.customers.shape[0]))
        assert np.array_equal(
            base.membership_mask(everyone, q),
            pruned.membership_mask(everyone, q),
        )
        for w in everyone[:3]:
            assert np.array_equal(
                base.explain(w, q).culprit_positions,
                pruned.explain(w, q).culprit_positions,
            )
    counters = pruned._prune_counters
    if counters is not None:
        assert counters.balanced(), counters.snapshot()


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    points=point_lists(4, 24),
    tile_size=st.sampled_from([1, 3, 8, 512]),
)
@settings(max_examples=15, deadline=None)
def test_pruned_monochromatic_identical(backend, points, tile_size):
    base = WhyNotEngine(
        points,
        backend=backend,
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    pruned = WhyNotEngine(
        points,
        backend=backend,
        config=_pruned_config(prune_tile_size=tile_size, trace=True),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, pruned)


@given(
    products=point_lists(4, 20),
    customers=point_lists(3, 16),
    tile_size=st.sampled_from([2, 8]),
)
@settings(max_examples=15, deadline=None)
def test_pruned_bichromatic_identical(products, customers, tile_size):
    base = WhyNotEngine(
        products,
        customers,
        backend="rtree",
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    pruned = WhyNotEngine(
        products,
        customers,
        backend="rtree",
        config=_pruned_config(prune_tile_size=tile_size, trace=True),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, pruned)


@pytest.mark.parametrize("shards", [1, 2, 3])
@given(points=point_lists(6, 20))
@settings(max_examples=10, deadline=None)
def test_pruning_stacks_with_sharding(shards, points):
    """prune="always" with shards > 1 prunes inside the shard workers;
    the merged answers stay bit-identical to the plain single-process
    engine."""
    base = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    pruned = WhyNotEngine(
        points,
        backend="scan",
        config=_pruned_config(
            prune_tile_size=4,
            shards=shards,
            shard_backend="serial",
        ),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, pruned)


@given(
    points=point_lists(6, 16),
    program=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(0, 2 ** 16),
        ),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=10, deadline=None)
def test_pruned_survives_mutation_programs(points, program):
    """Random insert/delete/update programs applied to both engines:
    the incrementally maintained tile summaries keep the pruned arm
    bit-identical after every step."""
    base = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    pruned = WhyNotEngine(
        points,
        backend="scan",
        config=_pruned_config(prune_tile_size=4, trace=True),
        bounds=BOUNDS,
    )
    q = QUERIES[0]
    assert np.array_equal(base.reverse_skyline(q), pruned.reverse_skyline(q))
    for kind, raw in program:
        n = base.products.shape[0]
        rng = np.random.default_rng(raw)
        if kind == "insert" or n <= 4:
            rows = dyadic(rng.random((int(rng.integers(1, 4)), 2)))
            base.insert_products(rows)
            pruned.insert_products(rows)
        elif kind == "delete":
            victims = sorted(
                int(i) for i in rng.choice(n, min(2, n - 3), replace=False)
            )
            base.delete_products(victims)
            pruned.delete_products(victims)
        else:
            count = min(3, n)
            positions = sorted(
                int(i) for i in rng.choice(n, count, replace=False)
            )
            rows = dyadic(rng.random((count, 2)))
            base.update_products(positions, rows)
            pruned.update_products(positions, rows)
        _assert_engines_agree(base, pruned)


@given(points=point_lists(4, 20))
@settings(max_examples=10, deadline=None)
def test_auto_planner_identical_to_unpruned(points):
    """planner="auto" with prune="auto" may pick either arm; whichever
    it picks, the answers match the unpruned fixed engine."""
    base = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    auto = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="auto", prune="auto"),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, auto)


def test_process_backend_pruned_identical_end_to_end():
    """One deterministic seal: pruning inside the real process pool
    workers answers with the same bits as the plain single-core path."""
    rng = np.random.default_rng(29)
    points = dyadic(rng.random((40, 2)))
    base = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="fixed", prune="off"),
        bounds=BOUNDS,
    )
    pruned = WhyNotEngine(
        points,
        backend="scan",
        config=_pruned_config(shards=2, shard_backend="process"),
        bounds=BOUNDS,
    )
    try:
        _assert_engines_agree(base, pruned)
    finally:
        pruned.close_shard_executors()


def test_counter_balance_is_engine_observable():
    """The prune.* counters land in the obs registry and balance."""
    rng = np.random.default_rng(31)
    points = dyadic(rng.random((60, 2)))
    engine = WhyNotEngine(
        points,
        backend="scan",
        config=_pruned_config(prune_tile_size=8, trace=True),
        bounds=BOUNDS,
    )
    everyone = list(range(60))
    engine.membership_mask(everyone, QUERIES[0])
    snap = engine.obs.metrics.snapshot()
    total = snap["prune.pairs_total"]
    assert total > 0
    assert (
        snap["prune.pairs_skipped"]
        + snap["prune.pairs_blocked"]
        + snap["prune.pairs_refined"]
        == total
    )
    assert engine._prune_counters.balanced()
