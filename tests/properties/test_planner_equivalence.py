"""Property tests: planner mode changes runtimes, never answers.

``planner="auto"`` (cost-based operator selection) and
``planner="fixed"`` (the historical dispatch) must produce bit-identical
results on EVERY why-not surface, on every index backend, under random
datasets and random mutation programs.  This is the acceptance contract
of the planner/executor decomposition: operator choice is invisible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, WhyNotConfig, WhyNotEngine

BOUNDS = Box(np.zeros(2), np.ones(2))
BACKENDS = ["scan", "grid", "kdtree", "rtree"]
QUERIES = [np.array([0.5, 0.5]), np.array([0.25, 0.625])]


def dyadic(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=np.float64) * 8) / 8


def point_lists(min_rows: int, max_rows: int):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: dyadic(v).reshape(-1, 2))
    )


def mutation_ops():
    return st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.floats(0, 1, exclude_max=True, allow_nan=False),
        st.lists(
            st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
        ).map(dyadic),
    )


def _apply(engine: WhyNotEngine, op) -> None:
    kind, fraction, row = op
    n = engine.products.shape[0]
    if kind == "insert":
        engine.insert_products(row.reshape(1, 2))
    elif kind == "delete" and n > 2:
        engine.delete_products([int(fraction * n)])
    elif kind == "update":
        engine.update_products([int(fraction * n)], row.reshape(1, 2))


def _mod_equal(a, b) -> bool:
    if len(a.candidates) != len(b.candidates):
        return False
    return all(
        np.array_equal(x.point, y.point) and x.cost == y.cost
        for x, y in zip(a.candidates, b.candidates)
    )


def _assert_all_surfaces_equal(auto: WhyNotEngine, fixed: WhyNotEngine):
    for q in QUERIES:
        # Reverse skyline + membership.
        assert np.array_equal(auto.reverse_skyline(q), fixed.reverse_skyline(q))
        everyone = list(range(auto.customers.shape[0]))
        assert np.array_equal(
            auto.membership_mask(everyone, q), fixed.membership_mask(everyone, q)
        )
        target = min(1, len(everyone) - 1)
        # Aspect 1: the Λ set.
        assert np.array_equal(
            auto.explain(target, q).culprit_positions,
            fixed.explain(target, q).culprit_positions,
        )
        # Algorithms 1 and 2.
        assert _mod_equal(
            auto.modify_why_not_point(target, q),
            fixed.modify_why_not_point(target, q),
        )
        assert _mod_equal(
            auto.modify_query_point(target, q),
            fixed.modify_query_point(target, q),
        )
        # Algorithm 3, exact and approximate.
        a, b = auto.safe_region(q).region, fixed.safe_region(q).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)
        a = auto.safe_region(q, approximate=True, k=4).region
        b = fixed.safe_region(q, approximate=True, k=4).region
        assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)
        # Algorithm 4 (MWQ).
        mwq_a = auto.modify_both(target, q)
        mwq_b = fixed.modify_both(target, q)
        assert mwq_a.case == mwq_b.case
        assert mwq_a.cost == mwq_b.cost
        # Lost customers of a refined query.
        q_star = dyadic(q * 0.75 + 0.125)
        assert np.array_equal(
            auto.lost_customers(q, q_star), fixed.lost_customers(q, q_star)
        )
    # Batch answering (same query, several questions).
    q = QUERIES[0]
    probes = list(range(min(3, auto.customers.shape[0])))
    from repro.core.batch import answer_why_not_batch

    for ans_a, ans_b in zip(
        answer_why_not_batch(auto, probes, q),
        answer_why_not_batch(fixed, probes, q),
    ):
        assert ans_a.already_member == ans_b.already_member
        assert ans_a.mwq.case == ans_b.mwq.case
        assert ans_a.mwq.cost == ans_b.mwq.cost
        assert np.array_equal(
            ans_a.explanation.culprit_positions,
            ans_b.explanation.culprit_positions,
        )


def _pair(points, backend, **config_kwargs):
    return (
        WhyNotEngine(
            points,
            backend=backend,
            bounds=BOUNDS,
            config=WhyNotConfig(planner="auto", **config_kwargs),
        ),
        WhyNotEngine(
            points,
            backend=backend,
            bounds=BOUNDS,
            config=WhyNotConfig(planner="fixed", **config_kwargs),
        ),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=10, deadline=None)
@given(points=point_lists(5, 10))
def test_auto_and_fixed_agree_on_every_surface(backend, points):
    auto, fixed = _pair(points, backend)
    _assert_all_surfaces_equal(auto, fixed)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=8, deadline=None)
@given(
    points=point_lists(6, 10),
    ops=st.lists(mutation_ops(), min_size=1, max_size=3),
)
def test_agreement_survives_mutation_programs(backend, points, ops):
    auto, fixed = _pair(points, backend)
    for engine in (auto, fixed):
        for q in QUERIES:  # warm caches so eviction paths are exercised
            engine.reverse_skyline(q)
            engine.safe_region(q)
        for op in ops:
            _apply(engine, op)
    assert auto.dataset_epoch == fixed.dataset_epoch
    _assert_all_surfaces_equal(auto, fixed)


@settings(max_examples=8, deadline=None)
@given(points=point_lists(5, 10))
def test_agreement_without_kernels_or_dsl_cache(points):
    """Capability-gated configs still agree: with kernels and the DSL
    cache off, both modes fall back to the same index-loop operators."""
    auto, fixed = _pair(
        points, "scan", batch_kernels=False, dsl_cache=False
    )
    _assert_all_surfaces_equal(auto, fixed)
