"""Property tests pinning the batch kernels to the per-customer oracle.

The blocked kernels of :mod:`repro.kernels.membership` must agree
bit-for-bit with the per-customer index path for every policy, with and
without monochromatic self-exclusion, and for any ``block_size`` —
smaller than, equal to, or larger than the number of customers — since
tiling is purely an execution detail.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DominancePolicy
from repro.core._verify import verify_membership
from repro.index.scan import ScanIndex
from repro.kernels.membership import (
    batch_lambda_counts,
    batch_verify_membership,
    batch_window_membership,
)
from repro.skyline.reverse import reverse_skyline_bbrs, reverse_skyline_naive
from repro.skyline.window import window_is_empty, window_query_indices


def matrices(min_rows=1, max_rows=30):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: np.round(np.array(v).reshape(-1, 2) * 16) / 16)
    )


def unit_points():
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
    ).map(lambda v: np.round(np.array(v) * 16) / 16)


policies = st.sampled_from(list(DominancePolicy))
booleans = st.booleans()
block_sizes = st.integers(1, 70)


@settings(max_examples=120, deadline=None)
@given(matrices(), unit_points(), policies, booleans, block_sizes)
def test_membership_kernel_matches_window_oracle(
    pts, q, policy, self_exclude, block_size
):
    """The kernel equals window_is_empty per customer — any tile width."""
    idx = ScanIndex(pts)
    m = pts.shape[0]
    mask = batch_window_membership(
        pts,
        pts,
        q,
        policy,
        self_positions=(
            np.arange(m, dtype=np.int64) if self_exclude else None
        ),
        block_size=block_size,
    )
    expected = np.array(
        [
            window_is_empty(
                idx, pts[j], q, policy, exclude=(j,) if self_exclude else ()
            )
            for j in range(m)
        ],
        dtype=bool,
    )
    assert np.array_equal(mask, expected), (pts, q, policy, self_exclude)


@settings(max_examples=80, deadline=None)
@given(matrices(), unit_points(), policies, booleans, block_sizes)
def test_reverse_skyline_kernel_paths_match_oracle(
    pts, q, policy, self_exclude, block_size
):
    """naive == naive(kernels) == bbrs(kernels) for every configuration."""
    idx = ScanIndex(pts)
    oracle = reverse_skyline_naive(idx, pts, q, policy, self_exclude=self_exclude)
    naive_k = reverse_skyline_naive(
        idx,
        pts,
        q,
        policy,
        self_exclude=self_exclude,
        batch_kernels=True,
        block_size=block_size,
    )
    bbrs_k = reverse_skyline_bbrs(
        idx,
        pts,
        q,
        policy,
        self_exclude=self_exclude,
        batch_kernels=True,
        block_size=block_size,
    )
    assert np.array_equal(oracle, naive_k)
    assert np.array_equal(oracle, bbrs_k)


@settings(max_examples=80, deadline=None)
@given(matrices(), unit_points(), policies, booleans, block_sizes)
def test_lambda_count_kernel_matches_window_oracle(
    pts, q, policy, self_exclude, block_size
):
    """Λ-counts equal the per-customer window result sizes."""
    idx = ScanIndex(pts)
    m = pts.shape[0]
    counts = batch_lambda_counts(
        pts,
        pts,
        q,
        policy,
        self_positions=(
            np.arange(m, dtype=np.int64) if self_exclude else None
        ),
        block_size=block_size,
    )
    for j in range(m):
        lam = window_query_indices(
            idx, pts[j], q, policy, exclude=(j,) if self_exclude else ()
        )
        assert counts[j] == lam.size, (pts, q, policy, self_exclude, j)


@settings(max_examples=80, deadline=None)
@given(matrices(), unit_points(), policies, booleans, block_sizes)
def test_verify_kernel_matches_tolerant_oracle(
    pts, q, policy, self_exclude, block_size
):
    """The tolerance-aware kernel equals verify_membership per customer."""
    idx = ScanIndex(pts)
    m = pts.shape[0]
    mask = batch_verify_membership(
        pts,
        pts,
        q,
        policy,
        self_positions=(
            np.arange(m, dtype=np.int64) if self_exclude else None
        ),
        block_size=block_size,
    )
    for j in range(m):
        assert mask[j] == verify_membership(
            idx, pts[j], q, policy, (j,) if self_exclude else ()
        ), (pts, q, policy, self_exclude, j)
