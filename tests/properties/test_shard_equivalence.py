"""Property tests: sharded execution changes runtimes, never answers.

The acceptance contract of the shard layer — for float64, every surface
answered through the sharded operators (``planner="fixed"`` with
``shards > 1`` forces them) is bit-identical to the single-process
engine, across shard counts, partition strategies and all four index
backends.  The serial shard backend runs the identical worker code the
process pool runs, so it stands in for the pool under Hypothesis (pool
startup per example would dominate); one deterministic process-backend
case seals the equivalence end-to-end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, WhyNotConfig, WhyNotEngine

BOUNDS = Box(np.zeros(2), np.ones(2))
BACKENDS = ["scan", "grid", "kdtree", "rtree"]
QUERIES = [np.array([0.5, 0.5]), np.array([0.25, 0.625])]


def dyadic(values) -> np.ndarray:
    return np.round(np.asarray(values, dtype=np.float64) * 8) / 8


def point_lists(min_rows: int, max_rows: int):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: dyadic(v).reshape(-1, 2))
    )


def _sharded_config(shards: int, **overrides) -> WhyNotConfig:
    return WhyNotConfig(
        planner="fixed",
        shards=shards,
        shard_backend="serial",
        **overrides,
    )


def _canon_region(safe_region):
    """The canonical maximal box set of a region, lexsorted.

    ``simplify_arrays`` only drops a box contained in an *earlier* box
    of its volume-descending sort, so zero-volume boxes (which all tie)
    can survive despite being contained in a sibling — and which
    redundant ones survive depends on fold order.  The canonical form
    (drop every box contained in another, dedupe equals) is fold-order
    invariant, and the sharded/sequential float64 bit-identity contract
    is stated on it."""
    lo = np.asarray(safe_region.region.lo, dtype=np.float64)
    hi = np.asarray(safe_region.region.hi, dtype=np.float64)
    k = lo.shape[0]
    keep = np.ones(k, dtype=bool)
    for i in range(k):
        if not keep[i]:
            continue
        for j in range(k):
            if i == j or not keep[j]:
                continue
            if np.all(lo[j] >= lo[i]) and np.all(hi[j] <= hi[i]):
                equal = np.array_equal(lo[j], lo[i]) and np.array_equal(
                    hi[j], hi[i]
                )
                if not equal or j > i:
                    keep[j] = False
    lo, hi = lo[keep], hi[keep]
    order = np.lexsort(np.hstack([lo, hi]).T[::-1])
    return lo[order], hi[order]


def _assert_engines_agree(base: WhyNotEngine, sharded: WhyNotEngine):
    for q in QUERIES:
        assert np.array_equal(
            base.reverse_skyline(q), sharded.reverse_skyline(q)
        )
        everyone = list(range(base.customers.shape[0]))
        assert np.array_equal(
            base.membership_mask(everyone, q),
            sharded.membership_mask(everyone, q),
        )
        sr_base = base.safe_region(q)
        sr_sharded = sharded.safe_region(q)
        base_lo, base_hi = _canon_region(sr_base)
        shard_lo, shard_hi = _canon_region(sr_sharded)
        assert np.array_equal(base_lo, shard_lo)
        assert np.array_equal(base_hi, shard_hi)
        assert sr_base.area() == sr_sharded.area()
        # The tolerance-aware retained mask (lost_customers drives it).
        q_star = dyadic(q + 0.125)
        assert np.array_equal(
            base.lost_customers(q, q_star),
            sharded.lost_customers(q, q_star),
        )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    points=point_lists(4, 24),
    shards=st.sampled_from([1, 2, 3, 7]),
    partition=st.sampled_from(["rows", "str", "grid"]),
)
@settings(max_examples=15, deadline=None)
def test_sharded_monochromatic_identical(backend, points, shards, partition):
    base = WhyNotEngine(
        points,
        backend=backend,
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        points,
        backend=backend,
        config=_sharded_config(shards, shard_partition=partition),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, sharded)


@given(
    products=point_lists(4, 20),
    customers=point_lists(3, 16),
    shards=st.sampled_from([2, 3, 7]),
)
@settings(max_examples=15, deadline=None)
def test_sharded_bichromatic_identical(products, customers, shards):
    base = WhyNotEngine(
        products,
        customers,
        backend="rtree",
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        products,
        customers,
        backend="rtree",
        config=_sharded_config(shards),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, sharded)


@given(points=point_lists(4, 16), shards=st.sampled_from([2, 3]))
@settings(max_examples=10, deadline=None)
def test_sharded_survives_mutations(points, shards):
    """After a mutation the executor is rebuilt for the new epoch and
    the equivalence still holds."""
    base = WhyNotEngine(
        points,
        backend="kdtree",
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        points,
        backend="kdtree",
        config=_sharded_config(shards),
        bounds=BOUNDS,
    )
    q = QUERIES[0]
    assert np.array_equal(base.reverse_skyline(q), sharded.reverse_skyline(q))
    row = dyadic(np.array([0.375, 0.875])).reshape(1, 2)
    base.insert_products(row)
    sharded.insert_products(row)
    _assert_engines_agree(base, sharded)


def test_process_backend_identical_end_to_end():
    """One deterministic seal: the real process pool over shared memory
    answers every surface with the same bits as the single-core path."""
    rng = np.random.default_rng(23)
    points = dyadic(rng.random((40, 2)))
    base = WhyNotEngine(
        points,
        backend="rtree",
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        points,
        backend="rtree",
        config=WhyNotConfig(
            planner="fixed", shards=2, shard_backend="process"
        ),
        bounds=BOUNDS,
    )
    _assert_engines_agree(base, sharded)


def test_float32_mode_within_tolerance():
    """Float32 sharding is an opt-in approximation: masks may flip only
    on window boundaries within float32 rounding.  On dyadic data (all
    coordinates multiples of 1/8, exactly representable in float32) the
    results are identical."""
    rng = np.random.default_rng(5)
    points = dyadic(rng.random((40, 2)))
    base = WhyNotEngine(
        points,
        backend="rtree",
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        points,
        backend="rtree",
        config=_sharded_config(2, shard_dtype="float32"),
        bounds=BOUNDS,
    )
    for q in QUERIES:
        assert np.array_equal(
            base.reverse_skyline(q), sharded.reverse_skyline(q)
        )
        everyone = list(range(points.shape[0]))
        assert np.array_equal(
            base.membership_mask(everyone, q),
            sharded.membership_mask(everyone, q),
        )


def test_float32_safe_region_falls_back_to_sequential():
    """The sharded SR fold refuses float32; fixed mode falls back to the
    sequential fold, so the safe region stays exact."""
    rng = np.random.default_rng(6)
    points = dyadic(rng.random((30, 2)))
    base = WhyNotEngine(
        points,
        backend="scan",
        config=WhyNotConfig(planner="fixed"),
        bounds=BOUNDS,
    )
    sharded = WhyNotEngine(
        points,
        backend="scan",
        config=_sharded_config(3, shard_dtype="float32"),
        bounds=BOUNDS,
    )
    q = QUERIES[0]
    sharded.safe_region(q)
    assert sharded.last_plan is not None
    assert base.safe_region(q).area() == sharded.safe_region(q).area()
