"""Property-based tests for box-region algebra and measure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.region import BoxRegion


def boxes_2d(max_boxes=6):
    def to_box(values):
        lo = np.minimum(values[:2], values[2:])
        hi = np.maximum(values[:2], values[2:])
        return Box(lo, hi)

    one_box = st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=4, max_size=4
    ).map(lambda v: to_box(np.round(np.array(v) * 8) / 8))
    return st.lists(one_box, min_size=0, max_size=max_boxes).map(BoxRegion)


@settings(max_examples=100, deadline=None)
@given(boxes_2d())
def test_simplify_preserves_membership(region):
    simplified = region.simplify()
    rng = np.random.default_rng(0)
    for p in rng.uniform(0, 1, size=(50, 2)):
        assert region.contains_point(p) == simplified.contains_point(p)


@settings(max_examples=100, deadline=None)
@given(boxes_2d())
def test_simplify_preserves_measure(region):
    assert region.measure() == _approx(region.simplify().measure())


@settings(max_examples=80, deadline=None)
@given(boxes_2d(max_boxes=4), boxes_2d(max_boxes=4))
def test_intersection_membership(a, b):
    inter = a.intersect(b)
    rng = np.random.default_rng(1)
    for p in rng.uniform(0, 1, size=(40, 2)):
        expected = a.contains_point(p) and b.contains_point(p)
        assert inter.contains_point(p) == expected


@settings(max_examples=80, deadline=None)
@given(boxes_2d(max_boxes=4), boxes_2d(max_boxes=4))
def test_intersection_measure_bounded(a, b):
    inter = a.intersect(b)
    assert inter.measure() <= min(a.measure(), b.measure()) + 1e-9


@settings(max_examples=80, deadline=None)
@given(boxes_2d(max_boxes=4), boxes_2d(max_boxes=4))
def test_union_measure_bounds(a, b):
    union = a.union(b)
    assert union.measure() <= a.measure() + b.measure() + 1e-9
    assert union.measure() >= max(a.measure(), b.measure()) - 1e-9


@settings(max_examples=60, deadline=None)
@given(boxes_2d())
def test_measure_matches_grid_oracle(region):
    """Compare the sweep measure against a dense-grid indicator sum."""
    measure = region.measure()
    grid = np.linspace(0.5 / 32, 1 - 0.5 / 32, 32)
    xs, ys = np.meshgrid(grid, grid)
    cells = np.column_stack([xs.ravel(), ys.ravel()])
    covered = sum(region.contains_point(c) for c in cells)
    estimate = covered / len(cells)
    assert abs(measure - estimate) < 0.12


def _approx(value):
    import pytest

    return pytest.approx(value, abs=1e-9)
