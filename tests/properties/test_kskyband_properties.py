"""Property-based tests for the k-skyband extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.kskyband import (
    dynamic_kskyband_indices,
    kskyband_indices,
    reverse_kskyband,
)
from repro.index.scan import ScanIndex
from repro.skyline.algorithms import skyline_indices
from repro.skyline.dynamic import dynamic_skyline_indices
from repro.skyline.reverse import reverse_skyline_naive
from repro.config import DominancePolicy


def matrices(min_rows=1, max_rows=25):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(lambda v: np.round(np.array(v).reshape(-1, 2) * 8) / 8)
    )


def unit_points():
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
    ).map(lambda v: np.round(np.array(v) * 8) / 8)


@settings(max_examples=80, deadline=None)
@given(matrices())
def test_k1_is_skyline(pts):
    assert np.array_equal(kskyband_indices(pts, 1), skyline_indices(pts))


@settings(max_examples=80, deadline=None)
@given(matrices(), st.integers(1, 6))
def test_band_monotone_and_complete(pts, k):
    band_k = set(kskyband_indices(pts, k).tolist())
    band_k1 = set(kskyband_indices(pts, k + 1).tolist())
    assert band_k <= band_k1
    assert set(kskyband_indices(pts, len(pts) + 1).tolist()) == set(
        range(len(pts))
    )


@settings(max_examples=60, deadline=None)
@given(matrices(), unit_points())
def test_dynamic_k1_is_dsl(pts, origin):
    assert np.array_equal(
        dynamic_kskyband_indices(pts, origin, 1),
        dynamic_skyline_indices(pts, origin),
    )


@settings(max_examples=60, deadline=None)
@given(matrices(min_rows=2), unit_points())
def test_reverse_k1_is_rsl(pts, q):
    idx = ScanIndex(pts)
    assert np.array_equal(
        reverse_kskyband(idx, pts, q, 1, self_exclude=True),
        reverse_skyline_naive(
            idx, pts, q, DominancePolicy.STRICT, self_exclude=True
        ),
    )


@settings(max_examples=60, deadline=None)
@given(matrices(min_rows=2), unit_points(), st.integers(1, 4))
def test_reverse_band_monotone(pts, q, k):
    idx = ScanIndex(pts)
    small = set(reverse_kskyband(idx, pts, q, k, self_exclude=True).tolist())
    large = set(
        reverse_kskyband(idx, pts, q, k + 1, self_exclude=True).tolist()
    )
    assert small <= large
