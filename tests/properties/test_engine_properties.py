"""Engine-level property tests: the facade's end-to-end guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MWQCase, WhyNotEngine


def engines():
    """Small monochromatic engines over dyadic-grid data (tie-rich)."""

    def build(values):
        pts = np.round(np.array(values).reshape(-1, 2) * 8) / 8
        return WhyNotEngine(pts, backend="scan")

    return st.integers(3, 20).flatmap(
        lambda n: st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        ).map(build)
    )


def unit_points():
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
    ).map(lambda v: np.round(np.array(v) * 8) / 8)


@settings(max_examples=60, deadline=None)
@given(engines(), unit_points())
def test_membership_consistency(engine, q):
    """reverse_skyline and is_member agree for every customer."""
    members = set(engine.reverse_skyline(q).tolist())
    for j in range(engine.customers.shape[0]):
        assert engine.is_member(j, q) == (j in members)


@settings(max_examples=60, deadline=None)
@given(engines(), unit_points())
def test_explanation_iff_nonmember(engine, q):
    for j in range(engine.customers.shape[0]):
        explanation = engine.explain(j, q)
        assert explanation.is_member == engine.is_member(j, q)


@settings(max_examples=40, deadline=None)
@given(engines(), unit_points())
def test_mwq_case_semantics(engine, q):
    """C1 answers admit the why-not point and keep every member; C2
    pairs carry verified why-not movements."""
    members = set(engine.reverse_skyline(q).tolist())
    for j in range(engine.customers.shape[0]):
        if j in members:
            continue
        result = engine.modify_both(j, q)
        if result.case is MWQCase.ALREADY_MEMBER:
            continue
        if result.case is MWQCase.OVERLAP:
            best = result.best_query_candidate()
            assert best is not None
            assert best.verified is not False
            for member in members:
                assert engine.is_member(member, best.point)
        else:
            pair = result.best_pair()
            assert pair is not None
            assert pair[1].verified is not False
        break  # One why-not point per generated engine keeps this fast.


@settings(max_examples=40, deadline=None)
@given(engines(), unit_points())
def test_safe_region_always_contains_query(engine, q):
    assert engine.safe_region(q).contains(q)


@settings(max_examples=30, deadline=None)
@given(engines(), unit_points(), st.integers(1, 5))
def test_approx_region_subset(engine, q, k):
    exact = engine.safe_region(q)
    approx = engine.safe_region(q, approximate=True, k=k)
    assert approx.area() <= exact.area() + 1e-9


@settings(max_examples=30, deadline=None)
@given(engines(), unit_points())
def test_lost_customers_subset_of_members(engine, q):
    rng = np.random.default_rng(0)
    q_star = np.round(rng.uniform(0, 1, 2) * 8) / 8
    lost = set(engine.lost_customers(q, q_star).tolist())
    members = set(engine.reverse_skyline(q).tolist())
    assert lost <= members
