"""Weighted dominance end-to-end against the brute-force oracle.

The preference-model contract (repro.prefs):

* every query surface under arbitrary non-negative weights matches the
  nested-loop weighted oracle exactly — across index backends, shard
  counts and mutation programs;
* unit weights (``None`` or explicit ones) are bit-identical to the
  historical unweighted paths;
* the weighted safe region equals the pure-Python weighted oracle
  construction and never loses a weighted reverse-skyline member.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WhyNotConfig
from repro.core.engine import WhyNotEngine
from repro.core.safe_region import compute_safe_region_oracle
from repro.index.scan import ScanIndex
from repro.prefs.oracle import (
    oracle_lambda_positions,
    oracle_membership,
    oracle_reverse_skyline,
)

BACKENDS = ("scan", "grid", "kdtree", "rtree")


def grids(rows, cols=2):
    """Quantised matrices: ties exercise the WEAK/STRICT boundary."""
    return st.lists(
        st.floats(0, 1, allow_nan=False, width=32),
        min_size=rows[0] * cols,
        max_size=rows[1] * cols,
    ).map(
        lambda v: np.round(
            np.array(v[: len(v) - len(v) % cols]).reshape(-1, cols) * 8
        )
        / 8
    )


def weight_vectors(dim=2):
    """None (unit fast path), explicit ones, skewed, and partial support."""
    return st.sampled_from(
        [
            None,
            [1.0] * dim,
            [4.0] + [0.25] * (dim - 1),
            [1.0] + [0.0] * (dim - 1),
            [0.0] * (dim - 1) + [2.0],
        ]
    )


def mutation_programs():
    """Short sequences of store mutations applied before querying."""
    step = st.sampled_from(
        ["insert_product", "delete_product", "insert_customer", "update_product"]
    )
    return st.lists(step, min_size=0, max_size=3)


def _apply_program(engine, program, rng):
    for op in program:
        if op == "insert_product":
            engine.insert_products(np.round(rng.random((1, 2)) * 8) / 8)
        elif op == "delete_product" and engine.products.shape[0] > 3:
            engine.delete_products([int(rng.integers(engine.products.shape[0]))])
        elif op == "insert_customer":
            engine.insert_customers(np.round(rng.random((1, 2)) * 8) / 8)
        elif op == "update_product":
            pos = int(rng.integers(engine.products.shape[0]))
            engine.update_products([pos], np.round(rng.random((1, 2)) * 8) / 8)


@settings(max_examples=40, deadline=None)
@given(
    grids((4, 12)),
    grids((3, 8)),
    st.integers(0, 63),
    weight_vectors(),
    st.sampled_from(BACKENDS),
    st.sampled_from([1, 2, 3]),
    mutation_programs(),
    st.integers(0, 2**16),
)
def test_weighted_surfaces_match_oracle(
    prods, custs, qseed, weights, backend, shards, program, seed
):
    if prods.shape[0] < 3 or custs.shape[0] < 2:
        return
    q = np.array([(qseed % 8) / 8.0, (qseed // 8) / 8.0])
    cfg = WhyNotConfig(shards=shards, shard_backend="serial")
    engine = WhyNotEngine(prods, custs, backend=backend, config=cfg)
    _apply_program(engine, program, np.random.default_rng(seed))
    P, C = engine.products, engine.customers
    w = None if weights is None else np.asarray(weights, dtype=np.float64)

    rsl = np.sort(np.asarray(engine.reverse_skyline(q, weights=weights)))
    expected = oracle_reverse_skyline(P, C, q, weights=w, policy=cfg.policy)
    assert np.array_equal(rsl, np.sort(expected)), (rsl, expected)

    mask = engine.membership_mask(list(range(C.shape[0])), q, weights=weights)
    for i in range(C.shape[0]):
        assert mask[i] == oracle_membership(
            P, C[i], q, weights=w, policy=cfg.policy
        )

    exp = engine.explain(0, q, weights=weights)
    lam = oracle_lambda_positions(P, C[0], q, weights=w, policy=cfg.policy)
    assert np.array_equal(np.sort(exp.culprit_positions), np.sort(lam))


@settings(max_examples=30, deadline=None)
@given(grids((4, 10)), grids((3, 6)), st.integers(0, 63), st.sampled_from(BACKENDS))
def test_unit_weights_bit_identical(prods, custs, qseed, backend):
    if prods.shape[0] < 3 or custs.shape[0] < 2:
        return
    q = np.array([(qseed % 8) / 8.0, (qseed // 8) / 8.0])
    plain = WhyNotEngine(prods, custs, backend=backend)
    unit = WhyNotEngine(prods, custs, backend=backend)

    r0 = plain.reverse_skyline(q)
    r1 = unit.reverse_skyline(q, weights=[1.0, 1.0])
    assert np.array_equal(r0, r1)

    s0 = plain.safe_region(q)
    s1 = unit.safe_region(q, weights=[1.0, 1.0])
    lo0, hi0 = s0.region.lo, s0.region.hi
    lo1, hi1 = s1.region.lo, s1.region.hi
    assert np.array_equal(lo0, lo1) and np.array_equal(hi0, hi1)

    m0 = plain.modify_both(0, q)
    m1 = unit.modify_both(0, q, weights=[1.0, 1.0])
    assert m0.case == m1.case and m0.cost == m1.cost


@settings(max_examples=30, deadline=None)
@given(
    grids((4, 10)),
    grids((3, 6)),
    st.integers(0, 63),
    weight_vectors(),
    st.sampled_from([1, 2]),
)
def test_weighted_safe_region_matches_oracle_and_lemma2(
    prods, custs, qseed, weights, shards
):
    if prods.shape[0] < 3 or custs.shape[0] < 2:
        return
    q = np.array([(qseed % 8) / 8.0, (qseed // 8) / 8.0])
    cfg = WhyNotConfig(shards=shards, shard_backend="serial")
    engine = WhyNotEngine(prods, custs, backend="scan", config=cfg)
    w = None if weights is None else np.asarray(weights, dtype=np.float64)

    sr = engine.safe_region(q, weights=weights)
    members = oracle_reverse_skyline(
        engine.products, engine.customers, q, weights=w, policy=cfg.policy
    )
    oracle_sr = compute_safe_region_oracle(
        ScanIndex(engine.products),
        engine.customers,
        q,
        members,
        engine._geometry_bounds(q),
        config=cfg,
        weights=w,
    )
    assert np.isclose(sr.area(), oracle_sr.area()), (sr.area(), oracle_sr.area())

    # Lemma 2 under weights: corners of the region keep every member.
    for lo, hi in list(zip(sr.region.lo, sr.region.hi))[:4]:
        for corner in (lo, hi):
            kept = oracle_reverse_skyline(
                engine.products,
                engine.customers,
                corner,
                weights=w,
                policy=cfg.policy,
            )
            assert set(members.tolist()) <= set(kept.tolist()), (
                corner,
                members,
                kept,
            )
