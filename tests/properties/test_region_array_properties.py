"""Property-based exact-equivalence tests: array-backed region engine vs
the pure-Python oracle.

The array engine (:mod:`repro.geometry.region_array`, fronted by
``BoxRegion``) must be *bit-identical* to :class:`OracleBoxRegion` — the
verbatim pre-refactor implementation — on every operation the safe-region
pipeline uses: pairwise intersection, containment pruning (simplify),
exact measure, point containment, nearest point, corners and sampling.
Random unions in d = 2..4 include degenerate (zero-extent) boxes such as
the ``{q}`` fallback of Algorithm 3.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.region import BoxRegion
from repro.geometry.region_oracle import OracleBoxRegion


def box_lists(dim, max_boxes=5):
    """Lists of dim-d boxes on a coarse 1/8 grid.

    The grid forces coincident faces, duplicate boxes and zero-extent
    (lo == hi) degenerate boxes — exactly the inputs where an "almost
    equivalent" kernel would diverge from the oracle.
    """

    def to_box(values):
        v = np.round(np.asarray(values, dtype=np.float64) * 8) / 8
        return Box(np.minimum(v[:dim], v[dim:]), np.maximum(v[:dim], v[dim:]))

    one_box = st.lists(
        st.floats(0, 1, allow_nan=False, width=32),
        min_size=2 * dim,
        max_size=2 * dim,
    ).map(to_box)
    return st.lists(one_box, min_size=0, max_size=max_boxes)


def both(boxes, dim):
    return BoxRegion(boxes, dim=dim), OracleBoxRegion(boxes, dim=dim)


def assert_same_boxes(array_region, oracle_region):
    """Identical box count, order and corner coordinates (exact floats)."""
    a = list(array_region.boxes)
    o = list(oracle_region.boxes)
    assert len(a) == len(o)
    for box_a, box_o in zip(a, o):
        assert box_a.lo.tolist() == box_o.lo.tolist()
        assert box_a.hi.tolist() == box_o.hi.tolist()


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 4).flatmap(lambda d: st.tuples(st.just(d), box_lists(d))))
def test_simplify_exact(case):
    dim, boxes = case
    array_region, oracle_region = both(boxes, dim)
    assert_same_boxes(array_region.simplify(), oracle_region.simplify())


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 4).flatmap(
        lambda d: st.tuples(st.just(d), box_lists(d, 4), box_lists(d, 4))
    )
)
def test_intersect_exact(case):
    dim, boxes_a, boxes_b = case
    a_arr, a_orc = both(boxes_a, dim)
    b_arr, b_orc = both(boxes_b, dim)
    assert_same_boxes(a_arr.intersect(b_arr), a_orc.intersect(b_orc))


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 4).flatmap(lambda d: st.tuples(st.just(d), box_lists(d))))
def test_measure_bit_identical(case):
    dim, boxes = case
    array_region, oracle_region = both(boxes, dim)
    # Exact float equality, not approx: same slab order, same Python-float
    # accumulation sequence.
    assert array_region.measure() == oracle_region.measure()


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 4).flatmap(lambda d: st.tuples(st.just(d), box_lists(d))))
def test_containment_and_nearest_identical(case):
    dim, boxes = case
    array_region, oracle_region = both(boxes, dim)
    rng = np.random.default_rng(7)
    probes = np.round(rng.uniform(-0.125, 1.125, size=(25, dim)) * 8) / 8
    for p in probes:
        assert array_region.contains_point(p) == oracle_region.contains_point(p)
        assert array_region.contains_point(p, closed=False) == (
            oracle_region.contains_point(p, closed=False)
        )
    if boxes:
        for p in probes[:5]:
            near_a = array_region.nearest_point_to(p)
            near_o = oracle_region.nearest_point_to(p)
            assert near_a.tolist() == near_o.tolist()


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 4).flatmap(lambda d: st.tuples(st.just(d), box_lists(d))))
def test_corners_and_samples_identical(case):
    dim, boxes = case
    array_region, oracle_region = both(boxes, dim)
    assert (
        array_region.corner_points().tolist()
        == oracle_region.corner_points().tolist()
    )
    if boxes:
        sample_a = array_region.sample_points(np.random.default_rng(3), 8)
        sample_o = oracle_region.sample_points(np.random.default_rng(3), 8)
        assert sample_a.tolist() == sample_o.tolist()


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 4).flatmap(
        lambda d: st.tuples(st.just(d), box_lists(d, 4), box_lists(d, 4))
    )
)
def test_batch_contains_matches_scalar(case):
    dim, boxes_a, boxes_b = case
    region = BoxRegion(boxes_a, dim=dim).intersect(BoxRegion(boxes_b, dim=dim))
    rng = np.random.default_rng(11)
    probes = np.round(rng.uniform(0, 1, size=(30, dim)) * 8) / 8
    batch = region.contains_points(probes)
    for p, flag in zip(probes, batch.tolist()):
        assert region.contains_point(p) == flag


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 3).flatmap(
        lambda d: st.tuples(st.just(d), box_lists(d, 3), box_lists(d, 3))
    )
)
def test_degenerate_query_fallback_shape(case):
    """The Algorithm-3 fallback — union with a zero-extent box {q} —
    behaves identically on both engines."""
    dim, boxes_a, boxes_b = case
    q = np.full(dim, 0.5)
    fallback_arr = BoxRegion(boxes_a, dim=dim).union(
        BoxRegion([Box(q, q)], dim=dim)
    )
    fallback_orc = OracleBoxRegion(boxes_a, dim=dim).union(
        OracleBoxRegion([Box(q, q)], dim=dim)
    )
    assert_same_boxes(fallback_arr, fallback_orc)
    assert fallback_arr.contains_point(q)
    assert fallback_arr.measure() == fallback_orc.measure()
