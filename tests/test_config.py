"""Tests for library configuration objects."""

import pytest

from repro.config import (
    CostWeights,
    DominancePolicy,
    RTreeConfig,
    WhyNotConfig,
)


class TestWhyNotConfig:
    def test_defaults(self):
        config = WhyNotConfig()
        assert config.policy is DominancePolicy.STRICT
        assert config.sort_dim == 0
        assert config.margin == 0.0
        assert config.verify

    def test_frozen(self):
        config = WhyNotConfig()
        with pytest.raises(Exception):
            config.margin = 0.5

    def test_margin_bounds(self):
        WhyNotConfig(margin=0.0)
        WhyNotConfig(margin=0.999)
        with pytest.raises(ValueError):
            WhyNotConfig(margin=1.0)
        with pytest.raises(ValueError):
            WhyNotConfig(margin=-0.1)

    def test_sort_dim_validated(self):
        with pytest.raises(ValueError):
            WhyNotConfig(sort_dim=-1)

    def test_planner_modes(self):
        assert WhyNotConfig().planner == "auto"
        WhyNotConfig(planner="fixed")
        with pytest.raises(ValueError, match="planner"):
            WhyNotConfig(planner="bogus")

    def test_n_jobs_validated(self):
        WhyNotConfig(n_jobs=1)
        WhyNotConfig(n_jobs=-1)
        with pytest.raises(ValueError):
            WhyNotConfig(n_jobs=0)
        with pytest.raises(ValueError):
            WhyNotConfig(n_jobs=-2)

    def test_kernel_block_size_validated(self):
        WhyNotConfig(kernel_block_size=1)
        # None is the default: the engine resolves it from d via the
        # auto_block_size working-set heuristic.
        assert WhyNotConfig().kernel_block_size is None
        WhyNotConfig(kernel_block_size=None)
        with pytest.raises(ValueError):
            WhyNotConfig(kernel_block_size=0)
        with pytest.raises(ValueError):
            WhyNotConfig(kernel_block_size=-4)

    def test_prune_modes(self):
        assert WhyNotConfig().prune == "auto"
        WhyNotConfig(prune="off")
        WhyNotConfig(prune="always")
        with pytest.raises(ValueError, match="prune"):
            WhyNotConfig(prune="bogus")

    def test_prune_tile_size_validated(self):
        assert WhyNotConfig().prune_tile_size is None
        WhyNotConfig(prune_tile_size=1)
        WhyNotConfig(prune_tile_size=512)
        with pytest.raises(ValueError):
            WhyNotConfig(prune_tile_size=0)
        with pytest.raises(ValueError):
            WhyNotConfig(prune_tile_size=-8)


class TestPolicyEnum:
    def test_values(self):
        assert DominancePolicy.WEAK.value == "weak"
        assert DominancePolicy.STRICT.value == "strict"

    def test_distinct(self):
        assert DominancePolicy.WEAK is not DominancePolicy.STRICT


class TestRTreeConfig:
    def test_defaults_match_page_size(self):
        # ~1536-byte pages with 40-byte 2-D entries.
        config = RTreeConfig()
        assert config.max_entries == 38
        assert config.min_entries >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=3)
        with pytest.raises(ValueError):
            RTreeConfig(min_fill=0.0)


class TestCostWeights:
    def test_default_none(self):
        weights = CostWeights()
        assert weights.alpha is None and weights.beta is None

    def test_resolution_dim3(self):
        alpha, beta = CostWeights().resolved(3)
        assert len(alpha) == 3
        assert sum(alpha) == pytest.approx(1.0)
        assert alpha == beta
