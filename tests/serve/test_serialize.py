"""Deterministic serialisation of engine answers."""

from __future__ import annotations

import json

import numpy as np

from repro import WhyNotEngine
from repro.core.batch import answer_why_not
from repro.serve.serialize import (
    canonical_json,
    serialize_answer,
    serialize_candidate,
    serialize_explanation,
    serialize_safe_region,
)


def _engine() -> WhyNotEngine:
    rng = np.random.default_rng(3)
    return WhyNotEngine(rng.random((40, 2)), customers=rng.random((25, 2)))


def test_answer_serialisation_is_deterministic_and_json_safe():
    engine = _engine()
    q = np.array([0.4, 0.5])
    answer = answer_why_not(engine, 2, q)
    first = canonical_json(serialize_answer(answer))
    second = canonical_json(serialize_answer(answer_why_not(engine, 2, q)))
    assert first == second
    parsed = json.loads(first)  # strictly valid JSON (allow_nan=False)
    assert parsed["query"] == [0.4, 0.5]
    assert {"explanation", "mwp", "mqp", "mwq", "recommendation"} <= set(parsed)


def test_nan_cost_becomes_none():
    from repro.core.answer import Candidate

    cand = Candidate(np.array([0.1, 0.2]))
    assert np.isnan(cand.cost)
    assert serialize_candidate(cand)["cost"] is None
    assert serialize_candidate(None) is None


def test_why_not_reference_forms():
    engine = _engine()
    q = np.array([0.4, 0.5])
    by_position = serialize_answer(answer_why_not(engine, 2, q))
    assert by_position["why_not"] == {"position": 2}
    point = engine.customers[2]
    by_point = serialize_answer(answer_why_not(engine, point, q))
    assert "point" in by_point["why_not"]
    # Same customer, same coordinates: the substantive fields agree.
    assert canonical_json(by_point["explanation"]) == canonical_json(
        by_position["explanation"]
    )


def test_safe_region_serialisation_round_trips():
    engine = _engine()
    region = engine.safe_region(np.array([0.4, 0.5]))
    payload = serialize_safe_region(region)
    assert payload["area"] is not None
    assert payload["approximate"] is False
    assert all(len(box) == 2 for box in payload["boxes"])
    json.loads(canonical_json(payload))


def test_explanation_matrix_shape_for_member():
    engine = _engine()
    q = np.array([0.99, 0.99])  # far corner: most customers are members
    rsl = engine.reverse_skyline(q)
    if rsl.size:
        member = int(rsl[0])
        payload = serialize_explanation(engine.explain(member, q))
        assert payload["is_member"]
        assert payload["culprits"] == []
