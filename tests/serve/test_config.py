"""ServeConfig validation."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.serve import ServeConfig


def test_defaults_are_valid():
    cfg = ServeConfig()
    assert cfg.max_inflight >= 1
    assert cfg.coalesce


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_inflight": 0},
        {"max_queue": -1},
        {"default_deadline_s": 0.0},
        {"coalesce_window_s": -0.1},
        {"max_batch": 0},
        {"executor_threads": 0},
        {"drain_timeout_s": 0.0},
        {"stale_retries": -1},
        {"port": 70000},
    ],
)
def test_invalid_values_refused(kwargs):
    with pytest.raises(InvalidParameterError):
        ServeConfig(**kwargs)


def test_frozen():
    cfg = ServeConfig()
    with pytest.raises(Exception):
        cfg.max_inflight = 2  # type: ignore[misc]
