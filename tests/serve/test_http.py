"""The asyncio HTTP front: routing, status mapping, wire round trips."""

from __future__ import annotations

import asyncio

import numpy as np

from repro import WhyNotEngine
from repro.core.batch import answer_why_not
from repro.serve import (
    QueueFullError,
    ServeConfig,
    WhyNotHTTPServer,
    WhyNotService,
    canonical_json,
    http_json,
    serialize_answer,
)

QUERY = [0.45, 0.55]


def _engine() -> WhyNotEngine:
    rng = np.random.default_rng(9)
    return WhyNotEngine(rng.random((40, 2)), customers=rng.random((25, 2)))


def _run_with_server(handler):
    async def scenario():
        async with WhyNotService(_engine()) as svc:
            async with WhyNotHTTPServer(svc) as server:
                await handler(svc, server)

    asyncio.run(scenario())


def test_why_not_round_trip_matches_direct_engine():
    async def handler(svc, server):
        status, body = await http_json(
            server.host, server.port, "POST", "/why-not",
            {"why_not": 3, "query": QUERY},
        )
        assert status == 200
        twin = _engine()
        direct = serialize_answer(answer_why_not(twin, 3, np.asarray(QUERY)))
        twin.close()
        assert canonical_json(body["result"]) == canonical_json(direct)
        assert body["epoch"] == 0
        assert body["surface"] == "why_not"

    _run_with_server(handler)


def test_all_routes_respond():
    async def handler(svc, server):
        host, port = server.host, server.port
        status, body = await http_json(
            host, port, "POST", "/safe-region", {"query": QUERY}
        )
        assert status == 200 and body["surface"] == "safe_region"
        status, body = await http_json(
            host, port, "POST", "/explain", {"why_not": 2, "query": QUERY}
        )
        assert status == 200 and body["surface"] == "explain"
        status, body = await http_json(
            host, port, "POST", "/mutate",
            {"op": "insert_products", "points": [[0.9, 0.9]]},
        )
        assert status == 200 and body["epoch"] == 1
        status, body = await http_json(host, port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, text = await http_json(host, port, "GET", "/metrics")
        assert status == 200
        assert "serve_requests_total" in text
        assert "engine_dataset_epoch" in text  # one scrape, whole registry

    _run_with_server(handler)


def test_client_errors_map_to_400_and_404():
    async def handler(svc, server):
        host, port = server.host, server.port
        status, body = await http_json(
            host, port, "POST", "/why-not", {"query": QUERY}  # missing field
        )
        assert status == 400 and body["error"] == "bad_request"
        status, body = await http_json(host, port, "GET", "/nope")
        assert status == 404
        status, body = await http_json(
            host, port, "POST", "/mutate", {"op": "drop_tables"}
        )
        assert status == 400 and body["error"] == "InvalidParameterError"
        status, body = await http_json(host, port, "GET", "/why-not")
        assert status == 405

    _run_with_server(handler)


def test_shed_maps_to_429_with_retryable_body(monkeypatch):
    async def handler(svc, server):
        async def always_full(*args, **kwargs):
            raise QueueFullError("admission queue full (synthetic)")

        monkeypatch.setattr(svc, "why_not", always_full)
        status, body = await http_json(
            server.host, server.port, "POST", "/why-not",
            {"why_not": 1, "query": QUERY},
        )
        assert status == 429
        assert body["error"] == "queue_full"
        assert body["retryable"] is True

    _run_with_server(handler)


def test_keep_alive_connection_serves_multiple_requests():
    async def handler(svc, server):
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        try:
            for i in range(3):
                status, body = await http_json(
                    server.host, server.port, "POST", "/explain",
                    {"why_not": i, "query": QUERY},
                    reader=reader, writer=writer,
                )
                assert status == 200
        finally:
            writer.close()
            await writer.wait_closed()

    _run_with_server(handler)


def test_mixed_http_read_write_consistency():
    async def handler(svc, server):
        host, port = server.host, server.port

        async def read(i):
            return await http_json(
                host, port, "POST", "/why-not",
                {"why_not": i % 5, "query": QUERY, "deadline_s": 20},
            )

        async def write():
            await asyncio.sleep(0.002)
            return await http_json(
                host, port, "POST", "/mutate",
                {"op": "insert_products", "points": [[0.85, 0.15]]},
            )

        outs = await asyncio.gather(*[read(i) for i in range(6)], write())
        assert all(status == 200 for status, _ in outs)
        # Verify each read against a twin at its served epoch.
        for status, body in outs[:6]:
            twin = _engine()
            if body["epoch"] == 1:
                twin.insert_products([[0.85, 0.15]])
            direct = serialize_answer(
                answer_why_not(
                    twin, body["result"]["why_not"]["position"],
                    np.asarray(QUERY),
                )
            )
            twin.close()
            assert canonical_json(body["result"]) == canonical_json(direct)

    _run_with_server(handler)
