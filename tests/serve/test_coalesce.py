"""Request coalescing: batching, ordering, isolation, failure fan-out."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def test_concurrent_same_key_requests_share_one_dispatch():
    async def scenario():
        calls = []

        async def dispatch(key, payloads):
            calls.append((key, list(payloads)))
            return [p * 10 for p in payloads]

        sizes = []
        co = Coalescer(dispatch, window_s=0.01, on_batch=sizes.append)
        results = await asyncio.gather(
            *[co.submit("k", i) for i in range(5)]
        )
        assert results == [0, 10, 20, 30, 40]  # order preserved
        assert len(calls) == 1
        assert sizes == [5]
        assert co.pending_batches == 0

    asyncio.run(scenario())


def test_different_keys_never_share_a_batch():
    async def scenario():
        calls = []

        async def dispatch(key, payloads):
            calls.append(key)
            return [f"{key}:{p}" for p in payloads]

        co = Coalescer(dispatch, window_s=0.01)
        a, b = await asyncio.gather(co.submit("a", 1), co.submit("b", 2))
        assert (a, b) == ("a:1", "b:2")
        assert sorted(calls) == ["a", "b"]

    asyncio.run(scenario())


def test_max_batch_flushes_early():
    async def scenario():
        calls = []

        async def dispatch(key, payloads):
            calls.append(len(payloads))
            return list(payloads)

        co = Coalescer(dispatch, window_s=5.0, max_batch=3)
        results = await asyncio.wait_for(
            asyncio.gather(*[co.submit("k", i) for i in range(3)]),
            timeout=1.0,  # must not wait out the 5s window
        )
        assert results == [0, 1, 2]
        assert calls == [3]

    asyncio.run(scenario())


def test_dispatch_failure_fans_out_to_all_members():
    async def scenario():
        async def dispatch(key, payloads):
            raise RuntimeError("kernel exploded")

        co = Coalescer(dispatch, window_s=0.005)
        results = await asyncio.gather(
            co.submit("k", 1), co.submit("k", 2), return_exceptions=True
        )
        assert all(isinstance(r, RuntimeError) for r in results)
        assert co.pending_batches == 0
        # The coalescer stays usable after a failed batch.
        ok = Coalescer(dispatch, window_s=0.0)
        with pytest.raises(RuntimeError):
            await ok.submit("k", 3)

    asyncio.run(scenario())


def test_result_count_mismatch_is_an_error():
    async def scenario():
        async def dispatch(key, payloads):
            return []  # dispatcher bug: wrong arity

        co = Coalescer(dispatch, window_s=0.0)
        with pytest.raises(RuntimeError, match="results"):
            await co.submit("k", 1)

    asyncio.run(scenario())


def test_sequential_submissions_open_fresh_batches():
    async def scenario():
        calls = []

        async def dispatch(key, payloads):
            calls.append(list(payloads))
            return list(payloads)

        co = Coalescer(dispatch, window_s=0.0)
        assert await co.submit("k", 1) == 1
        assert await co.submit("k", 2) == 2
        assert calls == [[1], [2]]

    asyncio.run(scenario())
