"""Admission control: bounded queue, deadlines, shed accounting."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.admission import (
    AdmissionController,
    DeadlineError,
    QueueFullError,
)


def test_slots_bound_concurrency():
    async def scenario():
        ctrl = AdmissionController(max_inflight=2, max_queue=10)
        loop = asyncio.get_running_loop()
        release = asyncio.Event()
        peak = 0

        async def request():
            nonlocal peak
            async with ctrl.slot(loop.time() + 5):
                peak = max(peak, ctrl.inflight)
                await release.wait()

        tasks = [asyncio.create_task(request()) for _ in range(6)]
        await asyncio.sleep(0.05)
        assert ctrl.inflight == 2
        assert ctrl.waiting == 4
        release.set()
        await asyncio.gather(*tasks)
        assert peak == 2
        assert ctrl.inflight == 0
        assert ctrl.waiting == 0

    asyncio.run(scenario())


def test_queue_overflow_sheds_immediately():
    async def scenario():
        ctrl = AdmissionController(max_inflight=1, max_queue=2)
        loop = asyncio.get_running_loop()
        release = asyncio.Event()

        async def holder():
            async with ctrl.slot(loop.time() + 5):
                await release.wait()

        async def waiter():
            async with ctrl.slot(loop.time() + 5):
                pass

        hold = asyncio.create_task(holder())
        await asyncio.sleep(0.01)
        queued = [asyncio.create_task(waiter()) for _ in range(2)]
        await asyncio.sleep(0.01)
        with pytest.raises(QueueFullError):
            await ctrl.acquire(loop.time() + 5)
        release.set()
        await asyncio.gather(hold, *queued)

    asyncio.run(scenario())


def test_deadline_sheds_queued_request():
    async def scenario():
        ctrl = AdmissionController(max_inflight=1, max_queue=5)
        loop = asyncio.get_running_loop()
        release = asyncio.Event()

        async def holder():
            async with ctrl.slot(loop.time() + 5):
                await release.wait()

        hold = asyncio.create_task(holder())
        await asyncio.sleep(0.01)
        with pytest.raises(DeadlineError):
            await ctrl.acquire(loop.time() + 0.05)
        assert ctrl.waiting == 0  # the shed request left the queue
        with pytest.raises(DeadlineError):
            await ctrl.acquire(loop.time() - 1)  # already expired
        release.set()
        await hold
        # The slot is reusable after the holder leaves.
        async with ctrl.slot(loop.time() + 1):
            assert ctrl.inflight == 1

    asyncio.run(scenario())


def test_gauges_track_depth():
    from repro.obs.metrics import MetricsRegistry

    async def scenario():
        registry = MetricsRegistry()
        depth = registry.gauge("q")
        inflight = registry.gauge("i")
        ctrl = AdmissionController(
            1, 5, queue_depth_gauge=depth, inflight_gauge=inflight
        )
        loop = asyncio.get_running_loop()
        release = asyncio.Event()

        async def holder():
            async with ctrl.slot(loop.time() + 5):
                await release.wait()

        async def waiter():
            async with ctrl.slot(loop.time() + 5):
                pass

        hold = asyncio.create_task(holder())
        await asyncio.sleep(0.01)
        wait = asyncio.create_task(waiter())
        await asyncio.sleep(0.01)
        assert depth.value == 1
        assert inflight.value == 1
        release.set()
        await asyncio.gather(hold, wait)
        assert depth.value == 0
        assert inflight.value == 0

    asyncio.run(scenario())
