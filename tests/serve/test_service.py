"""WhyNotService: bit-identity, coalescing, writes, shedding, lifecycle."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import WhyNotEngine
from repro.core.batch import answer_why_not
from repro.exceptions import InvalidParameterError
from repro.serve import (
    QueueFullError,
    ServeConfig,
    WhyNotService,
    canonical_json,
    serialize_answer,
    serialize_explanation,
    serialize_safe_region,
)

QUERY = [0.45, 0.55]


def _stores() -> tuple:
    rng = np.random.default_rng(42)
    return rng.random((50, 2)), rng.random((30, 2))


def _engine() -> WhyNotEngine:
    products, customers = _stores()
    return WhyNotEngine(products, customers=customers)


def _direct(question: int, epoch_mutations: list = ()) -> str:
    """The canonical direct-engine answer on a twin engine."""
    twin = _engine()
    for op, payload in epoch_mutations:
        getattr(twin, op)(**payload)
    try:
        return canonical_json(
            serialize_answer(answer_why_not(twin, question, np.asarray(QUERY)))
        )
    finally:
        twin.close()


@pytest.mark.parametrize("coalesce", [True, False])
def test_served_answers_bit_identical_to_direct(coalesce):
    async def scenario():
        cfg = ServeConfig(coalesce=coalesce, coalesce_window_s=0.002)
        async with WhyNotService(_engine(), cfg) as svc:
            outs = await asyncio.gather(
                *[svc.why_not(i, QUERY) for i in range(8)]
            )
            for i, out in enumerate(outs):
                assert out["epoch"] == 0
                assert canonical_json(out["result"]) == _direct(i)
            if coalesce:
                assert int(svc.m_coalesced.value) > 0
            else:
                assert int(svc.m_coalesced.value) == 0
            assert int(svc.m_completed.value) == 8

    asyncio.run(scenario())


def test_safe_region_and_explain_match_direct_and_pool_hits():
    async def scenario():
        async with WhyNotService(_engine()) as svc:
            twin = _engine()
            served = await svc.safe_region(QUERY)
            direct = serialize_safe_region(twin.safe_region(np.asarray(QUERY)))
            assert canonical_json(served["result"]) == canonical_json(direct)
            await svc.safe_region(QUERY)  # second identical request
            assert int(svc.pool.hits.value) >= 1

            served = await svc.explain(3, QUERY)
            direct = serialize_explanation(twin.explain(3, np.asarray(QUERY)))
            assert canonical_json(served["result"]) == canonical_json(direct)
            twin.close()

    asyncio.run(scenario())


def test_mutation_advances_epoch_and_reads_follow():
    async def scenario():
        engine = _engine()
        async with WhyNotService(engine) as svc:
            before = await svc.why_not(2, QUERY)
            assert before["epoch"] == 0
            mutation = ("insert_products", {"points": [[0.9, 0.9]]})
            out = await svc.mutate(mutation[0], **mutation[1])
            assert out["epoch"] == 1
            assert engine.leases.published_epoch == 1
            after = await svc.why_not(2, QUERY)
            assert after["epoch"] == 1
            assert canonical_json(after["result"]) == _direct(2, [mutation])
            assert int(svc.m_drains.value) == 1
            assert int(svc.m_mutations.value) == 1

    asyncio.run(scenario())


def test_mixed_read_write_workload_stays_consistent():
    async def scenario():
        engine = _engine()
        cfg = ServeConfig(max_inflight=8, coalesce_window_s=0.001)
        async with WhyNotService(engine, cfg) as svc:
            async def read(i):
                return await svc.why_not(i % 6, QUERY, deadline_s=20)

            async def write(step):
                await asyncio.sleep(0.002 * step)
                return await svc.mutate(
                    "insert_products",
                    points=[[0.8 + 0.01 * step, 0.1 + 0.01 * step]],
                )

            outs = await asyncio.gather(
                *[read(i) for i in range(12)], write(1), write(2)
            )
            reads, writes = outs[:12], outs[12:]
            # Every read answered at a real epoch and matches the direct
            # answer for that same generation.
            mutations_by_epoch = {
                1: [("insert_products", {"points": [[0.81, 0.11]]})],
                2: [
                    ("insert_products", {"points": [[0.81, 0.11]]}),
                    ("insert_products", {"points": [[0.82, 0.12]]}),
                ],
            }
            assert sorted(w["epoch"] for w in writes) == [1, 2]
            for i, out in enumerate(reads):
                epoch = out["epoch"]
                assert epoch in (0, 1, 2)
                expected = _direct(i % 6, mutations_by_epoch.get(epoch, []))
                assert canonical_json(out["result"]) == expected
        assert engine.leases.active == 0

    asyncio.run(scenario())


def test_queue_full_sheds_with_429():
    async def scenario():
        cfg = ServeConfig(max_inflight=1, max_queue=0, coalesce=False)
        async with WhyNotService(_engine(), cfg) as svc:
            release = asyncio.Event()

            async def hog():
                assert svc.admission is not None
                loop = asyncio.get_running_loop()
                async with svc.admission.slot(loop.time() + 5):
                    await release.wait()

            task = asyncio.create_task(hog())
            await asyncio.sleep(0.01)
            with pytest.raises(QueueFullError):
                await svc.why_not(0, QUERY)
            assert int(svc.m_shed_queue.value) == 1
            release.set()
            await task
            # Service recovers once the slot frees.
            out = await svc.why_not(0, QUERY)
            assert canonical_json(out["result"]) == _direct(0)

    asyncio.run(scenario())


def test_unknown_mutation_op_refused():
    async def scenario():
        async with WhyNotService(_engine()) as svc:
            with pytest.raises(InvalidParameterError, match="unknown mutation"):
                await svc.mutate("drop_tables", points=[])

    asyncio.run(scenario())


def test_stop_closes_engine_and_refuses_new_requests():
    async def scenario():
        engine = _engine()
        svc = WhyNotService(engine)
        await svc.start()
        await svc.why_not(0, QUERY)
        await svc.stop()
        assert engine.closed
        with pytest.raises(RuntimeError, match="not running"):
            await svc.why_not(0, QUERY)
        with pytest.raises(RuntimeError, match="not running"):
            await svc.mutate("insert_products", points=[[0.5, 0.5]])

    asyncio.run(scenario())


def test_mutation_error_propagates_but_batch_survives():
    async def scenario():
        engine = _engine()
        async with WhyNotService(engine) as svc:
            with pytest.raises(Exception):
                # Out-of-range delete position fails inside the writer.
                await svc.mutate("delete_products", positions=[10_000])
            # The writer task is still alive and applies the next one.
            out = await svc.mutate("insert_products", points=[[0.7, 0.7]])
            assert out["epoch"] == engine.dataset_epoch

    asyncio.run(scenario())


def test_health_and_metrics_surface():
    async def scenario():
        async with WhyNotService(_engine()) as svc:
            await svc.why_not(1, QUERY)
            health = svc.health()
            assert health["status"] == "ok"
            assert health["leases"] == 0
            text = svc.metrics_text()
            assert "serve_requests_total" in text
            assert "serve_latency_why_not" in text
            assert "serve_queue_depth" in text

    asyncio.run(scenario())
