"""Per-request preference weights at the serving layer.

Three contracts:

* malformed ``weights`` are rejected *before* admission with a
  structured 400 (``InvalidParameterError``) — never a 500, never an
  enqueued request;
* well-formed weights flow through every POST route and change the
  answer exactly as the engine surface would;
* two requests that differ only in weights never share a coalesced
  batch (the coalesce key includes the preference fingerprint).
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import WhyNotEngine
from repro.serve import (
    ServeConfig,
    WhyNotHTTPServer,
    WhyNotService,
    http_json,
)

QUERY = [0.45, 0.55]

MALFORMED = [
    [1.0],  # wrong length
    [1.0, -2.0],  # negative
    [1.0, float("nan")],  # non-finite
    [0.0, 0.0],  # empty support
]


def _engine() -> WhyNotEngine:
    rng = np.random.default_rng(9)
    return WhyNotEngine(rng.random((40, 2)), customers=rng.random((25, 2)))


def _run_with_server(handler, config=None):
    async def scenario():
        async with WhyNotService(_engine(), config=config) as svc:
            async with WhyNotHTTPServer(svc) as server:
                await handler(svc, server)

    asyncio.run(scenario())


def test_malformed_weights_rejected_with_structured_400():
    async def handler(svc, server):
        host, port = server.host, server.port
        for route, params in (
            ("/why-not", {"why_not": 3, "query": QUERY}),
            ("/safe-region", {"query": QUERY}),
            ("/explain", {"why_not": 2, "query": QUERY}),
        ):
            for bad in MALFORMED:
                status, body = await http_json(
                    host, port, "POST", route,
                    {**params, "weights": bad},
                )
                assert status == 400, (route, bad, body)
                assert body["error"] == "InvalidParameterError", body
                assert body["detail"]
        # Validation happens before admission: nothing was enqueued,
        # nothing was served.
        assert svc.m_requests.value == 0

    _run_with_server(handler)


def test_weighted_routes_match_direct_engine():
    async def handler(svc, server):
        host, port = server.host, server.port
        weights = [3.0, 0.5]
        twin = _engine()
        try:
            status, body = await http_json(
                host, port, "POST", "/why-not",
                {"why_not": 3, "query": QUERY, "weights": weights},
            )
            assert status == 200
            direct = twin.explain(3, np.asarray(QUERY), weights=weights)
            got = body["result"]["explanation"]["culprit_positions"]
            assert sorted(got) == sorted(
                int(i) for i in direct.culprit_positions
            )

            status, body = await http_json(
                host, port, "POST", "/safe-region",
                {"query": QUERY, "weights": weights},
            )
            assert status == 200
            sr = twin.safe_region(np.asarray(QUERY), weights=weights)
            assert np.isclose(body["result"]["area"], sr.area())

            # Partial support (a dropped dimension) is a legal weighting.
            status, body = await http_json(
                host, port, "POST", "/explain",
                {"why_not": 2, "query": QUERY, "weights": [1.0, 0.0]},
            )
            assert status == 200
        finally:
            twin.close()

    _run_with_server(handler)


def test_requests_differing_only_in_weights_never_coalesce():
    config = ServeConfig(coalesce=True, coalesce_window_s=0.05)

    async def handler(svc, server):
        host, port = server.host, server.port
        payloads = [
            {"why_not": 3, "query": QUERY},
            {"why_not": 3, "query": QUERY, "weights": [1.0, 1.0]},
            {"why_not": 3, "query": QUERY, "weights": [4.0, 0.25]},
            {"why_not": 3, "query": QUERY, "weights": [1.0, 0.0]},
        ]
        results = await asyncio.gather(
            *[
                http_json(host, port, "POST", "/why-not", p)
                for p in payloads * 2
            ]
        )
        assert all(status == 200 for status, _ in results)
        # None/[1,1] share the unit fingerprint but distinct weight
        # spellings stay in distinct batches; the two weighted shapes
        # get one batch each.  Duplicates of the *same* spelling may
        # coalesce — different weights never do.
        assert svc.m_batches.value >= 4, svc.m_batches.value
        for (_, a), (_, b) in zip(results[:4], results[4:]):
            assert a["result"] == b["result"]
        unit, explicit_unit, skew, partial = (r for _, r in results[:4])
        assert unit["result"] == explicit_unit["result"]
        assert skew["result"] != partial["result"] or skew == partial

    _run_with_server(handler, config=config)
