"""Regenerate the paper's geometric figures as SVG files.

Renders the worked example's constructions (Figures 1, 4, 6-9, 11-13
equivalents) from live library output into ``./figures/``.

Run with:  python examples/render_paper_figures.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys

from repro import WhyNotEngine
from repro.data.paperdata import paper_dataset, paper_query
from repro.viz import (
    render_modification_figure,
    render_safe_region_figure,
    render_scene_figure,
    render_window_figure,
)


def main(out_dir: str = "figures") -> None:
    target = pathlib.Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)

    dataset = paper_dataset()
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    q = paper_query()
    c1 = 0   # The why-not customer of Sections III-V.
    c7 = 6   # The overlap-case customer of the Section-V example.

    figures = {
        "fig01_reverse_skyline.svg": render_scene_figure(engine, q),
        "fig04_window_c1.svg": render_window_figure(engine, c1, q),
        "fig06_mwp_movements.svg": render_modification_figure(
            engine, c1, q, method="mwp"
        ),
        "fig09_mqp_movements.svg": render_modification_figure(
            engine, c1, q, method="mqp"
        ),
        "fig11_safe_region.svg": render_safe_region_figure(engine, q),
        "fig12_overlap_c7.svg": render_safe_region_figure(engine, q, why_not=c7),
        "fig13_mwq_c1.svg": render_modification_figure(
            engine, c1, q, method="mwq"
        ),
        "fig16_approx_safe_region.svg": render_safe_region_figure(
            engine, q, approximate=True, k=2
        ),
    }
    for name, scene in figures.items():
        path = target / name
        scene.save(str(path))
        print(f"wrote {path}")

    print(f"\n{len(figures)} SVG figures in {target}/ — open them in any browser.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
