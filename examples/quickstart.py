"""Quickstart: the paper's running example, end to end.

Reproduces Sections II-V on the eight-car table of Fig. 1(a): reverse
skyline, why-not explanation, and all three modification strategies.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import WhyNotEngine
from repro.data.paperdata import paper_dataset, paper_query


def fmt(point: np.ndarray) -> str:
    return f"(price ${point[0]:.1f}K, mileage {point[1]:.1f}K miles)"


def main() -> None:
    dataset = paper_dataset()
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    q = paper_query()

    print("=== The dealer's question =========================================")
    print(f"A dealer wants to market a car q {fmt(q)}.")
    print("Each of the 8 data points acts as both a product on the market")
    print("and a customer preference (the paper's monochromatic setting).\n")

    rsl = engine.reverse_skyline(q)
    names = ", ".join(f"c{i + 1}" for i in rsl)
    print(f"Reverse skyline of q: {{{names}}} — these customers would")
    print("consider q among their preferred cars.\n")

    print("=== Why not customer c1? ==========================================")
    explanation = engine.explain(0, q)
    print(explanation.describe(), "\n")

    print("--- Option A: negotiate with the customer (MWP, Algorithm 1) -----")
    for cand in engine.modify_why_not_point(0, q):
        move = cand.point - dataset.points[0]
        parts = []
        if move[0]:
            parts.append(f"accept paying ${abs(move[0]):.1f}K more")
        if move[1]:
            parts.append(f"accept {abs(move[1]):.1f}K more miles")
        print(
            f"  move c1 to {fmt(cand.point)} — {' and '.join(parts)}"
            f"  [cost {cand.cost:.4f}, verified={cand.verified}]"
        )

    print("\n--- Option B: change the car (MQP, Algorithm 2) -------------------")
    for cand in engine.modify_query_point(0, q):
        move = cand.point - q
        parts = []
        if move[0]:
            parts.append(f"cut the price by ${abs(move[0]):.1f}K")
        if move[1]:
            parts.append(f"find one with {abs(move[1]):.1f}K fewer miles")
        print(
            f"  move q to {fmt(cand.point)} — {' and '.join(parts)}"
            f"  [movement cost {cand.cost:.4f}]"
        )

    print("\n--- But do we keep the existing customers? ------------------------")
    sr = engine.safe_region(q)
    print(f"The safe region of q has {len(sr.region)} rectangle(s),")
    print(f"area {sr.area():.1f} (price-K x mileage-K units). Anywhere inside,")
    print("q keeps every current reverse-skyline customer:")
    for box in sr.region:
        print(f"    price {box.lo[0]:.1f}-{box.hi[0]:.1f}K, "
              f"mileage {box.lo[1]:.1f}-{box.hi[1]:.1f}K")

    print("\n--- Option C: the safe combination (MWQ, Algorithm 4) -------------")
    result = engine.modify_both(0, q)
    print(f"Case: {result.case.value} "
          "(the customer's anti-dominance region meets the safe region)")
    best = result.best_query_candidate()
    print(f"Move q to {fmt(best.point)} — zero-cost: c1 joins the reverse")
    print("skyline and no existing customer is lost.")
    assert engine.is_member(0, best.point)

    print("\n--- Another why-not: customer c7 ----------------------------------")
    result7 = engine.modify_both(6, q)
    best7 = result7.best_query_candidate()
    print(f"Case {result7.case.value}: move q to {fmt(best7.point)} "
          "(the paper's Section V example: q* = (8.5K, 60K)).")

    print("\n=== Watching the engine work (tracing) ============================")
    # WhyNotConfig(trace=True) turns on the observability layer: every
    # pipeline stage records a nested, timed span and the work counters
    # (window queries, cache hits, boxes pruned) aggregate in
    # engine.obs.metrics.  Tracing off (the default) costs ~nothing.
    from repro import WhyNotConfig, answer_why_not, render_span_tree

    traced = WhyNotEngine(
        dataset.points, bounds=dataset.bounds, config=WhyNotConfig(trace=True)
    )
    answer_why_not(traced, 0, q)
    print(render_span_tree(traced.obs.tracer))
    counters = traced.obs.metrics.snapshot()
    print(f"\nindex window queries: {counters['index.queries']}, "
          f"DSL-cache misses: {counters['dsl_cache.threshold_misses']}, "
          f"safe-region boxes kept: {counters['safe_region.boxes_after_simplify']}")
    # The full payload (spans + counters + environment) exports as JSON:
    payload = traced.obs.export(env=True)
    print(f"exported payload keys: {sorted(payload)}")


if __name__ == "__main__":
    main()
