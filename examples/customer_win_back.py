"""A win-back campaign: many why-not questions against one product.

Uses the batch API (one safe-region construction amortised over every
question, the Section-VI reuse) and the relaxation analysis (which
existing customer is 'blocking' the most repositioning freedom).

Run with:  python examples/customer_win_back.py [n_listings]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import WhyNotEngine, answer_why_not_batch, relaxation_analysis
from repro.data.cardb import generate_cardb


def main(n: int = 3000) -> None:
    dataset = generate_cardb(n, seed=29)
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    rng = np.random.default_rng(8)

    listing = np.median(dataset.points, axis=0) * np.array([0.98, 1.03])
    members = engine.reverse_skyline(listing)
    print(
        f"Listing [${listing[0]:,.0f}, {listing[1]:,.0f} mi] has "
        f"{members.size} interested customers out of {n}.\n"
    )

    # The campaign targets: the nearest non-members by preference.
    member_set = set(members.tolist())
    norm = engine.normalizer.normalize(engine.customers)
    target = engine.normalizer.normalize(listing)
    order = np.argsort(np.abs(norm - target).sum(axis=1))
    prospects = [
        int(j)
        for j in order
        if int(j) not in member_set
        and not engine.explain(int(j), listing).is_member
    ][:8]
    print(f"Campaign targets: customers {prospects}\n")

    start = time.perf_counter()
    answers = answer_why_not_batch(engine, prospects, listing)
    elapsed = time.perf_counter() - start
    zero_cost = sum(1 for a in answers if a.best_cost() == 0.0)
    print(f"Answered {len(answers)} why-not questions in {elapsed:.2f}s "
          "(one shared safe region):")
    for prospect, answer in zip(prospects, answers):
        print(f"  #{prospect}: {answer.recommendation()}")
    print(f"\n{zero_cost}/{len(answers)} prospects are winnable at zero cost "
          "(case C1).\n")

    options = relaxation_analysis(engine, listing)
    if options:
        print("If the campaign needs more room, sacrificing one existing")
        print("customer buys the following repositioning area:")
        universe = engine.bounds.volume()
        for option in options[:5]:
            print(
                f"  drop customer #{option.member_position}: safe area "
                f"{option.area / universe:.2e} of the market "
                f"(+{option.area_gain / universe:.2e})"
            )
        binding = options[0]
        print(f"\nMost binding customer: #{binding.member_position}.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
