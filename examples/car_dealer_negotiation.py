"""Targeted marketing on a realistic car market (simulated CarDB).

The scenario from the paper's introduction at scale: a dealer lists a
car, computes its potential-buyer list (reverse skyline), then runs
why-not questions for customers just outside that list and compares the
three negotiation strategies — adjust the customer's expectations (MWP),
adjust the car (MQP, at the risk of losing current prospects), or the
safe combination (MWQ).

Run with:  python examples/car_dealer_negotiation.py [n_cars]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import WhyNotEngine
from repro.data.cardb import generate_cardb


def money(v: float) -> str:
    return f"${v:,.0f}"


def miles(v: float) -> str:
    return f"{v:,.0f} mi"


def car(point: np.ndarray) -> str:
    return f"[{money(point[0])}, {miles(point[1])}]"


def main(n: int = 4000) -> None:
    dataset = generate_cardb(n, seed=11)
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    rng = np.random.default_rng(5)

    # The dealer's listing: a mid-market car near the data's median.
    anchor = np.median(dataset.points, axis=0)
    listing = anchor * np.array([1.02, 0.97])
    print(f"Dealer lists a car at {car(listing)} among {n} market listings.\n")

    rsl = engine.reverse_skyline(listing)
    print(f"Potential buyers (reverse skyline): {rsl.size} customers.")
    for pos in rsl[:5]:
        print(f"  customer #{pos}: prefers around {car(engine.customers[pos])}")
    if rsl.size > 5:
        print(f"  ... and {rsl.size - 5} more")

    # Pick a missed prospect: a non-member whose preference is close to
    # the listing (someone the dealer would plausibly chase).
    members = set(rsl.tolist())
    norm = engine.normalizer.normalize(engine.customers)
    target_norm = engine.normalizer.normalize(listing)
    order = np.argsort(np.abs(norm - target_norm).sum(axis=1))
    missed = next(
        int(j)
        for j in order
        if int(j) not in members
        and not engine.explain(int(j), listing).is_member
    )
    customer = engine.customers[missed]
    print(f"\nMissed prospect: customer #{missed}, prefers {car(customer)}.")

    explanation = engine.explain(missed, listing)
    print(f"Why not? {explanation.culprit_positions.size} competing car(s) "
          "fit this customer strictly better:")
    for culprit in explanation.culprits[:5]:
        print(f"  competitor {car(culprit)}")

    print("\nStrategy 1 — negotiate with the customer (MWP):")
    mwp = engine.modify_why_not_point(missed, listing)
    for cand in list(mwp)[:3]:
        delta = cand.point - customer
        print(f"  shift expectations by ({money(delta[0])}, {miles(delta[1])})"
              f" -> {car(cand.point)}  cost={cand.cost:.4f}")

    print("\nStrategy 2 — reprice/replace the car (MQP):")
    mqp = engine.modify_query_point(missed, listing)
    for cand in list(mqp)[:3]:
        total = engine.mqp_total_cost(listing, cand.point)
        print(f"  move listing to {car(cand.point)}  movement={cand.cost:.4f}"
              f"  total cost incl. lost buyers={total:.4f}")

    print("\nStrategy 3 — safe combination (MWQ):")
    sr = engine.safe_region(listing)
    print(f"  safe region: {len(sr.region)} rectangles, "
          f"{sr.area() / engine.bounds.volume():.2%} of the market space")
    mwq = engine.modify_both(missed, listing)
    if mwq.case.value == "C1":
        best = mwq.best_query_candidate()
        print(f"  zero-cost fix: move listing to {car(best.point)} — the "
              "prospect joins and every current buyer is kept")
    else:
        q_cand, c_cand = mwq.best_pair()
        print(f"  move listing to {car(q_cand.point)} (inside the safe "
              f"region) and negotiate the customer to {car(c_cand.point)}"
              f" (cost {c_cand.cost:.4f})")

    # Sanity: the MWQ answer indeed retains every existing buyer.
    answer = (
        mwq.best_query_candidate().point
        if mwq.case.value == "C1"
        else mwq.best_pair()[0].point
    )
    kept = sum(engine.is_member(int(pos), answer) for pos in rsl)
    print(f"\nCheck: {kept}/{rsl.size} existing buyers retained by the MWQ answer.")
    assert kept == rsl.size


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
