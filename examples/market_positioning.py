"""Safe-region analytics: how much pricing freedom does a product have?

Figure-14 style exploration on synthetic markets: for products with
growing customer bases (reverse-skyline sizes), compute the exact safe
region, its area, and the per-dimension slack — the range over which a
vendor can reposition the product without losing a single customer.

Run with:  python examples/market_positioning.py [n_points]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import WhyNotEngine
from repro.data.synthetic import generate_anticorrelated, generate_uniform
from repro.data.workload import build_workload


def bar(fraction: float, width: int = 36) -> str:
    """Log-scaled bar: areas span many orders of magnitude (Fig. 14)."""
    if fraction <= 0:
        return "." * width
    decades = 8.0  # 1e-8 .. 1 of the reference area.
    level = max(0.0, 1.0 + np.log10(max(fraction, 10 ** -decades)) / decades)
    filled = int(round(level * width))
    return "#" * filled + "." * (width - filled)


def analyse(name: str, dataset) -> None:
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    workload = build_workload(engine, targets=range(1, 11), seed=3)
    universe = engine.bounds.volume()
    span = engine.bounds.hi - engine.bounds.lo

    print(f"--- {name}: safe region vs customer-base size "
          f"({dataset.size} points) ---")
    print(f"{'|RSL|':>6} {'area %':>9} {'dim-0 slack %':>14} "
          f"{'dim-1 slack %':>14}   area")
    max_area = None
    for wq in workload:
        sr = engine.safe_region(wq.query)
        area = sr.area() / universe
        bbox = sr.region.bounding_box()
        slack = (
            (bbox.extent / span) if bbox is not None else np.zeros(engine.dim)
        )
        if max_area is None:
            max_area = max(area, 1e-12)
        print(
            f"{wq.rsl_size:>6} {100 * area:>8.3f}% {100 * slack[0]:>13.2f}% "
            f"{100 * slack[1]:>13.2f}%   {bar(area / max_area)}"
        )
    print()


def main(n: int = 3000) -> None:
    print("The more customers a product already has, the less freedom it")
    print("has to move without losing one (the paper's Figure 14).\n")
    analyse("uniform market", generate_uniform(n, seed=1))
    analyse("anti-correlated market (price/quality trade-off)",
            generate_anticorrelated(n, seed=1))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
