"""Why-not answering beyond two dimensions.

The paper's evaluation is two-dimensional (price, mileage); the library
generalises: this example runs the full pipeline on a three-attribute
car market (price, mileage, age).  For d > 2 the safe region uses the
conservative construction (DESIGN.md §6) — still guaranteed to keep
every existing customer, possibly smaller than the exact region.

Run with:  python examples/three_attribute_market.py [n_cars]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import WhyNotEngine
from repro.data.cardb import generate_cardb
from repro.data.dataset import Dataset
from repro.geometry.box import Box


def build_market(n: int, seed: int = 23) -> Dataset:
    """Extend the simulated CarDB with a correlated age attribute."""
    base = generate_cardb(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Older cars have more miles; age in years, noisy around mileage/12K.
    age = np.clip(
        base.points[:, 1] / 12_000.0 + rng.normal(0, 1.5, n), 0.0, 30.0
    )
    points = np.column_stack([base.points, age])
    bounds = Box(
        np.concatenate([base.bounds.lo, [0.0]]),
        np.concatenate([base.bounds.hi, [30.0]]),
    )
    return Dataset(f"CarDB3-{n}", points, bounds, ("price", "mileage", "age"))


def car(point: np.ndarray) -> str:
    return (
        f"[${point[0]:,.0f}, {point[1]:,.0f} mi, {point[2]:.1f} yr]"
    )


def main(n: int = 2500) -> None:
    dataset = build_market(n)
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    rng = np.random.default_rng(4)

    listing = np.median(dataset.points, axis=0) * np.array([1.05, 0.95, 1.0])
    print(f"Listing {car(listing)} in a {n}-car, 3-attribute market.\n")

    rsl = engine.reverse_skyline(listing)
    print(f"Reverse skyline: {rsl.size} potential buyers "
          "(more than in 2-D: higher dimensions dominate less).")

    # Pick a missed prospect.
    members = set(rsl.tolist())
    missed = next(
        j
        for j in rng.permutation(n)
        if int(j) not in members
        and not engine.explain(int(j), listing).is_member
    )
    missed = int(missed)
    customer = engine.customers[missed]
    print(f"\nWhy-not question for customer #{missed} {car(customer)}:")
    explanation = engine.explain(missed, listing)
    print(f"  {explanation.culprit_positions.size} competing car(s) fit "
          "strictly better in all three attributes.")

    mwp = engine.modify_why_not_point(missed, listing)
    best = next((c for c in mwp if c.verified), mwp.best())
    print("\nBest verified customer-side move (MWP):")
    print(f"  {car(customer)} -> {car(best.point)}  cost={best.cost:.5f}")

    mwq = engine.modify_both(missed, listing)
    print(f"\nMWQ case {mwq.case.value}: ", end="")
    if mwq.case.value == "C1":
        q_star = mwq.best_query_candidate().point
        print(f"move the listing to {car(q_star)} at zero cost.")
    else:
        q_cand, c_cand = mwq.best_pair()
        q_star = q_cand.point
        print(f"move the listing to {car(q_star)} (inside the conservative"
              f" safe region) and the customer to {car(c_cand.point)}"
              f" (cost {c_cand.cost:.5f}).")

    kept = sum(engine.is_member(int(p), q_star) for p in rsl)
    print(f"\nGuarantee check: {kept}/{rsl.size} existing buyers retained.")
    assert kept == rsl.size


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
