"""The approximation trade-off of Section VI.B: speed vs answer quality.

Sweeps the sampling parameter k of the approximate safe region and
reports, against the exact pipeline: online time, safe-region area
retained, and the Eqn.-11 cost of the Approx-MWQ answer.

Run with:  python examples/approximation_tradeoff.py [n_points]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import WhyNotEngine
from repro.data.cardb import generate_cardb
from repro.data.workload import build_workload


def main(n: int = 3000) -> None:
    dataset = generate_cardb(n, seed=17)
    engine = WhyNotEngine(dataset.points, bounds=dataset.bounds)
    workload = build_workload(engine, targets=range(3, 11), seed=17)
    if not workload:
        raise SystemExit("no workload queries found; try a larger n")
    print(f"{len(workload)} why-not queries over {dataset.name} "
          f"(|RSL| = {[wq.rsl_size for wq in workload]}).\n")

    # Exact baseline.
    t0 = time.perf_counter()
    exact_costs = []
    exact_areas = []
    for wq in workload:
        sr = engine.safe_region(wq.query)
        exact_areas.append(sr.area())
        exact_costs.append(
            engine.modify_both(wq.why_not_position, wq.query).cost
        )
    exact_time = time.perf_counter() - t0
    print(f"exact MWQ: {exact_time:.2f}s online, "
          f"mean cost {np.mean(exact_costs):.6f}\n")

    print(f"{'k':>4} {'online s':>9} {'speedup':>8} {'area kept':>10} "
          f"{'mean cost':>10} {'cost vs exact':>14}")
    for k in (2, 5, 10, 20, 50):
        store = engine.approx_store(k)
        for wq in workload:  # Offline pass, excluded from timing.
            store.precompute(wq.rsl_positions.tolist())
        t0 = time.perf_counter()
        costs = []
        kept = []
        for wq, exact_area in zip(workload, exact_areas):
            sr = engine.safe_region(wq.query, approximate=True, k=k)
            kept.append(sr.area() / exact_area if exact_area else 1.0)
            costs.append(
                engine.modify_both(
                    wq.why_not_position, wq.query, approximate=True, k=k
                ).cost
            )
        online = time.perf_counter() - t0
        print(
            f"{k:>4} {online:>9.2f} {exact_time / max(online, 1e-9):>7.1f}x "
            f"{np.mean(kept):>9.1%} {np.mean(costs):>10.6f} "
            f"{np.mean(costs) - np.mean(exact_costs):>+14.6f}"
        )

    print("\nLarger k keeps more of the safe region (better answers) at a")
    print("higher online cost — the knob of the paper's Tables V-VI.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
