"""EXPLAIN: plan trees rendered with estimated vs. actual costs.

:func:`render_plan_tree` mirrors the indentation and duration
formatting of :func:`repro.obs.exporters.render_span_tree`, so the
EXPLAIN output and a traced span tree read side by side; the actual
costs themselves come from the same spans (see
:mod:`repro.plan.executor`).

:func:`validate_plan_report` is the acceptance contract: every executed
operator must carry both an estimate and a measured actual, and an
executed report must have executed its root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.exporters import _format_duration
from repro.plan.executor import PlanNode

__all__ = ["PlanReport", "render_plan_tree", "validate_plan_report"]


def _render_node(node: PlanNode, depth: int, lines: list[str]) -> None:
    actual = (
        _format_duration(node.actual_seconds)
        if node.actual_seconds is not None
        else "not-run"
    )
    detail = f"  [{node.estimate.detail}]" if node.estimate.detail else ""
    lines.append(
        f"{'  ' * depth}{node.logical.describe()} -> {node.operator.name}"
        f"  est={_format_duration(node.estimate.seconds)}"
        f"  actual={actual}  runs={node.executions}{detail}"
    )
    for child in node.children:
        _render_node(child, depth + 1, lines)


def render_plan_tree(root: PlanNode) -> str:
    """Human-readable EXPLAIN tree of one physical plan."""
    lines: list[str] = []
    _render_node(root, 0, lines)
    return "\n".join(lines)


def validate_plan_report(report: "PlanReport") -> None:
    """Raise ``ValueError`` unless every executed node carries both an
    estimated and an actual cost (and the root actually ran)."""
    if not report.root.executed:
        raise ValueError(
            f"plan for surface {report.surface!r} was never executed"
        )
    for node in report.root.walk():
        if not node.executed:
            continue  # e.g. a prefilter child skipped on an empty batch
        if node.estimate is None or node.estimate.seconds < 0:
            raise ValueError(
                f"executed node {node.operator.name} has no cost estimate"
            )
        if node.actual_seconds is None or node.actual_seconds < 0:
            raise ValueError(
                f"executed node {node.operator.name} has no actual cost"
            )


@dataclass
class PlanReport:
    """What ``engine.explain_plan(...)`` returns: the executed plan tree
    plus the surface result it produced."""

    surface: str
    root: PlanNode
    plan_cached: bool
    result: Any = None
    attributes: dict = field(default_factory=dict)

    def render(self) -> str:
        header = (
            f"surface={self.surface}  plan_cache="
            f"{'hit' if self.plan_cached else 'miss'}  epoch="
            f"{self.root.stats.epoch}  backend={self.root.stats.backend}"
        )
        return header + "\n" + render_plan_tree(self.root)

    def validate(self) -> "PlanReport":
        validate_plan_report(self)
        return self

    def executed_nodes(self) -> list[PlanNode]:
        return [node for node in self.root.walk() if node.executed]
