"""The plan cache: planned trees keyed by (shape, epoch, config).

Logical plans are coordinate-free, so one planned tree serves every
query point of the same shape; what *does* invalidate a plan is a
dataset mutation (the stats it was costed with are stale — the key
carries the epoch, and the engine's store subscribers clear the cache
outright on commit) or a different config fingerprint.

Counter contract (asserted by tests and the CI smoke):
``plan.cache_considered == plan.cache_hits + plan.cache_misses``; every
entry dropped by :meth:`PlanCache.clear` counts under
``plan.cache_evicted``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.plan.executor import PlanNode

__all__ = ["PlanCache", "config_fingerprint"]


def config_fingerprint(config) -> tuple:
    """A hashable identity of every config field (enums by value)."""
    items = []
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, enum.Enum):
            value = value.value
        items.append((field.name, value))
    return tuple(items)


class _LocalCounter:
    """Stand-in with the :class:`repro.obs.Counter` increment surface,
    for plan caches used without an engine's metrics registry."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class PlanCache:
    """Maps ``(logical.cache_key(), epoch, config_fingerprint)`` to the
    planned :class:`~repro.plan.executor.PlanNode` tree."""

    def __init__(self, obs=None) -> None:
        self._entries: dict[tuple, "PlanNode"] = {}
        counter = (
            (lambda name, help: obs.counter(name, help))
            if obs is not None
            else (lambda name, help: _LocalCounter())
        )
        self.considered = counter(
            "plan.cache_considered", "plan-cache lookups"
        )
        self.hits = counter("plan.cache_hits", "plan-cache lookup hits")
        self.misses = counter("plan.cache_misses", "plan-cache lookup misses")
        self.evicted = counter(
            "plan.cache_evicted", "plan-cache entries dropped on mutation"
        )

    def get(self, key: tuple) -> "PlanNode | None":
        self.considered.inc()
        node = self._entries.get(key)
        if node is None:
            self.misses.inc()
        else:
            self.hits.inc()
        return node

    def put(self, key: tuple, node: "PlanNode") -> None:
        self._entries[key] = node

    def clear(self) -> int:
        """Drop every cached plan; returns (and counts) how many."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.evicted.inc(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries
