"""Binding engine surface calls to (logical plan, runtime context).

The single place a public surface request (``"mwq"``, why_not, query,
approximate=...) is turned into a coordinate-free logical plan plus the
execution-context kwargs that carry the actual coordinates.  Keeping
this in the plan layer means the engine facade holds no per-surface
argument knowledge at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_point
from repro.plan.logical import (
    BatchWhyNotQuery,
    LambdaQuery,
    LogicalPlan,
    MembershipMaskQuery,
    MQPQuery,
    MWPQuery,
    MWQQuery,
    RSLQuery,
    SafeRegionQuery,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine

__all__ = ["SURFACES", "build_request"]

SURFACES = {
    "reverse_skyline": RSLQuery,
    "membership": MembershipMaskQuery,
    "explain": LambdaQuery,
    "mwp": MWPQuery,
    "mqp": MQPQuery,
    "safe_region": SafeRegionQuery,
    "mwq": MWQQuery,
    "batch": BatchWhyNotQuery,
}


def build_request(
    engine: "WhyNotEngine", surface: str, *args, **kwargs
) -> tuple[LogicalPlan, dict]:
    """``(logical plan, execution-context kwargs)`` for one surface call."""
    approximate = bool(kwargs.pop("approximate", False))
    k = int(kwargs.pop("k", 10))
    # Preference weights ride on every surface; resolution validates them
    # (length, sign, finiteness) before any planning happens.
    prefs = engine.resolve_prefs(kwargs.pop("weights", None))
    if kwargs:
        raise InvalidParameterError(
            f"unknown arguments {sorted(kwargs)!r} for {surface!r}"
        )
    try:
        logical_cls = SURFACES[surface]
    except KeyError:
        raise InvalidParameterError(
            f"unknown surface {surface!r}; one of {sorted(SURFACES)}"
        ) from None
    dim = engine.dim
    if surface == "reverse_skyline":
        (query,) = args
        return logical_cls(), {"query": as_point(query, dim=dim), "prefs": prefs}
    if surface == "membership":
        why_nots, query = args
        why_nots = tuple(why_nots)
        return (
            logical_cls(count=len(why_nots)),
            {
                "query": as_point(query, dim=dim),
                "why_nots": why_nots,
                "prefs": prefs,
            },
        )
    if surface in ("explain", "mwp", "mqp"):
        why_not, query = args
        return (
            logical_cls(),
            {
                "query": as_point(query, dim=dim),
                "why_not": why_not,
                "prefs": prefs,
            },
        )
    if surface == "safe_region":
        (query,) = args
        return (
            logical_cls(approximate=approximate, k=k),
            {
                "query": as_point(query, dim=dim),
                "approximate": approximate,
                "k": k,
                "prefs": prefs,
            },
        )
    if surface == "mwq":
        why_not, query = args
        return (
            logical_cls(approximate=approximate, k=k),
            {
                "query": as_point(query, dim=dim),
                "why_not": why_not,
                "approximate": approximate,
                "k": k,
                "prefs": prefs,
            },
        )
    # batch
    why_nots, query = args
    why_nots = tuple(why_nots)
    return (
        logical_cls(count=len(why_nots), approximate=approximate, k=k),
        {
            "query": as_point(query, dim=dim),
            "why_nots": why_nots,
            "approximate": approximate,
            "k": k,
            "prefs": prefs,
        },
    )
