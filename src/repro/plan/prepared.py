"""Prepared plans: epoch-pinned plan-then-execute handles.

``engine.prepare(surface, ...)`` plans without executing, which opens a
window for the dataset to mutate between planning and execution.  A
:class:`PreparedPlan` pins the dataset epoch at planning time and
refuses to execute against any other generation — raising the same
:class:`~repro.exceptions.StaleSessionError` the PR-4 session facade
uses — so a plan costed against one market never silently answers from
another.  :meth:`replan` re-plans the same request against the current
epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.exceptions import StaleSessionError
from repro.plan.explain import PlanReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine
    from repro.plan.executor import PlanNode
    from repro.plan.logical import LogicalPlan

__all__ = ["PreparedPlan"]


class PreparedPlan:
    """One planned (not yet executed) surface request."""

    def __init__(
        self,
        engine: "WhyNotEngine",
        logical: "LogicalPlan",
        node: "PlanNode",
        ctx_kwargs: dict,
        plan_cached: bool,
    ) -> None:
        self._engine = engine
        self.logical = logical
        self.node = node
        self._ctx_kwargs = dict(ctx_kwargs)
        self.plan_cached = plan_cached
        self._epoch = engine.dataset_epoch
        prefs = self._ctx_kwargs.get("prefs") or engine.prefs
        self._prefs_fingerprint = prefs.fingerprint()

    @property
    def epoch(self) -> int:
        """The dataset epoch this plan was built against."""
        return self._epoch

    @property
    def prefs_fingerprint(self) -> tuple:
        """Fingerprint of the preference model the plan was bound under
        (the engine default when the request carried no weights)."""
        return self._prefs_fingerprint

    @property
    def stale(self) -> bool:
        return self._engine.dataset_epoch != self._epoch

    def execute(self) -> Any:
        """Run the plan; refuses on a mutated dataset.

        The epoch check happens inside the engine's read gate, so under
        concurrent readers the refusal is race-free: a commit either
        lands before this execution (stale raises, with structured
        ``pinned_epoch``/``current_epoch`` attributes) or after it.
        """
        current = self._engine.dataset_epoch
        if current != self._epoch:
            # Fast-path refusal outside the gate keeps the error cheap
            # in the common single-threaded case; the gate re-checks.
            raise StaleSessionError(
                f"plan prepared at dataset epoch {self._epoch}, but the "
                f"engine is now at epoch {current}; call replan() to plan "
                "against the mutated market",
                pinned_epoch=self._epoch,
                current_epoch=current,
            )
        return self._engine._run_plan(
            self.node, self._ctx_kwargs, pinned_epoch=self._epoch
        )

    def replan(self) -> "PreparedPlan":
        """A fresh prepared plan for the same request at the current
        epoch (the stale node is discarded, never executed)."""
        return self._engine._prepare(self.logical, self._ctx_kwargs)

    def report(self, result: Any = None) -> PlanReport:
        return PlanReport(
            surface=self.logical.surface,
            root=self.node,
            plan_cached=self.plan_cached,
            result=result,
        )

    def __repr__(self) -> str:
        state = "stale" if self.stale else "live"
        return (
            f"PreparedPlan({self.logical.describe()}, "
            f"op={self.node.operator.name}, epoch={self._epoch}, {state})"
        )
