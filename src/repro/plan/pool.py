"""A per-epoch pool of prepared plans, shared across serving requests.

``engine.prepare`` already reuses planned *trees* through the
:class:`~repro.plan.cache.PlanCache`, but every call still rebuilds the
request binding and a fresh :class:`~repro.plan.prepared.PreparedPlan`.
A serving layer answering thousands of structurally identical requests
per second wants the inverse factoring: plan once per (shape, epoch,
config) key — the same key the plan cache uses — and *re-bind* the
pooled tree to each request's coordinates, which is one dataclass
construction instead of a planner visit.

The pool is read-mostly and epoch-keyed, so stale entries are never
served: a pooled node from another generation simply misses (its key
carries the old epoch) and :meth:`PlanPool.prune_stale` lets the serve
writer drop dead generations after each epoch bump.  Thread-safety
matches the engine contract — concurrent readers may race to insert
the same key, which is idempotent (both nodes are equivalent plans and
dict assignment is atomic); counters are exact once
``engine.enable_thread_safety()`` has locked the registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.plan.prepared import PreparedPlan
from repro.plan.requests import build_request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine
    from repro.plan.executor import PlanNode
    from repro.plan.logical import LogicalPlan

__all__ = ["PlanPool"]


class PlanPool:
    """Epoch-keyed pool of planned trees with per-request re-binding."""

    def __init__(self, engine: "WhyNotEngine") -> None:
        self._engine = engine
        self._entries: dict[tuple, tuple["LogicalPlan", "PlanNode"]] = {}
        obs = engine.obs
        self.hits = obs.counter(
            "plan.pool_hits", "prepared-plan pool lookups served pooled"
        )
        self.misses = obs.counter(
            "plan.pool_misses", "prepared-plan pool lookups that planned"
        )
        self.pruned = obs.counter(
            "plan.pool_pruned", "pooled plans dropped from dead epochs"
        )

    def prepare(self, surface: str, *args, **kwargs) -> PreparedPlan:
        """A :class:`PreparedPlan` for one surface request, reusing the
        pooled tree when this (shape, epoch, config) was seen before.

        The returned plan is pinned to the engine's current epoch
        exactly like ``engine.prepare`` — executing it after a mutation
        raises :class:`~repro.exceptions.StaleSessionError`.
        """
        engine = self._engine
        logical, ctx_kwargs = build_request(engine, surface, *args, **kwargs)
        prefs = ctx_kwargs.get("prefs") or engine.prefs
        key = (
            logical.cache_key(),
            engine.dataset_epoch,
            engine._config_fp,
            prefs.fingerprint(),
        )
        entry = self._entries.get(key)
        if entry is None:
            self.misses.inc()
            prepared = engine._prepare(logical, ctx_kwargs)
            self._entries[key] = (prepared.logical, prepared.node)
            return prepared
        self.hits.inc()
        pooled_logical, node = entry
        return PreparedPlan(
            engine, pooled_logical, node, ctx_kwargs, plan_cached=True
        )

    def prune_stale(self) -> int:
        """Drop pooled entries from generations other than the current
        epoch; returns (and counts) how many."""
        epoch = self._engine.dataset_epoch
        stale = [key for key in self._entries if key[1] != epoch]
        for key in stale:
            self._entries.pop(key, None)
        if stale:
            self.pruned.inc(len(stale))
        return len(stale)

    def clear(self) -> int:
        dropped = len(self._entries)
        if dropped:
            self._entries.clear()
            self.pruned.inc(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PlanPool(entries={len(self._entries)}, "
            f"hits={int(self.hits.value)}, misses={int(self.misses.value)})"
        )
