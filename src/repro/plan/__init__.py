"""``repro.plan`` — logical plans, cost-based planning, and EXPLAIN.

The planner/executor decomposition of the why-not engine:

* :mod:`repro.plan.logical` — coordinate-free descriptions of each
  paper surface (RSL, Λ, Algorithms 1-4, approx-MWQ, batch);
* :mod:`repro.plan.operators` — physical operators wrapping the
  existing execution paths behind one protocol;
* :mod:`repro.plan.cost` — dataset statistics and the calibrated cost
  model;
* :mod:`repro.plan.planner` — ``auto`` (cost-based) vs. ``fixed``
  (historical dispatch) operator selection;
* :mod:`repro.plan.executor` — plan nodes and the span-instrumented
  tree executor;
* :mod:`repro.plan.cache` — planned trees keyed by (shape, epoch,
  config fingerprint);
* :mod:`repro.plan.explain` — EXPLAIN reports (estimated vs. actual);
* :mod:`repro.plan.prepared` — epoch-pinned plan-then-execute handles;
* :mod:`repro.plan.pool` — a per-epoch prepared-plan pool the serving
  layer re-binds across requests.

Layering: this package sits between the algorithm layer
(``repro.core``/``repro.kernels``/``repro.index``) and the engine
facade; it must never import ``repro.experiments`` or ``repro.viz``
(checked in CI).
"""

from repro.plan.cache import PlanCache, config_fingerprint
from repro.plan.cost import CostEstimate, CostModel, DatasetStats
from repro.plan.executor import ExecutionContext, PlanNode, execute_plan
from repro.plan.explain import (
    PlanReport,
    render_plan_tree,
    validate_plan_report,
)
from repro.plan.logical import (
    BatchWhyNotQuery,
    LambdaQuery,
    LogicalPlan,
    MembershipMaskQuery,
    MQPQuery,
    MWPQuery,
    MWQQuery,
    RetainedMaskQuery,
    RSLQuery,
    SafeRegionQuery,
)
from repro.plan.operators import Operator, candidate_operators
from repro.plan.planner import Planner
from repro.plan.pool import PlanPool
from repro.plan.prepared import PreparedPlan

__all__ = [
    "BatchWhyNotQuery",
    "CostEstimate",
    "CostModel",
    "DatasetStats",
    "ExecutionContext",
    "LambdaQuery",
    "LogicalPlan",
    "MembershipMaskQuery",
    "MQPQuery",
    "MWPQuery",
    "MWQQuery",
    "Operator",
    "PlanCache",
    "PlanPool",
    "PlanNode",
    "PlanReport",
    "Planner",
    "PreparedPlan",
    "RSLQuery",
    "RetainedMaskQuery",
    "SafeRegionQuery",
    "candidate_operators",
    "config_fingerprint",
    "execute_plan",
    "render_plan_tree",
    "validate_plan_report",
]
