"""Physical operators: the execution strategies behind each surface.

Every operator wraps one *existing* implementation path of the codebase
(per-customer index probes, blocked kernels, the DSLCache-backed
staircase fold, exact vs. approximate safe regions) behind a uniform
protocol the planner can choose between:

* :meth:`Operator.available` — capability gating.  ``batch_kernels=
  False`` *removes* the kernel operators from the candidate set (it is a
  capability, not a preference), so configurations that force the
  per-customer oracle keep exercising exactly that path.
* :meth:`Operator.fixed_choice` — whether this operator is the one the
  pre-planner engine dispatched to under the given config; ``planner=
  "fixed"`` reproduces that dispatch bit-for-bit.
* :meth:`Operator.estimate` — predicted cost from dataset statistics,
  used by ``planner="auto"``.
* :meth:`Operator.run` — the actual execution, emitting the same spans,
  counters and result-cache traffic as the pre-planner engine methods
  (the caches themselves stay on the engine; scoped invalidation in
  :mod:`repro.core.invalidation` reads them there).

Operator *answers* are bit-identical across alternatives by the
property-tested kernel/oracle and cached/direct equivalences of PRs
1-2, so a planner choice can change the runtime but never the result.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro.config import WhyNotConfig
from repro.core._verify import verify_membership
from repro.core.approx import ApproximateDSLStore
from repro.core.explain import explain_why_not
from repro.core.mqp import modify_query_point
from repro.core.mwp import modify_why_not_point
from repro.core.mwq import modify_query_and_why_not_point
from repro.core.safe_region import (
    SafeRegion,
    SafeRegionStats,
    compute_safe_region,
)
from repro.geometry import region_array as _ra
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.geometry.region import BoxRegion
from repro.kernels.membership import (
    _VERIFY_RTOL,
    batch_verify_membership,
    batch_window_membership,
)
from repro.kernels.pruned import batch_window_membership_pruned
from repro.plan.cost import CostEstimate, CostModel, DatasetStats
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.reverse import reverse_skyline_bbrs

if TYPE_CHECKING:  # pragma: no cover
    from repro.plan.executor import ExecutionContext, PlanNode
    from repro.plan.logical import LogicalPlan

__all__ = [
    "Operator",
    "candidate_operators",
    "ensure_approx_store",
    "ensure_shard_executor",
]


def _shard_fold_enabled(config: WhyNotConfig) -> bool:
    """May the sharded safe-region fold replace the sequential one?

    Requires float64 (the fold's bit-identity argument needs exact box
    corners) and no box budget (truncating an intermediate breaks the
    order-invariance the cross-shard merge relies on)."""
    return (
        config.shards > 1
        and config.sr_box_budget == 0
        and config.shard_dtype == "float64"
    )


def ensure_shard_executor(engine):
    """The engine's shard executor for the current dataset epoch.

    Lazily imported so :mod:`repro.core` (which loads this module via
    the engine) never pulls :mod:`repro.shard` — and through it the
    multiprocessing machinery — unless a sharded operator actually runs.
    Keyed by epoch: a mutation makes the partition and the published
    shared-memory copies stale, so stale executors are closed and
    rebuilt on the next sharded call.
    """
    from repro.shard.executor import ShardExecutor

    key = engine.dataset_epoch
    executor = engine._shard_executors.get(key)
    if executor is None:
        for stale in engine._shard_executors.values():
            stale.close()
        engine._shard_executors.clear()
        config = engine.config
        executor = ShardExecutor(
            engine.products,
            None if engine.monochromatic else engine.customers,
            shards=config.shards,
            backend=config.shard_backend,
            partition=config.shard_partition,
            dtype=config.shard_dtype,
            block_size=engine.kernel_block_size,
            prune=config.prune == "always",
            prune_tile_size=engine.prune_tile_size,
            obs=engine.obs,
            stats=engine.shard_stats,
            kernel_counters=engine._kernel_counters,
            prune_counters=engine._prune_counters,
        )
        engine._shard_executors[key] = executor
    return executor


def _observe_regions(engine):
    """Region-kernel counting scope — a null context when not tracing
    (the kernels' module-level sink stays untouched)."""
    if engine.obs.enabled:
        return _ra.observe_region_ops(engine.obs.metrics)
    return nullcontext()


def _absorb_safe_region_stats(engine, stats) -> None:
    """Fold one build's counters into the engine-lifetime totals the
    registry exports under ``safe_region.*``."""
    totals = engine.safe_region_totals
    totals.members += stats.members
    totals.intersections += stats.intersections
    totals.boxes_before_simplify += stats.boxes_before_simplify
    totals.boxes_after_simplify += stats.boxes_after_simplify
    totals.peak_boxes = max(totals.peak_boxes, stats.peak_boxes)
    totals.budget_truncations += stats.budget_truncations
    totals.cache_hits += stats.cache_hits
    totals.cache_misses += stats.cache_misses
    totals.member_seconds += stats.member_seconds
    totals.build_seconds += stats.build_seconds
    if stats.early_exit:
        totals.early_exit = True


def ensure_approx_store(engine, k: int) -> ApproximateDSLStore:
    """The engine's (cached) sampled-DSL store for parameter ``k``,
    keyed by ``(k, dataset_epoch)`` so a stale-epoch store is never
    served (scoped invalidation repairs and re-keys them in place)."""
    key = (k, engine.dataset_epoch)
    store = engine._approx_stores.get(key)
    if store is None:
        store = ApproximateDSLStore(
            engine.index,
            engine.customers,
            k=k,
            config=engine.config,
            self_exclude=engine.monochromatic,
            dsl_cache=engine.dsl_cache,
        )
        engine._approx_stores[key] = store
    return store


def _ctx_prefs(ctx: "ExecutionContext"):
    """``(prefs, default)`` for one execution: the request's preference
    model and whether it matches the engine default.  The engine's
    result caches (RSL, safe regions, approx stores) hold default-prefs
    answers only; a non-default request computes fresh and uncached,
    counted under ``prefs.cache_bypass``."""
    eng = ctx.engine
    prefs = ctx.prefs if ctx.prefs is not None else eng.prefs
    default = prefs.fingerprint() == eng.prefs.fingerprint()
    if not default:
        eng._prefs_cache_bypass.inc()
    return prefs, default


def _resolve_batch(ctx: "ExecutionContext") -> tuple[np.ndarray, np.ndarray]:
    """``(points, self_positions)`` for the customers in ``ctx.why_nots``
    (-1 marks coordinate-addressed customers with no self-exclusion)."""
    eng = ctx.engine
    why_nots = ctx.why_nots
    count = len(why_nots)
    points = np.empty((count, eng.dim), dtype=np.float64)
    self_positions = np.full(count, -1, dtype=np.int64)
    for i, why_not in enumerate(why_nots):
        point, exclude = eng._resolve_customer(why_not)
        points[i] = point
        if exclude:
            self_positions[i] = exclude[0]
    return points, self_positions


class Operator:
    """One physical execution strategy for one logical surface."""

    name: ClassVar[str] = "abstract"
    span_name: ClassVar[str] = "engine.abstract"

    def available(self, config: WhyNotConfig, stats: DatasetStats) -> bool:
        """May the planner consider this operator at all?"""
        return True

    def fixed_choice(self, config: WhyNotConfig) -> bool:
        """Is this the operator the pre-planner engine dispatched to?"""
        return True

    def child_plans(self, logical: "LogicalPlan") -> tuple:
        """The sub-plans this operator actually executes (defaults to
        the logical definition; e.g. the sequential batch operator
        drops the membership-prefilter child)."""
        return logical.child_plans()

    def estimate(
        self, logical: "LogicalPlan", stats: DatasetStats, model: CostModel
    ) -> CostEstimate:
        raise NotImplementedError

    def run(self, ctx: "ExecutionContext", node: "PlanNode", span) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<operator {self.name}>"


# ----------------------------------------------------------------------
# Reverse skyline (BBRS candidate generation + membership verification)
# ----------------------------------------------------------------------
class _ReverseSkylineOp(Operator):
    span_name = "engine.reverse_skyline"
    batch: ClassVar[bool] = True

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        key = q.tobytes()
        cached = eng._rsl_cache.get(key) if default else None
        if cached is None:
            cached = reverse_skyline_bbrs(
                eng.index,
                eng.customers,
                q,
                policy=prefs.policy,
                self_exclude=eng.monochromatic,
                batch_kernels=self.batch,
                block_size=eng.kernel_block_size,
                counters=eng._kernel_counters,
                weights=prefs.weight_array(eng.dim),
            )
            if default:
                eng._rsl_cache[key] = cached
            span.set(members=int(cached.size))
        else:
            span.set(members=int(cached.size), result_cache="hit")
        return cached


class RSLKernelVerify(_ReverseSkylineOp):
    """BBRS with the blocked-kernel verification sweep (PR 1)."""

    name = "rsl-kernel-verify"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune != "always"
        )

    def estimate(self, logical, stats, model):
        rows = stats.expected_candidates
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.kernel_seconds(rows, stats) + model.DISPATCH_S,
            detail=f"kernel verify of ~{rows:.0f} candidates x n={stats.n}",
        )


class RSLIndexVerify(_ReverseSkylineOp):
    """BBRS with one window probe per candidate (the oracle path)."""

    name = "rsl-index-verify"
    batch = False

    def fixed_choice(self, config):
        return not config.batch_kernels

    def estimate(self, logical, stats, model):
        rows = stats.expected_candidates
        return CostEstimate(
            ops=rows * model.window_nodes(stats),
            seconds=rows * model.window_seconds(stats) + model.DISPATCH_S,
            detail=f"~{rows:.0f} window probes on {stats.backend}",
        )


# ----------------------------------------------------------------------
# Membership mask (is_member for many customers at once)
# ----------------------------------------------------------------------
class _MembershipOp(Operator):
    span_name = "engine.membership_mask"
    batch: ClassVar[bool] = True

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        points, self_positions = _resolve_batch(ctx)
        count = points.shape[0]
        # One predicate per customer regardless of execution path — the
        # counter-invariance contract of the batch kernels.
        eng._membership_tests.inc(count)
        span.set(customers=count, batch=self.batch)
        if self.batch:
            return batch_window_membership(
                eng.products,
                points,
                ctx.query,
                prefs.policy,
                self_positions=self_positions,
                block_size=eng.kernel_block_size,
                counters=eng._kernel_counters,
                dims=prefs.support(eng.dim),
            )
        q = ctx.query
        w = prefs.weight_array(eng.dim)
        return np.fromiter(
            (
                verify_membership(
                    eng.index,
                    points[i],
                    q,
                    prefs.policy,
                    (int(self_positions[i]),) if self_positions[i] >= 0 else (),
                    rtol=0.0,
                    weights=w,
                )
                for i in range(count)
            ),
            dtype=bool,
            count=count,
        )


class MembershipKernel(_MembershipOp):
    """One blocked kernel pass over all probes (no index queries)."""

    name = "membership-kernel"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune != "always"
        )

    def estimate(self, logical, stats, model):
        rows = max(1, getattr(logical, "count", 1))
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.kernel_seconds(rows, stats) + model.DISPATCH_S,
            detail=f"kernel pass, {rows} probes x n={stats.n}",
        )


class MembershipIndexLoop(_MembershipOp):
    """The per-customer ``verify_membership`` oracle loop."""

    name = "membership-index-loop"
    batch = False

    def fixed_choice(self, config):
        return not config.batch_kernels

    def estimate(self, logical, stats, model):
        rows = max(1, getattr(logical, "count", 1))
        return CostEstimate(
            ops=rows * model.window_nodes(stats),
            seconds=rows * model.window_seconds(stats) + model.DISPATCH_S,
            detail=f"{rows} window probes on {stats.backend}",
        )


# ----------------------------------------------------------------------
# Retained mask (which RSL members survive a refined query)
# ----------------------------------------------------------------------
class _RetainedOp(Operator):
    span_name = "engine.retained_mask"
    batch: ClassVar[bool] = True

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        members = np.asarray(ctx.members, dtype=np.int64)
        span.set(members=int(members.size), batch=self.batch)
        if members.size == 0:
            return np.empty(0, dtype=bool)
        eng._membership_tests.inc(int(members.size))
        if self.batch:
            return batch_verify_membership(
                eng.products,
                eng.customers[members],
                ctx.refined_query,
                prefs.policy,
                self_positions=members if eng.monochromatic else None,
                block_size=eng.kernel_block_size,
                counters=eng._kernel_counters,
                dims=prefs.support(eng.dim),
            )
        w = prefs.weight_array(eng.dim)
        retained = np.empty(members.size, dtype=bool)
        for i, position in enumerate(members):
            point, exclude = eng._resolve_customer(int(position))
            retained[i] = verify_membership(
                eng.index, point, ctx.refined_query, prefs.policy, exclude,
                weights=w,
            )
        return retained


class RetainedKernel(_RetainedOp):
    name = "retained-kernel"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels

    def fixed_choice(self, config):
        return config.batch_kernels and config.shards == 1

    def estimate(self, logical, stats, model):
        rows = stats.expected_rsl
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.kernel_seconds(rows, stats) + model.DISPATCH_S,
            detail=f"kernel verify of ~{rows:.0f} members",
        )


class RetainedIndexLoop(_RetainedOp):
    name = "retained-index-loop"
    batch = False

    def fixed_choice(self, config):
        return not config.batch_kernels

    def estimate(self, logical, stats, model):
        rows = stats.expected_rsl
        return CostEstimate(
            ops=rows * model.window_nodes(stats),
            seconds=rows * model.window_seconds(stats) + model.DISPATCH_S,
            detail=f"~{rows:.0f} tolerance probes on {stats.backend}",
        )


# ----------------------------------------------------------------------
# Single-strategy surfaces: Λ window, Algorithm 1, Algorithm 2
# ----------------------------------------------------------------------
class LambdaWindow(Operator):
    """Aspect 1: one window query for the ``Λ`` culprit set."""

    name = "lambda-window"
    span_name = "engine.explain"

    def estimate(self, logical, stats, model):
        return CostEstimate(
            ops=model.window_nodes(stats),
            seconds=model.window_seconds(stats) + model.DISPATCH_S,
            detail=f"one window query on {stats.backend}",
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        point, exclude = eng._resolve_customer(ctx.why_not)
        result = explain_why_not(
            eng.index, point, ctx.query, prefs.policy, exclude,
            weights=prefs.weight_array(eng.dim),
        )
        span.set(culprits=len(result.culprit_positions))
        return result


class _StaircaseOp(Operator):
    """Common cost shape of the Algorithm 1/2 staircase scans."""

    def estimate(self, logical, stats, model):
        lam = stats.expected_rsl + 2.0
        return CostEstimate(
            ops=2.0 * model.window_nodes(stats) + lam * lam,
            seconds=(
                2.0 * model.window_seconds(stats)
                + lam * lam * model.PY_OP_S * 0.1
                + model.DISPATCH_S
            ),
            detail=f"window + staircase scan (~{lam:.0f} boundary points)",
        )


class MWPStaircase(_StaircaseOp):
    """Algorithm 1 — move the why-not point to the cheapest boundary."""

    name = "mwp-staircase"
    span_name = "engine.mwp"

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        point, exclude = eng._resolve_customer(ctx.why_not)
        return modify_why_not_point(
            eng.index,
            point,
            ctx.query,
            config=eng.config,
            weights=prefs.cost_weights(eng.beta),
            normalizer=eng.normalizer,
            exclude=exclude,
            pref_weights=prefs.weight_array(eng.dim),
        )


class MQPStaircase(_StaircaseOp):
    """Algorithm 2 — move the query point to the cheapest admission."""

    name = "mqp-staircase"
    span_name = "engine.mqp"

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        point, exclude = eng._resolve_customer(ctx.why_not)
        return modify_query_point(
            eng.index,
            point,
            ctx.query,
            config=eng.config,
            weights=prefs.cost_weights(eng.alpha),
            normalizer=eng.normalizer,
            exclude=exclude,
            pref_weights=prefs.weight_array(eng.dim),
        )


# ----------------------------------------------------------------------
# Safe region (Algorithm 3 exact, Section VI.B approximate)
# ----------------------------------------------------------------------
class _ExactSafeRegionOp(Operator):
    span_name = "engine.safe_region"
    use_dsl_cache: ClassVar[bool] = True

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        key = q.tobytes()
        cached = eng._sr_cache.get(key) if default else None
        if cached is not None:
            span.set(
                members=cached.stats.members if cached.stats else 0,
                boxes=len(cached.region),
                early_exit=bool(cached.stats and cached.stats.early_exit),
                result_cache="hit",
            )
            return cached
        with _observe_regions(eng):
            rsl = ctx.execute(node.children[0])
            # compute_safe_region itself bypasses the DSL cache for
            # partial-support weights (full-support ones leave the
            # regions unchanged, so sharing the unweighted cache is safe).
            cached = compute_safe_region(
                eng.index,
                eng.customers,
                q,
                rsl,
                eng._geometry_bounds(q),
                config=eng.config,
                self_exclude=eng.monochromatic,
                dsl_cache=eng.dsl_cache if self.use_dsl_cache else None,
                weights=prefs.weight_array(eng.dim),
            )
            span.set(
                members=cached.stats.members,
                boxes=len(cached.region),
                early_exit=cached.stats.early_exit,
            )
        eng.last_safe_region_stats = cached.stats
        _absorb_safe_region_stats(eng, cached.stats)
        if default:
            eng._sr_cache[key] = cached
        return cached


class SafeRegionCachedFold(_ExactSafeRegionOp):
    """Exact fold reusing the DSLCache's staircase regions (PR 2)."""

    name = "sr-cached-fold"
    use_dsl_cache = True

    def available(self, config, stats):
        return config.dsl_cache

    def fixed_choice(self, config):
        return config.dsl_cache and not _shard_fold_enabled(config)

    def estimate(self, logical, stats, model):
        members = stats.expected_rsl
        cold = max(0.0, members - stats.dsl_warm)
        return CostEstimate(
            ops=cold * stats.n * stats.d + members,
            seconds=(
                cold * model.dsl_build_seconds(stats)
                + model.region_fold_seconds(members, stats)
                + model.DISPATCH_S
            ),
            detail=(
                f"~{members:.0f} members, ~{cold:.0f} cold DSL builds "
                f"({stats.dsl_warm} warm)"
            ),
        )


class SafeRegionDirectFold(_ExactSafeRegionOp):
    """Exact fold rebuilding every member's staircase from scratch."""

    name = "sr-direct-fold"
    use_dsl_cache = False

    def fixed_choice(self, config):
        return not config.dsl_cache and not _shard_fold_enabled(config)

    def estimate(self, logical, stats, model):
        members = stats.expected_rsl
        return CostEstimate(
            ops=members * stats.n * stats.d + members,
            seconds=(
                members * model.dsl_build_seconds(stats)
                + model.region_fold_seconds(members, stats)
                + model.DISPATCH_S
            ),
            detail=f"~{members:.0f} members, all staircases rebuilt",
        )


class SafeRegionApproxStore(Operator):
    """Sampled-DSL approximation via the precomputed store."""

    name = "sr-approx-store"
    span_name = "engine.safe_region"

    def estimate(self, logical, stats, model):
        members = stats.expected_rsl
        k = getattr(logical, "k", 10)
        return CostEstimate(
            ops=members * k * stats.d,
            seconds=(
                members * k * stats.d * model.VECTOR_OP_S * 50
                + model.region_fold_seconds(members, stats)
                + model.DISPATCH_S
            ),
            detail=f"~{members:.0f} members x k={k} sampled skylines",
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        k = node.logical.k
        key = (q.tobytes(), k)
        span.set(approximate=True, k=k)
        cached = eng._approx_sr_cache.get(key) if default else None
        if cached is not None:
            span.set(result_cache="hit")
            return cached
        with _observe_regions(eng):
            if default:
                store = ensure_approx_store(eng, k)
            else:
                # Non-default preference: a one-shot store (lazy, so it
                # only samples the members of this query).  The shared
                # DSL cache may seed it only under full support, where
                # the weighted and unweighted skylines coincide.
                store = ApproximateDSLStore(
                    eng.index,
                    eng.customers,
                    k=k,
                    config=eng.config,
                    self_exclude=eng.monochromatic,
                    dsl_cache=eng.dsl_cache if prefs.full_support else None,
                    weights=prefs.weight_array(eng.dim),
                )
            rsl = ctx.execute(node.children[0])
            cached = store.safe_region(q, rsl, eng._geometry_bounds(q))
        if default:
            eng._approx_sr_cache[key] = cached
        return cached


# ----------------------------------------------------------------------
# MWQ (Algorithm 4 over the exact or approximate safe region)
# ----------------------------------------------------------------------
class MWQCombine(Operator):
    """Algorithm 4: intersect the safe region with the why-not DDR."""

    name = "mwq-combine"
    span_name = "engine.mwq"

    def estimate(self, logical, stats, model):
        return CostEstimate(
            ops=6.0 * model.window_nodes(stats),
            seconds=6.0 * model.window_seconds(stats) + model.DISPATCH_S,
            detail="case analysis + candidate scoring over SR(q)",
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, _ = _ctx_prefs(ctx)
        point, exclude = eng._resolve_customer(ctx.why_not)
        span.set(approximate=node.logical.approximate)
        region = ctx.execute(node.children[0])
        bounds = eng._geometry_bounds(q)
        # Position-addressed customers share the cached staircase region
        # (the cache's self-exclusion convention matches _resolve_customer's).
        # Valid for every *full-support* preference — the anti-dominance
        # region depends only on the weight support, not the magnitudes.
        ddr = None
        if (
            eng.dsl_cache is not None
            and prefs.full_support
            and isinstance(ctx.why_not, (int, np.integer))
        ):
            ddr = eng.dsl_cache.region(int(ctx.why_not), bounds)
        return modify_query_and_why_not_point(
            eng.index,
            point,
            q,
            safe_region=region,
            bounds=bounds,
            config=eng.config,
            weights=prefs.cost_weights(eng.beta),
            normalizer=eng.normalizer,
            exclude=exclude,
            ddr_why_not=ddr,
            pref_weights=prefs.weight_array(eng.dim),
        )


# ----------------------------------------------------------------------
# Batch why-not answering
# ----------------------------------------------------------------------
class _BatchOp(Operator):
    span_name = "engine.answer_batch"

    def _answer(self, ctx, why_not, q):
        from repro.core.batch import answer_why_not

        prefs, _ = _ctx_prefs(ctx)
        return answer_why_not(
            ctx.engine,
            why_not,
            q,
            approximate=ctx.approximate,
            k=ctx.k,
            weights=prefs.weights,
        )


class BatchPrefilter(_BatchOp):
    """Resolve every question's membership in one kernel pass first;
    members skip their four per-question window queries entirely."""

    name = "batch-prefilter"

    def available(self, config, stats):
        return config.batch_kernels

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune != "always"
        )

    def estimate(self, logical, stats, model):
        count = max(1, getattr(logical, "count", 1))
        member_rate = min(0.5, stats.expected_rsl / max(1, stats.m))
        question = 4.0 * model.window_seconds(stats) + 4.0 * model.DISPATCH_S
        return CostEstimate(
            ops=count * stats.n * stats.d,
            seconds=(
                model.kernel_seconds(count, stats)
                + count * (1.0 - member_rate) * question
                + model.DISPATCH_S
            ),
            detail=f"kernel prefilter + ~{count} pipelines",
        )

    def run(self, ctx, node, span):
        from repro.core.batch import _member_answer

        q = ctx.query
        why_nots = list(ctx.why_nots)
        span.set(questions=len(why_nots), prefilter=True)
        ctx.execute(node.children[0])  # Warm the safe-region cache once.
        if not why_nots:
            return []
        members = ctx.execute(node.children[1])
        return [
            _member_answer(ctx.engine, why_not, q)
            if members[i]
            else self._answer(ctx, why_not, q)
            for i, why_not in enumerate(why_nots)
        ]


class BatchSequential(_BatchOp):
    """Run the full per-question pipeline for every question."""

    name = "batch-sequential"

    def fixed_choice(self, config):
        return not config.batch_kernels

    def child_plans(self, logical):
        # No membership prefilter: only the shared safe-region warmup.
        return logical.child_plans()[:1]

    def estimate(self, logical, stats, model):
        count = max(1, getattr(logical, "count", 1))
        question = 4.0 * model.window_seconds(stats) + 4.0 * model.DISPATCH_S
        return CostEstimate(
            ops=count * 4.0 * model.window_nodes(stats),
            seconds=count * question + model.DISPATCH_S,
            detail=f"{count} full per-question pipelines",
        )

    def run(self, ctx, node, span):
        q = ctx.query
        why_nots = list(ctx.why_nots)
        span.set(questions=len(why_nots), prefilter=False)
        ctx.execute(node.children[0])  # Warm the safe-region cache once.
        return [self._answer(ctx, why_not, q) for why_not in why_nots]


# ----------------------------------------------------------------------
# Sharded operators (fan-out over repro.shard, merge in the parent)
# ----------------------------------------------------------------------
class RSLShardedKernel(_ReverseSkylineOp):
    """BBRS with the verification sweep fanned out across shards.

    The candidate generation stays in the parent (it is one cheap
    vectorised pruning pass); only the expensive per-candidate
    verification kernel is sharded.  Merged result is bit-identical to
    :class:`RSLKernelVerify` for float64 because membership is decided
    row-by-row."""

    name = "rsl-sharded-kernel"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels and config.shards > 1

    def fixed_choice(self, config):
        return config.batch_kernels and config.shards > 1

    def estimate(self, logical, stats, model):
        rows = stats.expected_candidates
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.sharded_kernel_seconds(rows, stats)
            + model.DISPATCH_S,
            detail=(
                f"sharded verify of ~{rows:.0f} candidates x n={stats.n} "
                f"({stats.shards} shards, {model.shard_workers(stats)} "
                f"workers)"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        key = q.tobytes()
        cached = eng._rsl_cache.get(key) if default else None
        if cached is None:
            candidates = np.asarray(
                global_skyline_candidates(
                    eng.products,
                    eng.customers,
                    q,
                    self_exclude=eng.monochromatic,
                    weights=prefs.weight_array(eng.dim),
                ),
                dtype=np.int64,
            )
            if candidates.size == 0:
                cached = candidates
            else:
                executor = ensure_shard_executor(eng)
                mask = executor.membership_rows(
                    candidates,
                    q,
                    prefs.policy,
                    self_positions=(
                        candidates if eng.monochromatic else None
                    ),
                    dims=prefs.support(eng.dim),
                )
                cached = candidates[mask]
            if default:
                eng._rsl_cache[key] = cached
            span.set(members=int(cached.size))
        else:
            span.set(members=int(cached.size), result_cache="hit")
        return cached


class MembershipSharded(_MembershipOp):
    """The blocked membership kernel fanned out across shards (probe
    points are shipped in the payloads; the product matrix is read from
    shared memory)."""

    name = "membership-sharded"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels and config.shards > 1

    def fixed_choice(self, config):
        return config.batch_kernels and config.shards > 1

    def estimate(self, logical, stats, model):
        rows = max(1, getattr(logical, "count", 1))
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.sharded_kernel_seconds(rows, stats)
            + model.DISPATCH_S,
            detail=(
                f"sharded kernel pass, {rows} probes x n={stats.n} "
                f"({stats.shards} shards)"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        points, self_positions = _resolve_batch(ctx)
        count = points.shape[0]
        eng._membership_tests.inc(count)
        span.set(customers=count, batch=True, sharded=True)
        if count == 0:
            return np.empty(0, dtype=bool)
        executor = ensure_shard_executor(eng)
        return executor.membership_points(
            points,
            ctx.query,
            prefs.policy,
            self_positions=self_positions,
            dims=prefs.support(eng.dim),
        )


class RetainedSharded(_RetainedOp):
    """The tolerance-aware retained-mask verification kernel fanned out
    across the customer shards."""

    name = "retained-sharded"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels and config.shards > 1

    def fixed_choice(self, config):
        return config.batch_kernels and config.shards > 1

    def estimate(self, logical, stats, model):
        rows = stats.expected_rsl
        return CostEstimate(
            ops=rows * stats.n * stats.d,
            seconds=model.sharded_kernel_seconds(rows, stats)
            + model.DISPATCH_S,
            detail=(
                f"sharded verify of ~{rows:.0f} members "
                f"({stats.shards} shards)"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        members = np.asarray(ctx.members, dtype=np.int64)
        span.set(members=int(members.size), batch=True, sharded=True)
        if members.size == 0:
            return np.empty(0, dtype=bool)
        eng._membership_tests.inc(int(members.size))
        executor = ensure_shard_executor(eng)
        return executor.membership_rows(
            members,
            ctx.refined_query,
            prefs.policy,
            self_positions=members if eng.monochromatic else None,
            rtol=_VERIFY_RTOL,
            dims=prefs.support(eng.dim),
        )


class SafeRegionShardedFold(Operator):
    """Algorithm 3 with the member fold fanned out across shards.

    Each shard folds a contiguous slice of ``RSL(q)`` exactly like the
    sequential loop; the parent intersects the partial regions.  The
    final set of maximal boxes is order-invariant (box intersection
    distributes; containment survives further intersection), so the
    region equals the sequential one — asserted bit-identical on
    canonicalised box arrays by the property tests.  Gated to float64
    and ``sr_box_budget == 0``; the DSL cache is bypassed (workers
    rebuild staircases from the shared matrices)."""

    name = "sr-sharded-fold"
    span_name = "engine.safe_region"

    def available(self, config, stats):
        return _shard_fold_enabled(config)

    def fixed_choice(self, config):
        return _shard_fold_enabled(config)

    def estimate(self, logical, stats, model):
        members = stats.expected_rsl
        return CostEstimate(
            ops=members * stats.n * stats.d + members,
            seconds=model.sharded_fold_seconds(members, stats)
            + model.DISPATCH_S,
            detail=(
                f"sharded fold of ~{members:.0f} members "
                f"({stats.shards} shards, {model.shard_workers(stats)} "
                f"workers)"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        key = q.tobytes()
        cached = eng._sr_cache.get(key) if default else None
        if cached is not None:
            span.set(
                members=cached.stats.members if cached.stats else 0,
                boxes=len(cached.region),
                early_exit=bool(cached.stats and cached.stats.early_exit),
                result_cache="hit",
            )
            return cached
        t_start = time.perf_counter()
        with _observe_regions(eng):
            rsl = ctx.execute(node.children[0])
            executor = ensure_shard_executor(eng)
            bounds = eng._geometry_bounds(q)
            lo, hi, info = executor.safe_region_fold(
                rsl,
                bounds.lo,
                bounds.hi,
                eng.config.sort_dim,
                self_exclude=eng.monochromatic,
                chunk_size=eng.config.sr_chunk_size,
                weights=prefs.weight_array(eng.dim),
            )
            region = BoxRegion.from_arrays(lo, hi, dim=eng.dim)
            point = as_point(q, dim=eng.dim)
            if not region.contains_point(point):
                region = region.union(
                    BoxRegion([Box(point, point)], dim=eng.dim)
                )
            stats = SafeRegionStats()
            stats.members = info["members"]
            stats.intersections = info["intersections"]
            stats.boxes_before_simplify = info["boxes_before_simplify"]
            stats.boxes_after_simplify = info["boxes_after_simplify"]
            stats.peak_boxes = info["peak_boxes"]
            if info["early_exit"]:
                stats.early_exit = True
            stats.build_seconds += time.perf_counter() - t_start
            cached = SafeRegion(
                query=point,
                region=region,
                rsl_positions=np.asarray(rsl, dtype=np.int64),
                stats=stats,
            )
            span.set(
                members=stats.members,
                boxes=len(region),
                early_exit=stats.early_exit,
                sharded=True,
            )
        eng.last_safe_region_stats = stats
        _absorb_safe_region_stats(eng, stats)
        if default:
            eng._sr_cache[key] = cached
        return cached


class BatchSharded(BatchPrefilter):
    """Batch answering over the sharded prefilter: the membership and
    safe-region children are planned recursively, so under a sharded
    config they resolve to :class:`MembershipSharded` /
    :class:`SafeRegionShardedFold`; the per-question pipelines stay in
    the parent (they are index-probe bound, not kernel bound)."""

    name = "batch-sharded"

    def available(self, config, stats):
        return config.batch_kernels and config.shards > 1

    def fixed_choice(self, config):
        return config.batch_kernels and config.shards > 1

    def estimate(self, logical, stats, model):
        count = max(1, getattr(logical, "count", 1))
        member_rate = min(0.5, stats.expected_rsl / max(1, stats.m))
        question = 4.0 * model.window_seconds(stats) + 4.0 * model.DISPATCH_S
        return CostEstimate(
            ops=count * stats.n * stats.d,
            seconds=(
                model.sharded_kernel_seconds(count, stats)
                + count * (1.0 - member_rate) * question
                + model.DISPATCH_S
            ),
            detail=(
                f"sharded prefilter + ~{count} pipelines "
                f"({stats.shards} shards)"
            ),
        )


# ----------------------------------------------------------------------
# Pruned operators (filter-refinement over repro.prune tile summaries)
# ----------------------------------------------------------------------
def _pruned_membership(
    eng, points, query, self_positions, rtol=0.0, policy=None, dims=None
):
    """One pruned membership sweep reading the engine's epoch-versioned
    product summaries; bit-identical to the plain kernel."""
    summaries = eng.prune_summaries
    return batch_window_membership_pruned(
        eng.products,
        points,
        query,
        eng.config.policy if policy is None else policy,
        self_positions=self_positions,
        block_size=eng.kernel_block_size,
        rtol=rtol,
        counters=eng._kernel_counters,
        prune_counters=eng._prune_counters,
        tile_size=eng.prune_tile_size,
        product_bounds=(
            summaries.product_bounds() if summaries is not None else None
        ),
        dims=dims,
    )


class RSLPrunedKernel(_ReverseSkylineOp):
    """BBRS with the verification sweep through the pruned kernel: the
    candidate generation stays identical, each candidate's membership is
    decided by the filter-refinement sweep.  Bit-identical to
    :class:`RSLKernelVerify` because membership is decided row-by-row
    and the classifier is conservative."""

    name = "rsl-pruned-kernel"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels and config.prune != "off"

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune == "always"
        )

    def estimate(self, logical, stats, model):
        rows = stats.expected_candidates
        return CostEstimate(
            ops=rows * stats.n * stats.d * stats.prune_refine_rate,
            seconds=model.pruned_kernel_seconds(rows, stats)
            + model.DISPATCH_S,
            detail=(
                f"pruned verify of ~{rows:.0f} candidates x n={stats.n} "
                f"(refine~{stats.prune_refine_rate:.0%})"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        q = ctx.query
        prefs, default = _ctx_prefs(ctx)
        key = q.tobytes()
        cached = eng._rsl_cache.get(key) if default else None
        if cached is None:
            candidates = np.asarray(
                global_skyline_candidates(
                    eng.products,
                    eng.customers,
                    q,
                    self_exclude=eng.monochromatic,
                    weights=prefs.weight_array(eng.dim),
                ),
                dtype=np.int64,
            )
            if candidates.size == 0:
                cached = candidates
            else:
                mask = _pruned_membership(
                    eng,
                    eng.customers[candidates],
                    q,
                    candidates if eng.monochromatic else None,
                    policy=prefs.policy,
                    dims=prefs.support(eng.dim),
                )
                cached = candidates[mask]
            if default:
                eng._rsl_cache[key] = cached
            span.set(members=int(cached.size), pruned=True)
        else:
            span.set(members=int(cached.size), result_cache="hit")
        return cached


class MembershipPruned(_MembershipOp):
    """The blocked membership kernel behind the AABB classifier."""

    name = "membership-pruned"
    batch = True

    def available(self, config, stats):
        return config.batch_kernels and config.prune != "off"

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune == "always"
        )

    def estimate(self, logical, stats, model):
        rows = max(1, getattr(logical, "count", 1))
        return CostEstimate(
            ops=rows * stats.n * stats.d * stats.prune_refine_rate,
            seconds=model.pruned_kernel_seconds(rows, stats)
            + model.DISPATCH_S,
            detail=(
                f"pruned kernel pass, {rows} probes x n={stats.n} "
                f"(refine~{stats.prune_refine_rate:.0%})"
            ),
        )

    def run(self, ctx, node, span):
        eng = ctx.engine
        prefs, _ = _ctx_prefs(ctx)
        points, self_positions = _resolve_batch(ctx)
        count = points.shape[0]
        eng._membership_tests.inc(count)
        span.set(customers=count, batch=True, pruned=True)
        if count == 0:
            return np.empty(0, dtype=bool)
        return _pruned_membership(
            eng,
            points,
            ctx.query,
            self_positions,
            policy=prefs.policy,
            dims=prefs.support(eng.dim),
        )


class BatchPruned(BatchPrefilter):
    """Batch answering over the pruned prefilter: the membership child
    is planned recursively, so it resolves to :class:`MembershipPruned`
    under ``prune="always"`` (and to whatever the cost model picks
    under ``"auto"``); the per-question pipelines stay unchanged."""

    name = "batch-pruned"

    def available(self, config, stats):
        return config.batch_kernels and config.prune != "off"

    def fixed_choice(self, config):
        return (
            config.batch_kernels
            and config.shards == 1
            and config.prune == "always"
        )

    def estimate(self, logical, stats, model):
        count = max(1, getattr(logical, "count", 1))
        member_rate = min(0.5, stats.expected_rsl / max(1, stats.m))
        question = 4.0 * model.window_seconds(stats) + 4.0 * model.DISPATCH_S
        return CostEstimate(
            ops=count * stats.n * stats.d * stats.prune_refine_rate,
            seconds=(
                model.pruned_kernel_seconds(count, stats)
                + count * (1.0 - member_rate) * question
                + model.DISPATCH_S
            ),
            detail=(
                f"pruned prefilter + ~{count} pipelines "
                f"(refine~{stats.prune_refine_rate:.0%})"
            ),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_RSL_OPS = (
    RSLKernelVerify(),
    RSLIndexVerify(),
    RSLShardedKernel(),
    RSLPrunedKernel(),
)
_MEMBERSHIP_OPS = (
    MembershipKernel(),
    MembershipIndexLoop(),
    MembershipSharded(),
    MembershipPruned(),
)
_RETAINED_OPS = (RetainedKernel(), RetainedIndexLoop(), RetainedSharded())
_LAMBDA_OPS = (LambdaWindow(),)
_MWP_OPS = (MWPStaircase(),)
_MQP_OPS = (MQPStaircase(),)
_SR_EXACT_OPS = (
    SafeRegionCachedFold(),
    SafeRegionDirectFold(),
    SafeRegionShardedFold(),
)
_SR_APPROX_OPS = (SafeRegionApproxStore(),)
_MWQ_OPS = (MWQCombine(),)
_BATCH_OPS = (BatchPrefilter(), BatchSequential(), BatchSharded(), BatchPruned())

_REGISTRY: dict[str, tuple[Operator, ...]] = {
    "reverse_skyline": _RSL_OPS,
    "membership": _MEMBERSHIP_OPS,
    "retained_mask": _RETAINED_OPS,
    "explain": _LAMBDA_OPS,
    "mwp": _MWP_OPS,
    "mqp": _MQP_OPS,
    "mwq": _MWQ_OPS,
    "batch": _BATCH_OPS,
}


def candidate_operators(logical: "LogicalPlan") -> tuple[Operator, ...]:
    """Every physical operator that can, in principle, execute
    ``logical`` — in fixed-preference order (the pre-planner default
    first), before capability gating."""
    if logical.surface == "safe_region":
        return (
            _SR_APPROX_OPS
            if getattr(logical, "approximate", False)
            else _SR_EXACT_OPS
        )
    try:
        return _REGISTRY[logical.surface]
    except KeyError:
        raise ValueError(
            f"no physical operators registered for surface "
            f"{logical.surface!r}"
        ) from None
