"""Physical plan nodes and the tree-walking executor.

A :class:`PlanNode` binds one logical plan to the physical operator the
planner selected for it, the cost estimate that selection was based on,
and — after execution — the *actual* cost, so EXPLAIN can show estimated
vs. measured side by side.

Timing source: every node executes inside a ``repro.obs`` span named
after the engine surface (``engine.safe_region``, ``engine.mwq``, ...),
preserving the span taxonomy of docs/OBSERVABILITY.md exactly.  When the
engine traces, the span's measured duration *is* the actual cost; on the
no-op tracer path the executor falls back to its own ``perf_counter``
pair so EXPLAIN works on untraced engines too.

Plan nodes are cached and re-executed (the plan cache shares them across
queries of the same shape), so the actuals always describe the *most
recent* execution; :attr:`PlanNode.executions` counts how many runs the
node has served.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine
    from repro.plan.cost import CostEstimate, DatasetStats
    from repro.plan.logical import LogicalPlan
    from repro.plan.operators import Operator
    from repro.prefs.model import PreferenceModel

__all__ = ["ExecutionContext", "PlanNode", "execute_plan"]


@dataclass
class PlanNode:
    """One operator choice in a physical plan tree."""

    logical: "LogicalPlan"
    operator: "Operator"
    estimate: "CostEstimate"
    stats: "DatasetStats"
    children: list["PlanNode"] = field(default_factory=list)
    # Filled by execute_plan; describe the most recent execution.
    actual_seconds: float | None = None
    executions: int = 0
    attributes: dict = field(default_factory=dict)

    @property
    def executed(self) -> bool:
        return self.executions > 0

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class ExecutionContext:
    """Runtime arguments of one plan execution.

    Logical plans are coordinate-free; the concrete query point, why-not
    customer(s) and batch parameters ride here.  Contexts are immutable
    — operators derive child contexts with :meth:`child` when a subtree
    needs different arguments.
    """

    engine: "WhyNotEngine"
    query: np.ndarray | None = None
    why_not: "int | Sequence[float] | None" = None
    why_nots: tuple | None = None
    refined_query: np.ndarray | None = None
    members: np.ndarray | None = None
    approximate: bool = False
    k: int = 10
    # The request's preference model (repro.prefs); ``None`` means the
    # engine default.  Operators read it through ``_ctx_prefs`` and gate
    # the engine's result caches on its fingerprint.
    prefs: "PreferenceModel | None" = None

    @property
    def obs(self):
        return self.engine.obs

    def child(self, **changes) -> "ExecutionContext":
        """A derived context for executing a child node."""
        return replace(self, **changes)

    def execute(self, node: PlanNode) -> Any:
        """Execute a child plan node under this context."""
        return execute_plan(node, self)


def execute_plan(node: PlanNode, ctx: ExecutionContext) -> Any:
    """Run one plan node, recording span + actual cost on the node."""
    operator = node.operator
    with ctx.obs.span(operator.span_name, op=operator.name) as span:
        started = time.perf_counter()
        result = operator.run(ctx, node, span)
        elapsed = time.perf_counter() - started
    # Prefer the span's own clock when the tracer is live so EXPLAIN and
    # the exported span tree agree to the tick; the no-op span has no
    # duration and the perf_counter pair stands in.
    duration = getattr(span, "duration_s", None)
    node.actual_seconds = duration if duration is not None else elapsed
    node.executions += 1
    return result
