"""Cost-based operator selection.

The planner turns a logical plan into a :class:`~repro.plan.executor.
PlanNode` tree by choosing, per node, among the physical operators
registered for the surface:

* ``planner="auto"`` (the default) — pick the available operator with
  the lowest estimated cost.  Ties break toward the fixed-preference
  registry order, so planning is deterministic.
* ``planner="fixed"`` — pick the operator the pre-planner engine
  dispatched to under this config (``Operator.fixed_choice``),
  reproducing the historical dispatch bit-for-bit.

Capability gating happens before either mode: an operator whose
:meth:`~repro.plan.operators.Operator.available` returns false (e.g.
any kernel operator under ``batch_kernels=False``) is not a candidate
at all.  Because every alternative for a surface is property-tested
bit-identical, the mode changes runtimes, never answers.
"""

from __future__ import annotations

from repro.config import WhyNotConfig
from repro.plan.cost import CostModel, DatasetStats
from repro.plan.executor import PlanNode
from repro.plan.logical import LogicalPlan
from repro.plan.operators import Operator, candidate_operators

__all__ = ["Planner"]


class Planner:
    """Build physical plan trees for one engine's config + cost model."""

    def __init__(
        self, config: WhyNotConfig, model: CostModel | None = None
    ) -> None:
        self.config = config
        self.model = model or CostModel()

    def candidates(
        self, logical: LogicalPlan, stats: DatasetStats
    ) -> list[Operator]:
        """Available operators for ``logical``, fixed preference first."""
        ops = [
            op
            for op in candidate_operators(logical)
            if op.available(self.config, stats)
        ]
        if not ops:
            raise ValueError(
                f"no operator available for surface {logical.surface!r} "
                f"under config {self.config!r}"
            )
        return ops

    def choose(
        self, logical: LogicalPlan, stats: DatasetStats
    ) -> Operator:
        """The operator the active planner mode selects for one node."""
        ops = self.candidates(logical, stats)
        if self.config.planner == "fixed":
            for op in ops:
                if op.fixed_choice(self.config):
                    return op
            return ops[0]
        # auto: min estimated seconds; min() is stable, so ties keep the
        # fixed-preference registry order.
        return min(
            ops,
            key=lambda op: op.estimate(logical, stats, self.model).seconds,
        )

    def plan(self, logical: LogicalPlan, stats: DatasetStats) -> PlanNode:
        """Recursively select operators for ``logical`` and its children."""
        operator = self.choose(logical, stats)
        node = PlanNode(
            logical=logical,
            operator=operator,
            estimate=operator.estimate(logical, stats, self.model),
            stats=stats,
        )
        for child in operator.child_plans(logical):
            node.children.append(self.plan(child, stats))
        return node
