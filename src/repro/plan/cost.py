"""Cost model: dataset statistics and per-operator cost estimates.

The planner chooses between physical operators whose *answers* are
bit-identical (property-tested) but whose runtimes differ by orders of
magnitude with dataset shape: a blocked NumPy kernel amortises the
Python interpreter over ``block_size * n`` element operations, while a
per-customer index probe touches a handful of tree nodes but pays the
interpreter on every one.  The model follows the classic DB framing —
work units per operator, seconds per work unit per execution regime —
with constants calibrated once against the repository's own benchmark
artifacts (``BENCH_kernels.json``, ``BENCH_safe_region.json``); the
planner benchmark records the live estimation error so drift is visible
(``benchmarks/bench_planner.py``).

Nothing here affects answers: a wrong estimate can only pick the slower
of two bit-identical operators.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine

__all__ = [
    "CostEstimate",
    "CostModel",
    "DatasetStats",
    "measured_shard_dispatch_s",
]

_MEASURED_SHARD_DISPATCH: float | None = None


def _pool_dispatch_probe_task(x: int) -> int:
    """Top-level (hence picklable) no-op task for the dispatch probe."""
    return x


def measured_shard_dispatch_s(
    probe_tasks: int = 8, refresh: bool = False
) -> float:
    """Measured per-task dispatch overhead of a process pool, cached
    per process.

    The hardcoded ``CostModel.SHARD_DISPATCH_S`` was calibrated on one
    machine; queue round-trip latency varies enough across hosts to
    flip fan-out decisions near the break-even point (ROADMAP, PR 6).
    This probe times ``probe_tasks`` no-op round-trips through a
    one-worker ``ProcessPoolExecutor`` (fork-preferred, one warm-up
    submit excluded) and keeps the per-task mean.  Any failure —
    platforms without working multiprocessing, sandboxed test runs —
    falls back to the calibrated constant, so the probe can only
    *improve* estimates, never break planning.
    """
    global _MEASURED_SHARD_DISPATCH
    if _MEASURED_SHARD_DISPATCH is not None and not refresh:
        return _MEASURED_SHARD_DISPATCH
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            pool.submit(_pool_dispatch_probe_task, 0).result()  # warm up
            start = time.perf_counter()
            for i in range(probe_tasks):
                pool.submit(_pool_dispatch_probe_task, i).result()
            elapsed = time.perf_counter() - start
        _MEASURED_SHARD_DISPATCH = max(elapsed / probe_tasks, 1e-5)
    except Exception:  # pragma: no cover - no usable process pool
        _MEASURED_SHARD_DISPATCH = CostModel.SHARD_DISPATCH_S
    return _MEASURED_SHARD_DISPATCH


@dataclass(frozen=True)
class DatasetStats:
    """Everything the cost model reads about one engine generation.

    Attributes
    ----------
    n, m, d:
        Product rows, customer rows, dimensionality.
    backend:
        Spatial-index backend name (``"scan"``, ``"rtree"``, ``"grid"``,
        ``"kdtree"``) — drives the per-window-query cost.
    epoch:
        Dataset epoch the stats were sampled at; a plan carries the
        stats it was costed with, so EXPLAIN can show staleness.
    dsl_warm:
        Warm entries in the engine's :class:`~repro.core.dsl_cache.
        DSLCache` (0 when disabled) — a warm cache collapses the
        per-member cost of safe-region assembly.
    kernels_enabled:
        ``WhyNotConfig.batch_kernels`` — whether blocked operators are
        available at all.
    cpus:
        Schedulable CPUs of this process (affinity/cgroup-aware, see
        :func:`repro.kernels.parallel.available_cpus`) — caps the worker
        count the sharded operators can actually use, which is what
        makes ``planner="auto"`` decline to fan out on small machines.
    shards, shard_backend:
        The configured shard count and backend (``WhyNotConfig.shards``
        / ``shard_backend``), echoed here so estimates can price the
        per-task dispatch overhead of the active backend.
    prune, prune_tile_size:
        The configured pruning mode and the *resolved* classifier tile
        width — the pruned operators are available iff
        ``prune != "off"``.
    prune_refine_rate:
        Predicted fraction of (customer-tile, product-chunk) pairs the
        pruned kernels would have to refine exactly, sampled from the
        engine's epoch-versioned tile summaries at the dataset centroid
        (:meth:`repro.prune.summaries.PruneSummaries.
        centroid_refine_rate`).  ``1.0`` — nothing prunable — whenever
        summaries are absent or pruning is off, which makes the pruned
        estimate strictly worse than the plain kernel and ``auto``
        declines.
    """

    n: int
    m: int
    d: int
    backend: str
    epoch: int
    dsl_warm: int = 0
    kernels_enabled: bool = True
    cpus: int = 1
    shards: int = 1
    shard_backend: str = "process"
    prune: str = "off"
    prune_tile_size: int = 512
    prune_refine_rate: float = 1.0
    # Dimensions dominance actually compares under the engine-default
    # preference model (the support size); 0 means "same as d".  The
    # selectivity heuristics key their exponents on this — a projected
    # 2-of-5-dimension preference behaves like 2-D data.
    effective_d: int = 0

    @classmethod
    def of(cls, engine: "WhyNotEngine") -> "DatasetStats":
        """Sample the live statistics of one engine."""
        from repro.kernels.parallel import available_cpus

        prune = str(engine.config.prune)
        summaries = getattr(engine, "prune_summaries", None)
        refine_rate = 1.0
        tile = 512
        if summaries is not None and prune != "off":
            tile = int(summaries.tile_size)
            refine_rate = float(summaries.centroid_refine_rate())
        return cls(
            n=int(engine.products.shape[0]),
            m=int(engine.customers.shape[0]),
            d=int(engine.dim),
            effective_d=int(engine.prefs.effective_dim(engine.dim)),
            backend=engine.backend,
            epoch=int(engine.dataset_epoch),
            dsl_warm=(
                engine.dsl_cache.entry_count()
                if engine.dsl_cache is not None
                else 0
            ),
            kernels_enabled=bool(engine.config.batch_kernels),
            cpus=available_cpus(),
            shards=int(engine.config.shards),
            shard_backend=engine.config.shard_backend,
            prune=prune,
            prune_tile_size=tile,
            prune_refine_rate=refine_rate,
        )

    @property
    def expected_rsl(self) -> float:
        """Heuristic ``E[|RSL(q)|]``: skyline-sized, ``(ln m)^(d-1)``-ish.

        Uniform-data skylines grow polylogarithmically; the reverse
        skyline is the same order (the paper's Figure 14 workloads have
        |RSL| in the single digits at m = 200k).  Clamped to [1, m].
        """
        if self.m <= 1:
            return 1.0
        d_eff = self.effective_d or self.d
        grown = math.log(self.m + 1.0) ** max(1, d_eff - 1)
        return float(min(self.m, max(1.0, grown)))

    @property
    def expected_candidates(self) -> float:
        """Heuristic global-skyline candidate count BBRS verifies —
        a small constant factor above the final reverse skyline."""
        return float(min(self.m, 4.0 * self.expected_rsl + 4.0))


@dataclass(frozen=True)
class CostEstimate:
    """One operator's predicted work.

    ``ops`` counts elementary predicate/box evaluations (the
    path-independent work unit the obs layer also counts); ``seconds``
    converts them through the regime constants.  ``detail`` is a short
    human formula shown by EXPLAIN.
    """

    ops: float
    seconds: float
    detail: str = ""

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            ops=self.ops + other.ops,
            seconds=self.seconds + other.seconds,
            detail=self.detail or other.detail,
        )


class CostModel:
    """Per-regime constants + shared sub-formulas.

    Two execution regimes exist in this codebase:

    * **vectorised** — blocked NumPy kernels / the array region algebra:
      throughput-bound, ~``VECTOR_OP_S`` per element operation
      (calibrated from BENCH_kernels.json: ~68x over the loop at 10k x
      10k means ~1e8 element-ops/s through the blocked verify).
    * **interpreted** — per-customer Python loops over index probes:
      latency-bound, ~``PY_OP_S`` per touched node / loop iteration.
    """

    VECTOR_OP_S = 2.0e-9
    PY_OP_S = 2.5e-6
    #: Fixed overhead of entering any operator (plan node dispatch).
    DISPATCH_S = 5.0e-6
    #: Per-shard-task overhead of the process backend: payload pickling,
    #: queue round-trip and result unpickling (the shared-memory design
    #: keeps the matrices out of this, so it is size-independent).
    SHARD_DISPATCH_S = 1.5e-3
    #: Per-shard-task overhead of the in-process serial backend (one
    #: extra function call plus payload slicing).
    SERIAL_SHARD_DISPATCH_S = 2.0e-5
    #: Merge cost per shard (mask scatter / count sum / one region
    #: intersection), interpreted-regime work.
    SHARD_MERGE_S = 1.0e-5

    def window_nodes(self, stats: DatasetStats) -> float:
        """Nodes/rows one window query touches, per backend."""
        n = max(1, stats.n)
        if stats.backend == "scan":
            # One vectorised mask over all rows, but a dozen interpreted
            # numpy-call steps to build the window box, mask and verify
            # (measured ~30us fixed per probe at any n).
            return 12.0
        # Tree/grid descent: a root-to-leaf path plus boundary leaves.
        return 4.0 * math.log2(n + 2.0) + 8.0

    def window_seconds(self, stats: DatasetStats) -> float:
        """Wall seconds of one per-customer window query."""
        per_query = self.window_nodes(stats) * self.PY_OP_S
        if stats.backend == "scan":
            # Several full-length array passes per probe, not one.
            per_query += 4.0 * stats.n * self.VECTOR_OP_S
        return per_query

    def kernel_seconds(self, rows: float, stats: DatasetStats) -> float:
        """Wall seconds of one blocked kernel pass over ``rows``
        customers against all ``n`` products."""
        return rows * stats.n * stats.d * self.VECTOR_OP_S + self.PY_OP_S

    def dsl_build_seconds(self, stats: DatasetStats) -> float:
        """Building one customer's dynamic skyline from scratch."""
        return stats.n * stats.d * self.VECTOR_OP_S + self.PY_OP_S

    def region_fold_seconds(self, members: float, stats: DatasetStats) -> float:
        """Folding ``members`` staircase regions into the running
        safe-region intersection (array algebra, box counts grow with
        the staircase size ~ sqrt(n))."""
        boxes = math.sqrt(max(1.0, stats.n)) + 2.0
        return members * boxes * 8.0 * self.VECTOR_OP_S * 100 + self.PY_OP_S

    # ------------------------------------------------------------------
    # Sharded (fan-out) regime
    # ------------------------------------------------------------------
    def shard_workers(self, stats: DatasetStats) -> int:
        """Concurrent workers a fan-out actually gets: the serial
        backend is one by construction, the process pool is capped by
        the schedulable CPUs.  This is the term that makes ``auto``
        refuse to fan out on a one-core machine — dividing by 1 never
        beats the extra dispatch cost."""
        if stats.shard_backend == "serial":
            return 1
        return max(1, min(stats.shards, stats.cpus))

    def shard_task_seconds(self, stats: DatasetStats) -> float:
        """Fixed per-task overhead of the active shard backend.  The
        process backend uses the measured dispatch probe
        (:func:`measured_shard_dispatch_s`) so the fan-out break-even
        tracks the actual host instead of the calibration machine."""
        if stats.shard_backend == "serial":
            return self.SERIAL_SHARD_DISPATCH_S
        return measured_shard_dispatch_s()

    def fanout_seconds(self, stats: DatasetStats) -> float:
        """Fixed cost of one sharded call: per-task dispatch for every
        shard plus the merge pass."""
        return stats.shards * (
            self.shard_task_seconds(stats) + self.SHARD_MERGE_S
        )

    def sharded_kernel_seconds(self, rows: float, stats: DatasetStats) -> float:
        """One blocked kernel pass over ``rows`` customers, split across
        the shard workers: the vector work divides by the concurrency,
        the dispatch/merge overhead multiplies by the shard count."""
        vector = rows * stats.n * stats.d * self.VECTOR_OP_S
        return vector / self.shard_workers(stats) + self.fanout_seconds(stats)

    # ------------------------------------------------------------------
    # Filter-refinement (pruned) regime
    # ------------------------------------------------------------------
    def prune_classify_seconds(self, rows: float, stats: DatasetStats) -> float:
        """Fixed cost of the classification pass: per-tile customer AABB
        reductions over ``rows`` rows plus the (tiles x chunks x d)
        label fold — a few vectorised ops per pair — plus one
        interpreted step per customer tile."""
        tile = max(1, stats.prune_tile_size)
        tiles = math.ceil(max(1.0, rows) / tile)
        chunks = math.ceil(max(1, stats.n) / tile)
        bound_ops = (rows + stats.n) * stats.d
        label_ops = tiles * chunks * stats.d * 8.0
        return (bound_ops + label_ops) * self.VECTOR_OP_S + tiles * self.PY_OP_S

    def pruned_kernel_seconds(self, rows: float, stats: DatasetStats) -> float:
        """One pruned kernel pass: classification up front, then the
        exact blocked kernel over only the predicted refine fraction of
        (tile, chunk) pairs.  With ``prune_refine_rate == 1`` this is
        strictly worse than :meth:`kernel_seconds` — which is exactly
        how ``auto`` declines to prune when summaries predict no win."""
        refine = min(1.0, max(0.0, stats.prune_refine_rate))
        return (
            self.prune_classify_seconds(rows, stats)
            + refine * self.kernel_seconds(rows, stats)
            + self.PY_OP_S
        )

    def sharded_fold_seconds(self, members: float, stats: DatasetStats) -> float:
        """The sharded safe-region fold: per-member staircase builds and
        the region algebra divide by the workers; dispatch, merge and
        one cross-shard region intersection per shard do not."""
        per_member = members * self.dsl_build_seconds(stats)
        fold = self.region_fold_seconds(members, stats)
        return (per_member + fold) / self.shard_workers(stats) + (
            self.fanout_seconds(stats)
            + stats.shards * self.region_fold_seconds(1.0, stats)
        )
