"""Logical plans — *what* a why-not surface computes, not *how*.

Each query surface of the paper gets one small frozen dataclass: RSL
membership (:class:`RSLQuery`, :class:`MembershipMaskQuery`), the ``Λ``
explanation window (:class:`LambdaQuery`), Algorithm 1
(:class:`MWPQuery`), Algorithm 2 (:class:`MQPQuery`), Algorithm 3 exact
or Section-VI.B approximate (:class:`SafeRegionQuery`), Algorithm 4 and
Approx-MWQ (:class:`MWQQuery`), batch why-not answering
(:class:`BatchWhyNotQuery`) and the lost-customer retained mask
(:class:`RetainedMaskQuery`) the MQP experiment cost rides on.

A logical plan deliberately carries **no coordinates**: it describes the
shape of the computation (surface, approximation parameters, batch
cardinality), so one planned tree is reusable across every query point
of the same shape — that is what makes the plan cache effective.  The
runtime arguments (query point, why-not customer, ...) travel through
the :class:`~repro.plan.executor.ExecutionContext` instead.

``child_plans()`` declares the sub-computations a surface is *defined*
over (MWQ needs a safe region, which needs the reverse skyline); the
physical operator chosen by the planner may execute fewer children
(e.g. the sequential batch path skips the membership prefilter) via
:meth:`repro.plan.operators.Operator.child_plans`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "LogicalPlan",
    "RSLQuery",
    "MembershipMaskQuery",
    "RetainedMaskQuery",
    "LambdaQuery",
    "MWPQuery",
    "MQPQuery",
    "SafeRegionQuery",
    "MWQQuery",
    "BatchWhyNotQuery",
]


@dataclass(frozen=True)
class LogicalPlan:
    """Base class: a coordinate-free description of one computation."""

    surface: ClassVar[str] = "abstract"

    def child_plans(self) -> tuple["LogicalPlan", ...]:
        """Sub-computations this surface is defined over."""
        return ()

    def cache_key(self) -> tuple:
        """Hashable identity used by the plan cache (shape, not data)."""
        return (self.surface,) + self._key_fields()

    def _key_fields(self) -> tuple:
        return ()

    def describe(self) -> str:
        """One-line human label used by EXPLAIN output."""
        fields = self._key_fields()
        return self.surface if not fields else f"{self.surface}{fields!r}"


@dataclass(frozen=True)
class RSLQuery(LogicalPlan):
    """``RSL(q)`` — positions of the reverse skyline of one query."""

    surface: ClassVar[str] = "reverse_skyline"


@dataclass(frozen=True)
class MembershipMaskQuery(LogicalPlan):
    """Membership of ``count`` customers in ``RSL(q)`` (one bool each)."""

    surface: ClassVar[str] = "membership"
    count: int = 1

    def _key_fields(self) -> tuple:
        # Bucket the cardinality so plans are shared across similar batch
        # sizes while the cost model still sees the order of magnitude.
        return (max(1, self.count).bit_length(),)


@dataclass(frozen=True)
class RetainedMaskQuery(LogicalPlan):
    """Which current ``RSL(q)`` members survive a refined query point."""

    surface: ClassVar[str] = "retained_mask"


@dataclass(frozen=True)
class LambdaQuery(LogicalPlan):
    """Aspect 1: the ``Λ`` window of products blocking membership."""

    surface: ClassVar[str] = "explain"


@dataclass(frozen=True)
class MWPQuery(LogicalPlan):
    """Algorithm 1 — modify the why-not point."""

    surface: ClassVar[str] = "mwp"


@dataclass(frozen=True)
class MQPQuery(LogicalPlan):
    """Algorithm 2 — modify the query point."""

    surface: ClassVar[str] = "mqp"


@dataclass(frozen=True)
class SafeRegionQuery(LogicalPlan):
    """Algorithm 3 (exact) or the Section-VI.B approximation."""

    surface: ClassVar[str] = "safe_region"
    approximate: bool = False
    k: int = 10

    def child_plans(self) -> tuple[LogicalPlan, ...]:
        return (RSLQuery(),)

    def _key_fields(self) -> tuple:
        # k only matters on the approximate path; folding it away keeps
        # every exact safe-region call on one shared plan-cache entry.
        return (self.approximate, self.k if self.approximate else 0)


@dataclass(frozen=True)
class MWQQuery(LogicalPlan):
    """Algorithm 4 — modify both, over the (approximate) safe region."""

    surface: ClassVar[str] = "mwq"
    approximate: bool = False
    k: int = 10

    def child_plans(self) -> tuple[LogicalPlan, ...]:
        return (SafeRegionQuery(approximate=self.approximate, k=self.k),)

    def _key_fields(self) -> tuple:
        return (self.approximate, self.k if self.approximate else 0)


@dataclass(frozen=True)
class BatchWhyNotQuery(LogicalPlan):
    """Many why-not questions against one query point."""

    surface: ClassVar[str] = "batch"
    count: int = 1
    approximate: bool = False
    k: int = 10

    def child_plans(self) -> tuple[LogicalPlan, ...]:
        return (
            SafeRegionQuery(approximate=self.approximate, k=self.k),
            MembershipMaskQuery(count=self.count),
        )

    def _key_fields(self) -> tuple:
        return (
            max(1, self.count).bit_length(),
            self.approximate,
            self.k if self.approximate else 0,
        )
