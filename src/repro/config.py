"""Library-wide configuration objects.

The most consequential knob is :class:`DominancePolicy`: the paper's formal
definitions use *weak* dominance (``<=`` everywhere, ``<`` somewhere) while
its constructive algorithms place answers exactly on window boundaries, which
is only consistent when a point excludes the query from a dynamic skyline if
it is *strictly* closer in every dimension (the open-window test).  See
DESIGN.md section 2 for the full analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DominancePolicy(enum.Enum):
    """How boundary ties are treated when one point excludes another.

    ``WEAK``
        ``p`` excludes ``q`` w.r.t. ``c`` when ``|c-p| <= |c-q|`` in every
        dimension and ``<`` in at least one (textbook Definition 2).

    ``STRICT``
        ``p`` excludes ``q`` w.r.t. ``c`` only when ``|c-p| < |c-q|`` in
        every dimension (the open-window semantics that the paper's worked
        examples follow).  Under this policy a point placed exactly on the
        window boundary is safe.
    """

    WEAK = "weak"
    STRICT = "strict"


@dataclass(frozen=True)
class WhyNotConfig:
    """Settings shared by the why-not modification algorithms.

    Attributes
    ----------
    policy:
        Dominance policy used to *verify* candidate answers.  ``STRICT``
        matches the paper's worked examples; candidates produced by
        Algorithms 1-2 sit exactly on window boundaries.
    sort_dim:
        The dimension used to sort the merge lists in Algorithms 1-3
        (the paper's arbitrary dimension *i*).
    margin:
        Optional relative nudge (fraction of the per-dimension movement)
        applied past each boundary so candidates also verify under the
        ``WEAK`` policy.  ``0.0`` reproduces the paper's formulas verbatim.
    verify:
        When true, each candidate is checked against the index before it is
        returned; unverifiable candidates are flagged, never silently kept.
    batch_kernels:
        When true, multi-customer sweeps (BBRS verification, lost-customer
        checks, MQP scoring, batch why-not answering) run through the
        blocked NumPy kernels of :mod:`repro.kernels` instead of one
        index query per customer.  Results are bit-identical by
        construction (property-tested); the per-customer path remains the
        oracle and is forced by setting this to false.
    kernel_block_size:
        Customer tile width of the blocked kernels; peak intermediate
        memory is ``O(kernel_block_size ** 2)`` per array.  ``None``
        (default) picks the width from the dimensionality and a
        working-set budget (:func:`repro.kernels.membership.
        auto_block_size`).  Any positive value yields the same results.
    n_jobs:
        Worker count for the parallel pre-computation paths (sampled-DSL
        store, exact safe-region assembly).  ``1`` keeps the sequential
        oracle path, ``-1`` uses one thread per CPU.
    dsl_cache:
        When true (default), the engine keeps a :class:`repro.core.
        dsl_cache.DSLCache`: each customer's dynamic-skyline threshold
        matrix and staircase anti-dominance region are computed once and
        reused across ``safe_region``, ``modify_both``,
        ``answer_why_not_batch``, the approximate store and the
        leave-one-out relaxation analysis.  Results are identical either
        way; the cache only removes recomputation.
    sr_box_budget:
        Upper bound on the box count of the running safe-region
        intersection (``0`` = unlimited, the exact default).  When the
        simplified intermediate exceeds the budget, only the
        largest-volume boxes are kept — an *under*-approximation, which
        is safe by Lemma 2 (any subset of a safe region is safe) but may
        under-report area; intended for adversarial inputs where the
        distributed product grows combinatorially.
    sr_chunk_size:
        Members of ``RSL(q)`` are processed in contiguous chunks of this
        size during safe-region assembly: each chunk's anti-dominance
        regions are built (in parallel when ``n_jobs > 1``), sorted
        size-ascending, and folded into the running intersection with an
        empty-region early exit between members.  The chunk partition is
        independent of ``n_jobs``, so parallel and sequential runs
        produce identical regions.
    trace:
        When true, the engine records nested timing spans and work
        counters through its :class:`repro.obs.Observability` bundle
        (see docs/OBSERVABILITY.md); results are unchanged.  When false
        (default) every instrumented call site takes the no-op fast
        path, costing about one attribute lookup.
    journal:
        When true, the engine keeps a bounded per-query journal
        (:class:`repro.obs.journal.QueryJournal`): one provenance
        record per executed plan — surface, chosen operator, dataset
        epoch, config fingerprint, estimated vs. actual seconds and
        the per-request counter deltas — feeding ``engine.journal``,
        ``engine.drift_report()`` and the ``repro.obs/2`` export.
        Independent of ``trace`` (journaling without spans is the
        cheap serving-mode default posture); overhead is bounded by
        the <2% A/B of ``benchmarks/bench_obs.py``.
    journal_capacity:
        Ring size of the query journal; older records are evicted
        FIFO and counted in ``journal.dropped``.
    planner:
        Operator-selection mode of the :mod:`repro.plan` layer.
        ``"auto"`` (default) lets the cost model pick the cheapest
        available physical operator per surface from the dataset
        statistics; ``"fixed"`` reproduces the pre-planner dispatch
        (kernels iff ``batch_kernels``, cached fold iff ``dsl_cache``)
        bit-for-bit.  Answers are identical under both modes —
        operators are property-tested equivalent — only runtimes
        differ.
    shards:
        Number of data shards for the partitioned execution layer
        (:mod:`repro.shard`).  ``1`` (default) disables sharding
        entirely; with ``shards > 1`` the planner may (``"auto"``) or
        will (``"fixed"``) run the membership / Λ-count / verification
        / safe-region kernels per shard and merge — mask union, count
        sum, region intersection — with float64 results bit-identical
        to the single-process path (property-tested).
    shard_backend:
        ``"process"`` (default) dispatches shard tasks to a
        ``ProcessPoolExecutor`` over ``multiprocessing.shared_memory``
        views of the matrices; ``"serial"`` runs the identical per-shard
        code in-process (the deterministic oracle for tests and the
        honest baseline for dispatch-overhead measurements).
    shard_partition:
        How rows are assigned to shards: ``"str"`` (default) uses the
        Sort-Tile-Recursive tiling of :mod:`repro.index.bulkload` (space
        partitioning, preserves kernel early-exit locality), ``"grid"``
        buckets rows by uniform grid cell, ``"rows"`` splits contiguous
        row ranges.  Any choice yields identical merged results; only
        per-shard work balance differs.
    shard_dtype:
        Element type the sharded kernels compute in.  ``"float64"``
        (default) is bit-identical to the single-core kernels;
        ``"float32"`` halves shared-memory bandwidth and is opt-in —
        results may differ near window boundaries by float32 rounding
        (see docs/API.md for the documented tolerance) and the
        safe-region fold always promotes back to float64.
    prune:
        Filter-refinement pruning mode of the batch kernels
        (:mod:`repro.prune`).  ``"auto"`` (default) makes the pruned
        physical operators *available* and lets the cost model decide
        per query whether classifying (customer-tile, product-chunk)
        AABB pairs predicts a win; ``"always"`` forces the pruned
        kernels wherever they apply; ``"off"`` removes them entirely.
        Results are bit-identical in every mode (property-tested) —
        the classifier is conservative, only runtimes differ.
    prune_tile_size:
        Tile width of the pruning classifier (customer tiles and
        product chunks of the summaries).  ``None`` (default) follows
        the resolved kernel block size so one tile of classification
        describes exactly one kernel tile.
    scoped_invalidation:
        When true (default), engine mutations (``insert_products``,
        ``delete_products``, ...) evict only the cache entries the
        mutation can actually reach — decided with the paper's window
        locality (a product change at ``p`` affects customer ``c``'s
        membership w.r.t. ``q`` only if ``p`` falls in ``c``'s window
        around ``q``, and a cached ``DSL(c)`` only if it changes that
        skyline) — and *repairs* reverse-skyline entries whose membership
        provably changed in a known way.  Everything else stays warm.
        Results are bit-identical either way (property-tested against a
        freshly built engine); false falls back to full
        ``invalidate_caches()`` on every mutation.  Product-side scoping
        additionally requires ``dsl_cache`` (without cached thresholds
        there is nothing to scope, so mutations nuke as before).
    prefs_weights:
        The engine's *default* per-dimension preference weights (see
        :mod:`repro.prefs`): non-negative, finite, at least one
        positive; ``None`` (default) is unit weights — the historical
        behaviour, bit-identical to every pre-preference code path.
        Per-request ``weights=`` arguments override this default
        without touching it.  A zero weight drops that dimension from
        every dominance comparison (projection semantics); positive
        magnitudes only price movement costs.  Non-unit defaults with a
        dropped dimension force full cache invalidation on mutation
        (the scoped pass's window locality only holds over the full
        dimension set).
    """

    policy: DominancePolicy = DominancePolicy.STRICT
    sort_dim: int = 0
    margin: float = 0.0
    verify: bool = True
    batch_kernels: bool = True
    kernel_block_size: int | None = None
    n_jobs: int = 1
    dsl_cache: bool = True
    sr_box_budget: int = 0
    sr_chunk_size: int = 16
    trace: bool = False
    journal: bool = False
    journal_capacity: int = 256
    planner: str = "auto"
    shards: int = 1
    shard_backend: str = "process"
    shard_partition: str = "str"
    shard_dtype: str = "float64"
    prune: str = "auto"
    prune_tile_size: int | None = None
    scoped_invalidation: bool = True
    prefs_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.sort_dim < 0:
            raise ValueError("sort_dim must be non-negative")
        if not 0.0 <= self.margin < 1.0:
            raise ValueError("margin must lie in [0, 1)")
        if self.kernel_block_size is not None and self.kernel_block_size < 1:
            raise ValueError(
                "kernel_block_size must be a positive integer or None (auto)"
            )
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError("n_jobs must be a positive integer or -1")
        if self.sr_box_budget < 0:
            raise ValueError("sr_box_budget must be non-negative (0 = unlimited)")
        if self.sr_chunk_size < 1:
            raise ValueError("sr_chunk_size must be a positive integer")
        if self.journal_capacity < 1:
            raise ValueError("journal_capacity must be a positive integer")
        if self.planner not in ("auto", "fixed"):
            raise ValueError(
                f"unknown planner mode {self.planner!r}; "
                "use 'auto' or 'fixed'"
            )
        if self.shards < 1:
            raise ValueError("shards must be a positive integer")
        if self.shard_backend not in ("process", "serial"):
            raise ValueError(
                f"unknown shard_backend {self.shard_backend!r}; "
                "use 'process' or 'serial'"
            )
        if self.shard_partition not in ("str", "grid", "rows"):
            raise ValueError(
                f"unknown shard_partition {self.shard_partition!r}; "
                "use 'str', 'grid' or 'rows'"
            )
        if self.shard_dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown shard_dtype {self.shard_dtype!r}; "
                "use 'float64' or 'float32'"
            )
        if self.prune not in ("off", "auto", "always"):
            raise ValueError(
                f"unknown prune mode {self.prune!r}; "
                "use 'off', 'auto' or 'always'"
            )
        if self.prune_tile_size is not None and self.prune_tile_size < 1:
            raise ValueError(
                "prune_tile_size must be a positive integer or None"
            )
        if self.prefs_weights is not None:
            # Validated inline: repro.prefs imports this module for the
            # policy enum, so the config cannot import it back.
            try:
                weights = tuple(float(w) for w in self.prefs_weights)
            except (TypeError, ValueError):
                raise ValueError(
                    "prefs_weights must be a sequence of numbers or None"
                ) from None
            if not weights:
                raise ValueError("prefs_weights must not be empty")
            if any(w != w or w in (float("inf"), float("-inf")) for w in weights):
                raise ValueError("prefs_weights must be finite")
            if any(w < 0 for w in weights):
                raise ValueError("prefs_weights must be non-negative")
            if not any(w > 0 for w in weights):
                raise ValueError(
                    "at least one preference weight must be positive"
                )
            object.__setattr__(self, "prefs_weights", weights)


@dataclass(frozen=True)
class CostWeights:
    """Weight vectors for the cost model of Eqn. (9)/(11).

    ``alpha`` weights movement of the query point, ``beta`` movement of the
    why-not (or lost-customer) points.  ``None`` means equal weights summing
    to one over the dimensionality, which is the setting of Section VI.
    """

    alpha: tuple[float, ...] | None = None
    beta: tuple[float, ...] | None = None

    def resolved(self, dim: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Return concrete ``(alpha, beta)`` tuples for ``dim`` dimensions."""
        default = tuple(1.0 / dim for _ in range(dim))
        alpha = self.alpha if self.alpha is not None else default
        beta = self.beta if self.beta is not None else default
        if len(alpha) != dim or len(beta) != dim:
            raise ValueError(
                f"weight vectors must have length {dim}, "
                f"got alpha={len(alpha)}, beta={len(beta)}"
            )
        if any(w < 0 for w in alpha) or any(w < 0 for w in beta):
            raise ValueError("weights must be non-negative")
        return tuple(alpha), tuple(beta)


@dataclass(frozen=True)
class RTreeConfig:
    """Parameters of the R*-tree.

    The paper uses 1536-byte pages; with 2-D float64 rectangles plus a child
    pointer (40 bytes/entry) that is ~38 entries per node, so the defaults
    mirror the paper's fanout while remaining configurable.
    """

    max_entries: int = 38
    min_fill: float = 0.4
    reinsert_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < self.min_fill <= 0.5:
            raise ValueError("min_fill must lie in (0, 0.5]")
        if not 0.0 <= self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must lie in [0, 1)")

    @property
    def min_entries(self) -> int:
        return max(2, int(self.max_entries * self.min_fill))


DEFAULT_CONFIG = WhyNotConfig()
DEFAULT_WEIGHTS = CostWeights()
DEFAULT_RTREE = RTreeConfig()
