"""Epoch-pinned read sessions over a :class:`~repro.core.engine.WhyNotEngine`.

A mutable market raises a question frozen matrices never had: what does a
half-finished analysis mean when the data changed under it?  The paper's
guarantees (Lemma 2's safe region, the Λ explanation set) are statements
about *one* product/customer generation — mixing answers across
generations silently produces regions that are safe for no market at all.

:class:`WhyNotSession` makes the generation explicit.  It pins the
engine's dataset epoch at construction and re-checks it before every
delegated read; a mutation committed in between turns the next read into
a :class:`~repro.exceptions.StaleSessionError` instead of a silently
inconsistent answer.  Sessions are deliberately *detectors*, not MVCC —
the engine answers from current data only, and a stale session must
:meth:`~WhyNotSession.refresh` (accepting the new epoch) to continue.

>>> session = engine.session()
>>> session.reverse_skyline(q)          # fine
>>> engine.update_products([3], [p])    # epoch bump
>>> session.reverse_skyline(q)          # raises StaleSessionError
>>> session.refresh(); session.reverse_skyline(q)   # re-pinned, fine
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import StaleSessionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.answer import Explanation, ModificationResult, MWQResult
    from repro.core.engine import WhyNotEngine
    from repro.core.safe_region import SafeRegion

__all__ = ["WhyNotSession"]


class WhyNotSession:
    """Stale-read detection facade over one engine's query surface.

    Every delegated method validates the pinned epoch first and then
    forwards verbatim, so results (and caching behaviour) are identical
    to calling the engine directly on an unchanged dataset.
    """

    def __init__(self, engine: "WhyNotEngine") -> None:
        self._engine = engine
        self._epoch = engine.dataset_epoch

    # ------------------------------------------------------------------
    # Epoch management
    # ------------------------------------------------------------------
    @property
    def engine(self) -> "WhyNotEngine":
        return self._engine

    @property
    def epoch(self) -> int:
        """The dataset epoch this session is pinned to."""
        return self._epoch

    @property
    def stale(self) -> bool:
        """True when the engine mutated after this session was pinned."""
        return self._engine.dataset_epoch != self._epoch

    def refresh(self) -> "WhyNotSession":
        """Re-pin to the engine's current epoch; returns self."""
        self._epoch = self._engine.dataset_epoch
        return self

    def _check(self) -> None:
        current = self._engine.dataset_epoch
        if current != self._epoch:
            raise StaleSessionError(
                f"session pinned at dataset epoch {self._epoch}, but the "
                f"engine is now at epoch {current}; call refresh() to "
                "accept the mutated market",
                pinned_epoch=self._epoch,
                current_epoch=current,
            )

    def __enter__(self) -> "WhyNotSession":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def __repr__(self) -> str:
        state = "stale" if self.stale else "live"
        return f"WhyNotSession(epoch={self._epoch}, {state})"

    # ------------------------------------------------------------------
    # Delegated read surface
    # ------------------------------------------------------------------
    def reverse_skyline(
        self,
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        self._check()
        return self._engine.reverse_skyline(query, weights=weights)

    def is_member(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> bool:
        self._check()
        return self._engine.is_member(why_not, query, weights=weights)

    def membership_mask(
        self,
        why_nots: Sequence["int | Sequence[float]"],
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        self._check()
        return self._engine.membership_mask(why_nots, query, weights=weights)

    def explain(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> "Explanation":
        self._check()
        return self._engine.explain(why_not, query, weights=weights)

    def modify_why_not_point(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> "ModificationResult":
        self._check()
        return self._engine.modify_why_not_point(why_not, query, weights=weights)

    def modify_query_point(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> "ModificationResult":
        self._check()
        return self._engine.modify_query_point(why_not, query, weights=weights)

    def safe_region(
        self,
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        weights: "Sequence[float] | None" = None,
    ) -> "SafeRegion":
        self._check()
        return self._engine.safe_region(
            query, approximate=approximate, k=k, weights=weights
        )

    def modify_both(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        weights: "Sequence[float] | None" = None,
    ) -> "MWQResult":
        self._check()
        return self._engine.modify_both(
            why_not, query, approximate=approximate, k=k, weights=weights
        )

    def lost_customers(
        self,
        query: Sequence[float],
        refined_query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        self._check()
        return self._engine.lost_customers(
            query, refined_query, weights=weights
        )

    # ------------------------------------------------------------------
    # Planner surface
    # ------------------------------------------------------------------
    def prepare(self, surface: str, *args, **kwargs):
        """Plan a surface request (see :meth:`WhyNotEngine.prepare`).
        The prepared plan carries its own epoch pin, so both this
        session *and* the plan itself refuse a mutated dataset."""
        self._check()
        return self._engine.prepare(surface, *args, **kwargs)

    def explain_plan(self, surface: str, *args, **kwargs):
        """Execute one surface call and return its EXPLAIN report (see
        :meth:`WhyNotEngine.explain_plan`)."""
        self._check()
        return self._engine.explain_plan(surface, *args, **kwargs)
