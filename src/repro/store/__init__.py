"""Versioned dataset layer: copy-on-write stores and epoch-pinned sessions.

See :mod:`repro.store.base` for the store/mutation model,
:mod:`repro.store.session` for stale-read detection, and
:mod:`repro.store.lease` for the single-writer / multi-reader snapshot
leases the concurrent serving layer drains between write batches.
"""

from repro.store.base import (
    CustomerStore,
    Mutation,
    ProductStore,
    Snapshot,
    VersionedStore,
)
from repro.store.lease import LeaseRegistry, SnapshotLease
from repro.store.session import WhyNotSession

__all__ = [
    "CustomerStore",
    "LeaseRegistry",
    "Mutation",
    "ProductStore",
    "Snapshot",
    "SnapshotLease",
    "VersionedStore",
    "WhyNotSession",
]
