"""Versioned dataset layer: copy-on-write stores and epoch-pinned sessions.

See :mod:`repro.store.base` for the store/mutation model and
:mod:`repro.store.session` for stale-read detection.
"""

from repro.store.base import (
    CustomerStore,
    Mutation,
    ProductStore,
    Snapshot,
    VersionedStore,
)
from repro.store.session import WhyNotSession

__all__ = [
    "CustomerStore",
    "Mutation",
    "ProductStore",
    "Snapshot",
    "VersionedStore",
    "WhyNotSession",
]
