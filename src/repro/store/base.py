"""Versioned, copy-on-write dataset stores.

The paper treats ``P`` and ``C`` as frozen matrices, but its own
window-locality argument (Lemma 1 / the Λ window of Theorem 1) is exactly
what makes *changing* markets tractable: a product mutation at ``p`` can
only affect customers whose window around the query reaches ``p``.  The
influence-monitoring literature on reverse skylines assumes products are
added, repriced and retired while queries keep flowing; this module gives
the engine a mutation-aware substrate for that workload.

A :class:`VersionedStore` owns one immutable ``(n, d)`` matrix plus a
monotonically increasing **epoch** counter.  Every mutation
(:meth:`~VersionedStore.insert` / :meth:`~VersionedStore.delete` /
:meth:`~VersionedStore.update`) builds a *new* matrix — the previous one
is never written, so :class:`Snapshot` objects taken earlier keep reading
consistent data for free (copy-on-write without reference counting) —
bumps the epoch, and returns a :class:`Mutation` record carrying the
position mapping every derived structure needs to renumber itself.

Deletion compacts positions: surviving rows shift down to fill the holes,
and ``Mutation.mapping`` (old position -> new position, ``-1`` for deleted
rows) is the contract consumers use, identical to the mapping
``WhyNotEngine.without_products`` has always returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_points

__all__ = [
    "CustomerStore",
    "Mutation",
    "ProductStore",
    "Snapshot",
    "VersionedStore",
]


def _frozen(matrix: np.ndarray) -> np.ndarray:
    """A C-contiguous float64 matrix with the writeable flag cleared."""
    out = np.ascontiguousarray(matrix, dtype=np.float64)
    if out is matrix:
        out = out.copy()
    out.flags.writeable = False
    return out


@dataclass(frozen=True)
class Mutation:
    """One committed store mutation, with everything consumers need.

    Attributes
    ----------
    kind:
        ``"insert"``, ``"delete"`` or ``"update"``.
    epoch:
        The store epoch *after* this mutation committed.
    positions:
        Inserted rows' new positions / deleted rows' old positions /
        updated rows' positions, ascending.
    mapping:
        Old position -> new position over the pre-mutation row count;
        ``-1`` marks deleted rows.  The identity for inserts and updates
        (existing rows never move).
    old_points:
        Coordinates removed from the matrix: the deleted rows, or the
        updated rows' previous values.  Empty ``(0, d)`` for inserts.
    new_points:
        Coordinates added to the matrix: the inserted rows, or the
        updated rows' new values.  Empty ``(0, d)`` for deletes.
    """

    kind: str
    epoch: int
    positions: np.ndarray
    mapping: np.ndarray
    old_points: np.ndarray
    new_points: np.ndarray

    @property
    def is_noop(self) -> bool:
        """True for the zero-row mutations (empty insert/delete/update)
        that commit nothing and leave the epoch unchanged."""
        return self.positions.size == 0


@dataclass(frozen=True)
class Snapshot:
    """An immutable view of one store generation.

    The matrix is the store's frozen (non-writeable) array at the time
    the snapshot was taken — later mutations build new arrays, so this
    one stays valid without copying.
    """

    matrix: np.ndarray
    epoch: int

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        return self.matrix.shape[1]


class VersionedStore:
    """Epoch-counted, copy-on-write owner of one ``(n, d)`` matrix.

    Parameters
    ----------
    points:
        Initial matrix; copied and frozen (the store's arrays are never
        writeable, so snapshots and the index can share them safely).

    Subscribers registered through :meth:`subscribe` are notified with the
    :class:`Mutation` record after each commit — the engine uses this to
    keep its index and caches coherent.
    """

    #: Human-readable role used in error messages ("dataset" by default).
    role = "dataset"

    def __init__(self, points: np.ndarray) -> None:
        self._matrix = _frozen(as_points(points))
        self._epoch = 0
        self._listeners: list[Callable[[Mutation], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The current ``(n, d)`` matrix (non-writeable)."""
        return self._matrix

    @property
    def epoch(self) -> int:
        """Number of committed mutations since construction."""
        return self._epoch

    @property
    def size(self) -> int:
        return self._matrix.shape[0]

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.size}x{self.dim}, "
            f"epoch={self._epoch})"
        )

    def snapshot(self) -> Snapshot:
        """Pin the current generation (valid across later mutations)."""
        return Snapshot(matrix=self._matrix, epoch=self._epoch)

    def subscribe(
        self, listener: Callable[[Mutation], None]
    ) -> Callable[[Mutation], None]:
        """Register a post-commit callback; returns it for convenience."""
        self._listeners.append(listener)
        return listener

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> Mutation:
        """Append rows; returns the mutation with their new positions."""
        pts = as_points(points, dim=self.dim)
        if pts.shape[0] == 0:
            return self._noop("insert")
        old_n = self.size
        matrix = np.vstack([self._matrix, pts])
        positions = np.arange(old_n, old_n + pts.shape[0], dtype=np.int64)
        return self._commit(
            "insert",
            matrix,
            positions=positions,
            mapping=np.arange(old_n, dtype=np.int64),
            old_points=np.empty((0, self.dim)),
            new_points=pts.copy(),
        )

    def delete(self, positions: Sequence[int]) -> Mutation:
        """Remove rows and compact; ``mapping`` renumbers the survivors.

        The keep-set and mapping are pure mask arithmetic (no Python
        loop): ``mask[drop] = False``, survivors get ``arange`` positions.
        """
        drop = self._validate_positions(positions)
        if drop.size == 0:
            return self._noop("delete")
        old_n = self.size
        mask = np.ones(old_n, dtype=bool)
        mask[drop] = False
        keep = np.flatnonzero(mask)
        mapping = np.full(old_n, -1, dtype=np.int64)
        mapping[keep] = np.arange(keep.size, dtype=np.int64)
        old_points = np.array(self._matrix[drop])
        return self._commit(
            "delete",
            np.array(self._matrix[keep]),
            positions=drop,
            mapping=mapping,
            old_points=old_points,
            new_points=np.empty((0, self.dim)),
        )

    def update(
        self, positions: Sequence[int], points: np.ndarray
    ) -> Mutation:
        """Replace the coordinates of existing rows in place (by copy)."""
        target = np.asarray(list(positions), dtype=np.int64)
        if np.unique(target).size != target.size:
            raise InvalidParameterError("update positions must be distinct")
        if target.size and (target.min() < 0 or target.max() >= self.size):
            bad = int(target.min() if target.min() < 0 else target.max())
            raise InvalidParameterError(
                f"{self.role} position {bad} out of range"
            )
        pts = as_points(points, dim=self.dim)
        if pts.shape[0] != target.size:
            raise InvalidParameterError(
                f"update got {target.size} positions but {pts.shape[0]} "
                "points"
            )
        if target.size == 0:
            return self._noop("update")
        # Normalise to ascending positions, carrying the points along.
        order = np.argsort(target)
        target = target[order]
        pts = pts[order]
        old_points = np.array(self._matrix[target])
        matrix = self._matrix.copy()
        matrix[target] = pts
        return self._commit(
            "update",
            matrix,
            positions=target,
            mapping=np.arange(self.size, dtype=np.int64),
            old_points=old_points,
            new_points=pts.copy(),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_positions(self, positions: Sequence[int]) -> np.ndarray:
        arr = np.unique(np.asarray(list(positions), dtype=np.int64))
        if arr.size and (arr[0] < 0 or arr[-1] >= self.size):
            bad = int(arr[0] if arr[0] < 0 else arr[-1])
            raise InvalidParameterError(
                f"{self.role} position {bad} out of range"
            )
        return arr

    def _noop(self, kind: str) -> Mutation:
        return Mutation(
            kind=kind,
            epoch=self._epoch,
            positions=np.empty(0, dtype=np.int64),
            mapping=np.arange(self.size, dtype=np.int64),
            old_points=np.empty((0, self.dim)),
            new_points=np.empty((0, self.dim)),
        )

    def _commit(self, kind: str, matrix: np.ndarray, **fields) -> Mutation:
        self._matrix = _frozen(matrix)
        self._epoch += 1
        mutation = Mutation(kind=kind, epoch=self._epoch, **fields)
        for listener in self._listeners:
            listener(mutation)
        return mutation


class ProductStore(VersionedStore):
    """The versioned product matrix ``P`` (the indexed side)."""

    role = "product"


class CustomerStore(VersionedStore):
    """The versioned customer matrix ``C``.

    In the monochromatic convention the engine does *not* build one of
    these: it points both roles at a single shared :class:`ProductStore`,
    so ``engine.customers is engine.products`` keeps holding and one
    mutation drives both sides coherently.
    """

    role = "customer"
