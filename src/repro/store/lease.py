"""Snapshot leases: request-granular epoch pinning for one writer and
many readers.

The engine's :class:`~repro.core.gate.ReadWriteGate` makes a *single
plan execution* atomic against a mutation, but a serving request is
usually several plans (``answer_why_not`` is four surface calls): a
writer slipping between two of them turns the request into a
:class:`~repro.exceptions.StaleSessionError` mid-flight.  A
:class:`SnapshotLease` extends the pin to the whole request: a reader
acquires a lease before its first plan and releases it after building
the response, and the writer's :meth:`LeaseRegistry.drain` waits until
every outstanding lease is released — blocking *new* leases meanwhile,
so a steady read stream cannot starve the writer — before the mutation
batch is applied.

Epoch-bump notification rides on the same condition variable:
:meth:`LeaseRegistry.wait_epoch_beyond` blocks until the published
epoch moves past a given generation (with a deadline), which is how
drained serve sessions learn they can re-pin without polling.

The registry is thread-based (the engine's readers run in executor
threads); the asyncio service wraps the two blocking calls —
contended ``acquire`` and ``drain`` — in its executor.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["LeaseRegistry", "SnapshotLease"]


class SnapshotLease:
    """One reader's hold on one dataset generation.

    Context-manager style; releasing twice is a no-op.  The lease only
    *records* the epoch it was pinned at — consistency comes from the
    registry's drain protocol, not from copying data.
    """

    __slots__ = ("_registry", "epoch", "_released")

    def __init__(self, registry: "LeaseRegistry", epoch: int) -> None:
        self._registry = registry
        self.epoch = epoch
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry._release()

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"SnapshotLease(epoch={self.epoch}, {state})"


class LeaseRegistry:
    """Single-writer / multi-reader coordination at request granularity.

    Parameters
    ----------
    epoch_fn:
        Zero-argument callable returning the current dataset epoch
        (``lambda: engine.dataset_epoch``); leases pin its value at
        acquisition time and :meth:`publish` re-reads it after a write
        batch.
    """

    def __init__(self, epoch_fn: Callable[[], int]) -> None:
        self._epoch_fn = epoch_fn
        self._cond = threading.Condition()
        self._active = 0
        self._writer_pending = False
        self._published_epoch = int(epoch_fn())
        # Lifetime accounting (read by the serve counters and tests).
        self.acquired_total = 0
        self.drains_total = 0
        self.drained_leases_total = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Leases currently held."""
        return self._active

    @property
    def writer_pending(self) -> bool:
        """True while a writer is draining (new leases will block)."""
        return self._writer_pending

    @property
    def published_epoch(self) -> int:
        """The epoch most recently published by :meth:`publish` (or at
        construction)."""
        return self._published_epoch

    def acquire(self, timeout: "float | None" = None) -> SnapshotLease:
        """Pin the current epoch; blocks while a writer is draining.

        Raises ``TimeoutError`` when the writer does not finish within
        ``timeout`` seconds.
        """
        with self._cond:
            if self._writer_pending and not self._cond.wait_for(
                lambda: not self._writer_pending, timeout=timeout
            ):
                raise TimeoutError(
                    "timed out waiting for the writer to finish its batch"
                )
            self._active += 1
            self.acquired_total += 1
            return SnapshotLease(self, int(self._epoch_fn()))

    def _release(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def drain(self, timeout: "float | None" = None) -> "_DrainScope":
        """Context manager for one write batch::

            with engine.leases.drain():
                engine.insert_products(rows)   # any number of mutations

        Entering blocks new leases and waits for the active ones to
        release (``TimeoutError`` on deadline, with admission re-opened);
        exiting publishes the new epoch and wakes epoch waiters.  Only
        one writer may drain at a time — a second concurrent ``drain``
        raises ``RuntimeError`` (the contract is *single*-writer; the
        serve layer serializes mutations through one writer task).
        """
        return _DrainScope(self, timeout)

    def publish(self) -> int:
        """Re-read and publish the current epoch, waking every
        :meth:`wait_epoch_beyond` waiter.  Called automatically when a
        drain scope exits; harmless to call directly after out-of-band
        mutations."""
        with self._cond:
            self._published_epoch = int(self._epoch_fn())
            self._cond.notify_all()
            return self._published_epoch

    # ------------------------------------------------------------------
    # Epoch-bump notification
    # ------------------------------------------------------------------
    def wait_epoch_beyond(
        self, epoch: int, timeout: "float | None" = None
    ) -> int:
        """Block until the published epoch exceeds ``epoch``; returns the
        published epoch, raising ``TimeoutError`` on deadline."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._published_epoch > epoch, timeout=timeout
            ):
                raise TimeoutError(
                    f"epoch did not move beyond {epoch} within the deadline"
                )
            return self._published_epoch

    def __repr__(self) -> str:
        return (
            f"LeaseRegistry(active={self._active}, "
            f"writer_pending={self._writer_pending}, "
            f"published_epoch={self._published_epoch})"
        )


class _DrainScope:
    """The writer's context manager; see :meth:`LeaseRegistry.drain`."""

    def __init__(self, registry: LeaseRegistry, timeout: "float | None") -> None:
        self._registry = registry
        self._timeout = timeout

    def __enter__(self) -> LeaseRegistry:
        registry = self._registry
        with registry._cond:
            if registry._writer_pending:
                raise RuntimeError(
                    "another writer is already draining; the lease "
                    "contract is single-writer"
                )
            registry._writer_pending = True
            registry.drains_total += 1
            registry.drained_leases_total += registry._active
            if not registry._cond.wait_for(
                lambda: registry._active == 0, timeout=self._timeout
            ):
                registry._writer_pending = False
                registry._cond.notify_all()
                raise TimeoutError(
                    f"{registry._active} lease(s) still held past the "
                    "drain deadline"
                )
        return registry

    def __exit__(self, *exc_info) -> None:
        registry = self._registry
        with registry._cond:
            registry._writer_pending = False
            registry._published_epoch = int(registry._epoch_fn())
            registry._cond.notify_all()
