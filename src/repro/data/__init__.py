"""Datasets: the paper's worked example, synthetic generators (UN / CO /
AC), the simulated CarDB substitute, and the experiment workload builder.
"""

from repro.data.cardb import generate_cardb
from repro.data.dataset import Dataset
from repro.data.paperdata import paper_points, paper_query
from repro.data.synthetic import (
    generate_anticorrelated,
    generate_correlated,
    generate_uniform,
)
from repro.data.workload import WhyNotQuery, build_workload

__all__ = [
    "Dataset",
    "paper_points",
    "paper_query",
    "generate_uniform",
    "generate_correlated",
    "generate_anticorrelated",
    "generate_cardb",
    "WhyNotQuery",
    "build_workload",
]
