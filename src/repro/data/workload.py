"""Workload builder for the Section-VI experiment protocol.

The paper runs, per dataset, reverse-skyline queries with 1-15 members
("the queries follow the distribution of the particular tested dataset"),
then randomly selects a data point as the why-not point of each query.
``build_workload`` reproduces that: it samples query candidates near data
points, keeps the first query found for each requested ``|RSL|`` target,
and draws a random non-member customer as the why-not point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.engine import WhyNotEngine
from repro.exceptions import InvalidParameterError

__all__ = ["WhyNotQuery", "build_workload"]


@dataclass(frozen=True)
class WhyNotQuery:
    """One experiment unit: a query with a known reverse skyline and a
    randomly chosen why-not customer."""

    query: np.ndarray
    rsl_positions: np.ndarray
    why_not_position: int

    @property
    def rsl_size(self) -> int:
        return int(self.rsl_positions.size)

    def __repr__(self) -> str:
        coords = ", ".join(f"{v:g}" for v in self.query)
        return (
            f"WhyNotQuery(q=({coords}), |RSL|={self.rsl_size}, "
            f"why_not={self.why_not_position})"
        )


def build_workload(
    engine: WhyNotEngine,
    targets: Sequence[int] = tuple(range(1, 16)),
    seed: int = 0,
    max_attempts: int = 4000,
    jitter: float = 0.05,
    patience: int = 600,
) -> list[WhyNotQuery]:
    """Find one query per requested ``|RSL|`` size with a why-not point.

    Parameters
    ----------
    engine:
        The engine over the tested dataset (monochromatic, like the paper).
    targets:
        Desired reverse-skyline sizes; queries are kept on first match, so
        the returned list may omit sizes the dataset never produces (the
        paper's synthetic tables likewise stop at small sizes).
    seed:
        Workload randomness (query sampling and why-not choice).
    max_attempts:
        Upper bound on sampled query candidates.
    jitter:
        Query points are data points perturbed by this fraction of the
        per-dimension data range, which keeps them "following the
        distribution of the tested dataset" without duplicating a row.
    patience:
        Stop early after this many consecutive attempts that fill no new
        target — rare reverse-skyline sizes simply do not occur in some
        datasets (the paper's tables skip sizes too).

    Returns
    -------
    Queries sorted by ``|RSL|`` ascending.
    """
    wanted = set(int(t) for t in targets)
    if not wanted or min(wanted) < 0:
        raise InvalidParameterError("targets must be non-negative sizes")
    rng = np.random.default_rng(seed)
    span = engine.bounds.hi - engine.bounds.lo
    found: dict[int, WhyNotQuery] = {}
    n = engine.customers.shape[0]
    stale = 0

    for _attempt in range(max_attempts):
        if not wanted or stale >= patience:
            break
        anchor = engine.customers[int(rng.integers(0, n))]
        query = anchor + rng.normal(0.0, jitter, size=engine.dim) * span
        query = np.clip(query, engine.bounds.lo, engine.bounds.hi)
        rsl = engine.reverse_skyline(query)
        size = int(rsl.size)
        if size not in wanted:
            stale += 1
            continue
        why_not = _pick_why_not(engine, query, rsl, rng)
        if why_not is None:
            stale += 1
            continue
        found[size] = WhyNotQuery(
            query=query, rsl_positions=rsl, why_not_position=why_not
        )
        wanted.discard(size)
        stale = 0

    return [found[size] for size in sorted(found)]


def _pick_why_not(
    engine: WhyNotEngine,
    query: np.ndarray,
    rsl: np.ndarray,
    rng: np.random.Generator,
    tries: int = 64,
) -> int | None:
    """A random customer that is *not* in the reverse skyline and has a
    non-empty explanation (always true for a genuine non-member)."""
    n = engine.customers.shape[0]
    members = set(int(i) for i in rsl)
    for _ in range(tries):
        position = int(rng.integers(0, n))
        if position in members:
            continue
        explanation = engine.explain(position, query)
        if explanation.is_member:
            continue  # Boundary case: not in RSL set but window empty.
        return position
    return None
