"""Simulated CarDB — the Yahoo! Autos substitution.

The paper evaluates on "CarDB", a used-car listing crawl from
autos.yahoo.com with the two numeric attributes Price and Mileage, at
50K / 100K / 200K rows, and notes the distribution is *sparse*.  The crawl
is long gone, so this module builds the closest synthetic equivalent (see
DESIGN.md §5):

* cars cluster by market segment (a seeded mixture of segments from cheap
  high-mileage beaters to near-new premium cars), giving the sparse,
  clumpy joint distribution of real listings;
* price is log-normal within a segment (heavy right tail);
* mileage falls with price inside every segment (negative correlation),
  plus wide idiosyncratic noise so dynamic skylines stay non-trivial.

What the experiments actually depend on is only this shape: sparse
clusters, negative price-mileage correlation, heavy tails — these drive
realistic ``|RSL(q)|`` (the paper's 1-15 range) and non-empty ``Λ`` sets.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box

__all__ = ["generate_cardb", "CARDB_SEGMENTS"]

# (weight, mean log-price, sigma log-price, base mileage, mileage slope,
#  mileage noise).  Prices in dollars, mileage in miles.  Slope couples
# mileage negatively to the car's price percentile inside the segment.
CARDB_SEGMENTS: tuple[tuple[float, float, float, float, float, float], ...] = (
    (0.22, np.log(4_500.0), 0.45, 145_000.0, -60_000.0, 28_000.0),   # beaters
    (0.28, np.log(11_000.0), 0.35, 95_000.0, -45_000.0, 24_000.0),   # commuters
    (0.24, np.log(21_000.0), 0.30, 55_000.0, -35_000.0, 18_000.0),   # family
    (0.16, np.log(34_000.0), 0.28, 28_000.0, -20_000.0, 12_000.0),   # near-new
    (0.10, np.log(62_000.0), 0.40, 18_000.0, -14_000.0, 9_000.0),    # premium
)

PRICE_RANGE = (500.0, 150_000.0)
MILEAGE_RANGE = (0.0, 260_000.0)


def generate_cardb(n: int, seed: int = 0) -> Dataset:
    """A seeded simulated CarDB with ``n`` (price, mileage) rows.

    Matches the paper's usage: two numeric attributes where smaller is
    better for both (cheaper car, fewer miles), sparse and clustered.
    """
    if n <= 0:
        raise InvalidParameterError("dataset size must be positive")
    rng = np.random.default_rng(seed)
    weights = np.array([seg[0] for seg in CARDB_SEGMENTS])
    weights = weights / weights.sum()
    assignments = rng.choice(len(CARDB_SEGMENTS), size=n, p=weights)

    prices = np.empty(n)
    mileages = np.empty(n)
    for idx, (_w, mu, sigma, base, slope, noise) in enumerate(CARDB_SEGMENTS):
        mask = assignments == idx
        count = int(mask.sum())
        if count == 0:
            continue
        z = rng.normal(0.0, 1.0, size=count)
        prices[mask] = np.exp(mu + sigma * z)
        # Percentile within segment (the z-score CDF) drives mileage down.
        percentile = _standard_normal_cdf(z)
        mileages[mask] = (
            base
            + slope * percentile
            + rng.normal(0.0, noise, size=count)
        )

    prices = np.clip(prices, *PRICE_RANGE)
    mileages = np.clip(mileages, *MILEAGE_RANGE)
    points = np.column_stack([prices, mileages])
    bounds = Box(
        [PRICE_RANGE[0], MILEAGE_RANGE[0]], [PRICE_RANGE[1], MILEAGE_RANGE[1]]
    )
    size_label = f"{n // 1000}K" if n % 1000 == 0 else str(n)
    return Dataset(f"CarDB-{size_label}", points, bounds, ("price", "mileage"))


def _standard_normal_cdf(z: np.ndarray) -> np.ndarray:
    """Φ(z) via erf — keeps the generator dependency-free beyond numpy."""
    from math import sqrt

    return 0.5 * (1.0 + _erf_vec(z / sqrt(2.0)))


def _erf_vec(x: np.ndarray) -> np.ndarray:
    """Vectorised Abramowitz-Stegun 7.1.26 erf approximation (|err| < 1.5e-7),
    plenty for shaping a synthetic distribution."""
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))
