"""Dataset and experiment-record persistence.

Datasets round-trip through ``.npz`` (fast, exact) and ``.csv`` (for
interoperability with the original CarDB-style flat files); experiment
records serialise to JSON so harness runs can be archived and diffed.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.experiments.records import ApproxOutcome, DatasetResult, QueryRecord
from repro.geometry.box import Box

__all__ = [
    "save_dataset_npz",
    "load_dataset_npz",
    "save_dataset_csv",
    "load_dataset_csv",
    "save_results_json",
    "load_results_json",
]


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
def save_dataset_npz(dataset: Dataset, path: "str | Path") -> None:
    """Exact binary round-trip of a dataset (points, bounds, labels)."""
    np.savez_compressed(
        path,
        points=dataset.points,
        bounds_lo=dataset.bounds.lo,
        bounds_hi=dataset.bounds.hi,
        name=np.array(dataset.name),
        labels=np.array(list(dataset.labels), dtype=object),
    )


def load_dataset_npz(path: "str | Path") -> Dataset:
    with np.load(path, allow_pickle=True) as archive:
        return Dataset(
            name=str(archive["name"]),
            points=archive["points"],
            bounds=Box(archive["bounds_lo"], archive["bounds_hi"]),
            labels=tuple(str(label) for label in archive["labels"]),
        )


def save_dataset_csv(dataset: Dataset, path: "str | Path") -> None:
    """Header row of labels (or dim0..dimN), one point per line."""
    labels = dataset.labels or tuple(f"dim{i}" for i in range(dataset.dim))
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(labels)
        writer.writerows(dataset.points.tolist())


def load_dataset_csv(
    path: "str | Path", name: str | None = None, pad: float = 0.0
) -> Dataset:
    """Load a flat CSV of numeric columns; bounds come from the data."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise InvalidParameterError(f"{path}: empty CSV")
        rows = [[float(cell) for cell in row] for row in reader if row]
    if not rows:
        raise InvalidParameterError(f"{path}: no data rows")
    return Dataset.from_points(
        name or Path(path).stem,
        np.asarray(rows, dtype=np.float64),
        labels=tuple(header),
        pad=pad,
    )


# ----------------------------------------------------------------------
# Experiment records
# ----------------------------------------------------------------------
def _record_to_dict(record: QueryRecord) -> dict:
    return {
        "dataset": record.dataset,
        "rsl_size": record.rsl_size,
        "query": record.query.tolist(),
        "why_not_position": record.why_not_position,
        "mwp_cost": record.mwp_cost,
        "mqp_cost": record.mqp_cost,
        "mwq_cost": record.mwq_cost,
        "mwq_case": record.mwq_case,
        "mwp_time": record.mwp_time,
        "mqp_time": record.mqp_time,
        "sr_time": record.sr_time,
        "mwq_time": record.mwq_time,
        "sr_area": record.sr_area,
        "sr_boxes": record.sr_boxes,
        "approx": {
            str(k): {
                "cost": outcome.cost,
                "sr_time": outcome.sr_time,
                "mwq_time": outcome.mwq_time,
                "sr_area": outcome.sr_area,
            }
            for k, outcome in record.approx.items()
        },
    }


def _record_from_dict(data: dict) -> QueryRecord:
    record = QueryRecord(
        dataset=data["dataset"],
        rsl_size=data["rsl_size"],
        query=np.asarray(data["query"], dtype=np.float64),
        why_not_position=data["why_not_position"],
        mwp_cost=data["mwp_cost"],
        mqp_cost=data["mqp_cost"],
        mwq_cost=data["mwq_cost"],
        mwq_case=data["mwq_case"],
        mwp_time=data["mwp_time"],
        mqp_time=data["mqp_time"],
        sr_time=data["sr_time"],
        mwq_time=data["mwq_time"],
        sr_area=data["sr_area"],
        sr_boxes=data["sr_boxes"],
    )
    for k, payload in data.get("approx", {}).items():
        record.approx[int(k)] = ApproxOutcome(
            k=int(k),
            cost=payload["cost"],
            sr_time=payload["sr_time"],
            mwq_time=payload["mwq_time"],
            sr_area=payload["sr_area"],
        )
    return record


def save_results_json(results: "list[DatasetResult]", path: "str | Path") -> None:
    payload = [
        {
            "dataset": result.dataset,
            "size": result.size,
            "records": [_record_to_dict(r) for r in result.records],
        }
        for result in results
    ]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, allow_nan=True)


def load_results_json(path: "str | Path") -> "list[DatasetResult]":
    with open(path) as handle:
        payload = json.load(handle)
    results = []
    for entry in payload:
        result = DatasetResult(dataset=entry["dataset"], size=entry["size"])
        result.records = [_record_from_dict(r) for r in entry["records"]]
        results.append(result)
    return results
