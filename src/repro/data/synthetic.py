"""Synthetic data generators: uniform, correlated, anti-correlated.

The three classic skyline-benchmark distributions of Börzsönyi et al. that
the paper's Table IV / VI use (UN, CO, AC).  All generators are seeded and
produce points in the unit hypercube:

* **UN** — independent uniform dimensions;
* **CO** — points spread around the main diagonal (good values cluster
  together: few skyline points, dense dominance);
* **AC** — points spread around the anti-diagonal hyperplane (good values
  trade off against each other: large skylines).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box

__all__ = [
    "generate_uniform",
    "generate_correlated",
    "generate_anticorrelated",
    "SYNTHETIC_GENERATORS",
]


def _check(n: int, dim: int) -> None:
    if n <= 0:
        raise InvalidParameterError("dataset size must be positive")
    if dim < 2:
        raise InvalidParameterError("dimensionality must be at least 2")


def _unit_bounds(dim: int) -> Box:
    return Box(np.zeros(dim), np.ones(dim))


def generate_uniform(n: int, dim: int = 2, seed: int = 0) -> Dataset:
    """Independent uniform values in [0, 1] per dimension (UN)."""
    _check(n, dim)
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(n, dim))
    return Dataset(f"UN-{n}", points, _unit_bounds(dim))


def generate_correlated(
    n: int, dim: int = 2, seed: int = 0, spread: float = 0.12
) -> Dataset:
    """Correlated values (CO): a shared base value per point plus small
    per-dimension jitter, reflected back into the unit cube.

    ``spread`` controls how tightly points hug the diagonal; the default
    matches the classic benchmark's visual density.
    """
    _check(n, dim)
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, size=(n, 1))
    jitter = rng.normal(0.0, spread, size=(n, dim))
    points = _reflect_into_unit(base + jitter)
    return Dataset(f"CO-{n}", points, _unit_bounds(dim))


def generate_anticorrelated(
    n: int, dim: int = 2, seed: int = 0, spread: float = 0.06
) -> Dataset:
    """Anti-correlated values (AC): points near the plane ``sum = d/2``
    with per-dimension trade-offs, reflected into the unit cube."""
    _check(n, dim)
    rng = np.random.default_rng(seed)
    # Sample on the simplex-like band: start uniform, project toward the
    # anti-diagonal plane, then jitter within it.
    raw = rng.uniform(0.0, 1.0, size=(n, dim))
    target = dim / 2.0
    correction = (target - raw.sum(axis=1, keepdims=True)) / dim
    banded = raw + correction + rng.normal(0.0, spread, size=(n, dim))
    points = _reflect_into_unit(banded)
    return Dataset(f"AC-{n}", points, _unit_bounds(dim))


def _reflect_into_unit(points: np.ndarray) -> np.ndarray:
    """Reflect values into [0, 1] (mirror at the borders), which preserves
    the local density shape better than clipping (no edge atoms)."""
    folded = np.mod(points, 2.0)
    return np.where(folded > 1.0, 2.0 - folded, folded)


SYNTHETIC_GENERATORS = {
    "UN": generate_uniform,
    "CO": generate_correlated,
    "AC": generate_anticorrelated,
}
