"""The paper's worked example (Fig. 1(a)).

Eight (price, mileage) tuples that serve as products and customers
throughout Sections II-V, plus the query point q(8.5K, 55K).  Values are
in thousands, exactly as plotted in the figures.  Used by the example
scripts and by the golden tests that pin the worked-example outputs.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry.box import Box

__all__ = [
    "paper_points",
    "paper_query",
    "paper_dataset",
    "PT1",
    "PT2",
    "PT3",
    "PT4",
    "PT5",
    "PT6",
    "PT7",
    "PT8",
]

PT1 = np.array([5.0, 30.0])
PT2 = np.array([7.5, 42.0])
PT3 = np.array([2.5, 70.0])
PT4 = np.array([7.5, 90.0])
PT5 = np.array([24.0, 20.0])
PT6 = np.array([20.0, 50.0])
PT7 = np.array([26.0, 70.0])
PT8 = np.array([16.0, 80.0])


def paper_points() -> np.ndarray:
    """The eight data points of Fig. 1(a), in table order."""
    return np.vstack([PT1, PT2, PT3, PT4, PT5, PT6, PT7, PT8])


def paper_query() -> np.ndarray:
    """The running query product q(price 8.5K, mileage 55K)."""
    return np.array([8.5, 55.0])


def paper_dataset() -> Dataset:
    """The worked example wrapped as a :class:`Dataset`.

    Bounds cover the data and the query with a little slack so safe-region
    rectangles have room on every side, mirroring the paper's figures.
    """
    return Dataset(
        name="paper-example",
        points=paper_points(),
        bounds=Box([0.0, 0.0], [30.0, 120.0]),
        labels=("price", "mileage"),
    )
