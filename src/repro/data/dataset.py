"""The :class:`Dataset` wrapper.

A named ``(n, d)`` point matrix with explicit universe bounds and
dimension labels — the unit every generator returns and every experiment
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_points

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """An immutable point collection with provenance.

    Attributes
    ----------
    name:
        Human-readable identifier (``"CarDB-50K"``, ``"UN-100K"``, ...).
    points:
        ``(n, d)`` float64 matrix.
    bounds:
        The data universe; region clipping and min-max normalisation both
        use it so costs are comparable across queries.
    labels:
        Optional per-dimension attribute names.
    """

    name: str
    points: np.ndarray
    bounds: Box
    labels: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        arr = as_points(self.points)
        if arr.shape[0] == 0:
            raise EmptyDatasetError(f"dataset {self.name!r} has no points")
        arr.flags.writeable = False
        object.__setattr__(self, "points", arr)
        if self.bounds.dim != arr.shape[1]:
            raise InvalidParameterError(
                f"bounds dimensionality {self.bounds.dim} != data {arr.shape[1]}"
            )
        if self.labels and len(self.labels) != arr.shape[1]:
            raise InvalidParameterError(
                f"{len(self.labels)} labels for {arr.shape[1]} dimensions"
            )

    @classmethod
    def from_points(
        cls,
        name: str,
        points: np.ndarray,
        labels: Sequence[str] = (),
        pad: float = 0.0,
    ) -> "Dataset":
        """Build a dataset whose bounds are the data's bounding box,
        optionally padded by a fraction of each dimension's range."""
        arr = as_points(points)
        if arr.shape[0] == 0:
            raise EmptyDatasetError(f"dataset {name!r} has no points")
        lo = arr.min(axis=0)
        hi = arr.max(axis=0)
        if pad:
            span = np.where(hi > lo, hi - lo, 1.0)
            lo = lo - pad * span
            hi = hi + pad * span
        return cls(name, arr, Box(lo, hi), tuple(labels))

    @property
    def size(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def sample_positions(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` distinct row positions chosen uniformly."""
        n = min(n, self.size)
        return rng.choice(self.size, size=n, replace=False)

    def subset(self, positions: Sequence[int], name: str | None = None) -> "Dataset":
        """A new dataset over selected rows, keeping bounds and labels."""
        return Dataset(
            name or f"{self.name}-subset",
            self.points[np.asarray(positions, dtype=np.int64)],
            self.bounds,
            self.labels,
        )

    def __repr__(self) -> str:
        return f"Dataset({self.name!r}, n={self.size}, d={self.dim})"
