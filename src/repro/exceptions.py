"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can install a
single ``except`` clause around any public entry point.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatchError(ReproError):
    """Raised when points, boxes, or datasets disagree on dimensionality."""

    def __init__(self, expected: int, got: int, what: str = "point") -> None:
        self.expected = expected
        self.got = got
        super().__init__(
            f"{what} has dimensionality {got}, expected {expected}"
        )


class EmptyDatasetError(ReproError):
    """Raised when an operation requires at least one data point."""


class InvalidParameterError(ReproError):
    """Raised when a caller passes an out-of-range or nonsensical parameter."""


class NotInReverseSkylineError(ReproError):
    """Raised when a why-not question targets a point that *is* already
    in the reverse skyline (there is nothing to explain)."""


class AlreadyInReverseSkylineError(NotInReverseSkylineError):
    """Backward-compatible alias describing the same situation more
    precisely: the point is already a reverse-skyline member."""


class IndexCorruptionError(ReproError):
    """Raised by the R-tree integrity checker when a structural invariant
    (MBR containment, fanout bounds, leaf level uniformity) is violated."""


class StaleSessionError(ReproError):
    """Raised when a :class:`repro.store.WhyNotSession` pinned to one
    dataset epoch is read after the underlying store mutated.  Refresh the
    session to accept the new generation.

    Carries the two epochs as structured attributes so machine callers
    (the serve layer maps this to a retryable response) never have to
    parse the message: :attr:`pinned_epoch` is the generation the reader
    was pinned to, :attr:`current_epoch` the engine's generation at the
    time of the failed read.  Either may be ``None`` for raise sites
    that predate the contract.
    """

    def __init__(
        self,
        message: str,
        *,
        pinned_epoch: "int | None" = None,
        current_epoch: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.pinned_epoch = pinned_epoch
        self.current_epoch = current_epoch
