"""Dynamic skylines (Definition 2).

The dynamic skyline of a customer ``c`` over a product set ``P`` is the
plain skyline of ``P`` after mapping every product to its coordinate-wise
absolute distance from ``c`` (Papadias et al.); these helpers perform the
transform-then-skyline composition and are the basis of the anti-dominance
region construction of Section V.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import as_point, as_points
from repro.geometry.transform import to_query_space
from repro.skyline.algorithms import skyline_indices

__all__ = [
    "dynamic_skyline_indices",
    "dynamic_skyline_points",
    "is_in_dynamic_skyline",
]


def dynamic_skyline_indices(
    points: np.ndarray,
    origin: Sequence[float],
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of ``DSL(origin)`` within ``points``.

    ``exclude`` removes positions before the computation — the monochromatic
    experiments exclude the customer itself from the product set, exactly as
    the paper's running example does with ``pt_1``.  With ``weights``, the
    transformed skyline runs over the weights' support dimensions only.
    """
    arr = as_points(points)
    o = as_point(origin, dim=arr.shape[1] if arr.size else None)
    mask = np.ones(arr.shape[0], dtype=bool)
    exclude_arr = np.asarray(list(exclude), dtype=np.int64)
    if exclude_arr.size:
        mask[exclude_arr] = False
    positions = np.flatnonzero(mask)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    transformed = to_query_space(arr[positions], o)
    local = skyline_indices(transformed, weights)
    return positions[local]


def dynamic_skyline_points(
    points: np.ndarray,
    origin: Sequence[float],
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """The ``DSL(origin)`` rows themselves (original coordinates)."""
    arr = as_points(points)
    return arr[dynamic_skyline_indices(arr, origin, exclude, weights)]


def is_in_dynamic_skyline(
    points: np.ndarray,
    origin: Sequence[float],
    candidate: Sequence[float],
) -> bool:
    """Membership test for an external candidate (not required to be a row
    of ``points``) under weak dominance: no product may be closer-or-equal
    to ``origin`` in every dimension and strictly closer in one."""
    arr = as_points(points)
    o = as_point(origin)
    t_cand = to_query_space(as_point(candidate, dim=o.size), o)
    if arr.shape[0] == 0:
        return True
    transformed = to_query_space(arr, o)
    dominated = np.all(transformed <= t_cand, axis=1) & np.any(
        transformed < t_cand, axis=1
    )
    return not bool(dominated.any())
