"""Dominance kernels.

All skylines in this library minimise every dimension; dynamic dominance is
plain dominance after the ``|c - .|`` transform.  The :class:`DominancePolicy`
distinguishes the textbook weak relation from the strict (open-window)
relation the paper's constructions rely on — see DESIGN.md section 2.

Every kernel takes an optional per-dimension ``weights`` vector (see
:mod:`repro.prefs`): comparisons run over the weights' *support* only —
a zero weight drops that dimension (projection semantics), and positive
magnitudes never change a verdict (scale invariance), so ``weights=None``
and any all-positive vector are bit-identical to the historical paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point, as_points
from repro.geometry.transform import to_query_space
from repro.prefs.model import support_dims

__all__ = [
    "dominates",
    "dominated_mask",
    "dominating_mask",
    "dynamically_dominates",
    "is_dominated_by_any",
]


def _project(arr: np.ndarray, weights) -> np.ndarray:
    """Slice the trailing axis to the weights' support (no-op for
    ``None`` or full support)."""
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        arr.shape[-1],
    )
    if dims is None:
        return arr
    return arr[..., dims]


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "Sequence[float] | None" = None,
) -> bool:
    """True when ``a`` dominates ``b`` (smaller is better).

    ``WEAK``: ``a <= b`` everywhere and ``a < b`` somewhere (Definition 1).
    ``STRICT``: ``a < b`` everywhere.
    With ``weights``, "everywhere/somewhere" range over the support only.
    """
    pa = as_point(a)
    pb = as_point(b, dim=pa.size)
    if weights is not None:
        pa = _project(pa, weights)
        pb = _project(pb, weights)
    if policy is DominancePolicy.STRICT:
        return bool(np.all(pa < pb))
    return bool(np.all(pa <= pb) and np.any(pa < pb))


def dominated_mask(
    points: np.ndarray,
    target: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "Sequence[float] | None" = None,
) -> np.ndarray:
    """Boolean mask: which rows of ``points`` are dominated by ``target``."""
    t = as_point(target)
    arr = as_points(points, dim=t.size)
    if arr.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if weights is not None:
        t = _project(t, weights)
        arr = _project(arr, weights)
    if policy is DominancePolicy.STRICT:
        return np.all(t < arr, axis=1)
    return np.all(t <= arr, axis=1) & np.any(t < arr, axis=1)


def dominating_mask(
    points: np.ndarray,
    target: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "Sequence[float] | None" = None,
) -> np.ndarray:
    """Boolean mask: which rows of ``points`` dominate ``target``."""
    t = as_point(target)
    arr = as_points(points, dim=t.size)
    if arr.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if weights is not None:
        t = _project(t, weights)
        arr = _project(arr, weights)
    if policy is DominancePolicy.STRICT:
        return np.all(arr < t, axis=1)
    return np.all(arr <= t, axis=1) & np.any(arr < t, axis=1)


def is_dominated_by_any(
    points: np.ndarray,
    target: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "Sequence[float] | None" = None,
) -> bool:
    """True when some row of ``points`` dominates ``target``."""
    return bool(dominating_mask(points, target, policy, weights).any())


def dynamically_dominates(
    p1: Sequence[float],
    p2: Sequence[float],
    origin: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "Sequence[float] | None" = None,
) -> bool:
    """True when ``p1`` dynamically dominates ``p2`` w.r.t. ``origin``
    (Definition 2): dominance after the absolute-distance transform."""
    t1 = to_query_space(as_point(p1), origin)
    t2 = to_query_space(as_point(p2), origin)
    return dominates(t1, t2, policy, weights)
