"""Reverse skyline queries (Definition 3).

``reverse_skyline_naive`` runs one window query per customer — the direct
realisation of the definition and the correctness oracle.

``reverse_skyline_bbrs`` follows Dellis & Seeger's BBRS scheme the paper
uses [9]: first prune customers that provably cannot be members via the
per-orthant global skyline, then verify only the survivors with window
queries.  Outputs are identical by construction (property-tested).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point, as_points
from repro.index.base import SpatialIndex
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.window import window_is_empty

__all__ = [
    "is_reverse_skyline_member",
    "reverse_skyline_naive",
    "reverse_skyline_bbrs",
]


def is_reverse_skyline_member(
    product_index: SpatialIndex,
    customer: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> bool:
    """True when ``customer`` belongs to ``RSL(query)``: its window over the
    product set is empty (the Dellis-Seeger membership test)."""
    return window_is_empty(product_index, customer, query, policy, exclude)


def reverse_skyline_naive(
    product_index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_exclude: bool = False,
) -> np.ndarray:
    """Positions (into ``customers``) of ``RSL(query)`` by direct testing.

    With ``self_exclude`` the customer at position ``j`` is removed from its
    own window result — the monochromatic convention where ``customers`` is
    the same matrix as the indexed products, in the same row order.
    """
    q = as_point(query, dim=product_index.dim)
    custs = as_points(customers, dim=product_index.dim)
    if self_exclude and custs.shape[0] != product_index.size:
        raise ValueError(
            "self_exclude requires customers to be the indexed product matrix"
        )
    members = [
        j
        for j in range(custs.shape[0])
        if window_is_empty(
            product_index,
            custs[j],
            q,
            policy,
            exclude=(j,) if self_exclude else (),
        )
    ]
    return np.asarray(members, dtype=np.int64)


def reverse_skyline_bbrs(
    product_index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_exclude: bool = False,
) -> np.ndarray:
    """Positions of ``RSL(query)`` via global-skyline pruning + verification.

    The pruning is conservative under both dominance policies (see
    :mod:`repro.skyline.global_skyline`), so the output always matches
    :func:`reverse_skyline_naive`; only far fewer window queries run.
    """
    q = as_point(query, dim=product_index.dim)
    custs = as_points(customers, dim=product_index.dim)
    if self_exclude and custs.shape[0] != product_index.size:
        raise ValueError(
            "self_exclude requires customers to be the indexed product matrix"
        )
    candidates = global_skyline_candidates(
        product_index.points, custs, q, self_exclude=self_exclude
    )
    members = [
        int(j)
        for j in candidates
        if window_is_empty(
            product_index,
            custs[j],
            q,
            policy,
            exclude=(int(j),) if self_exclude else (),
        )
    ]
    return np.asarray(members, dtype=np.int64)
