"""Reverse skyline queries (Definition 3).

``reverse_skyline_naive`` runs one window query per customer — the direct
realisation of the definition and the correctness oracle.

``reverse_skyline_bbrs`` follows Dellis & Seeger's BBRS scheme the paper
uses [9]: first prune customers that provably cannot be members via the
per-orthant global skyline, then verify only the survivors with window
queries.  Outputs are identical by construction (property-tested).

Both accept ``batch_kernels``: verification then runs through the blocked
NumPy kernel of :mod:`repro.kernels.membership` — one broadcasted pass
over all (surviving) customers instead of one index query each — with
bit-identical output (the kernel evaluates the same predicate on the same
float arithmetic).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point, as_points
from repro.index.base import SpatialIndex
from repro.kernels.membership import (
    DEFAULT_BLOCK_SIZE,
    KernelCounters,
    batch_window_membership,
)
from repro.prefs.model import support_dims
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.window import window_is_empty

__all__ = [
    "is_reverse_skyline_member",
    "reverse_skyline_naive",
    "reverse_skyline_bbrs",
]


def is_reverse_skyline_member(
    product_index: SpatialIndex,
    customer: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> bool:
    """True when ``customer`` belongs to ``RSL(query)``: its window over the
    product set is empty (the Dellis-Seeger membership test)."""
    return window_is_empty(
        product_index, customer, query, policy, exclude, weights
    )


def _check_self_exclude(custs: np.ndarray, index: SpatialIndex) -> None:
    if custs.shape[0] != index.size:
        raise ValueError(
            "self_exclude requires customers to be the indexed product matrix"
        )


def reverse_skyline_naive(
    product_index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_exclude: bool = False,
    batch_kernels: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
    counters: KernelCounters | None = None,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions (into ``customers``) of ``RSL(query)`` by direct testing.

    With ``self_exclude`` the customer at position ``j`` is removed from its
    own window result — the monochromatic convention where ``customers`` is
    the same matrix as the indexed products, in the same row order.
    """
    q = as_point(query, dim=product_index.dim)
    custs = as_points(customers, dim=product_index.dim)
    if self_exclude:
        _check_self_exclude(custs, product_index)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        product_index.dim,
    )
    if batch_kernels:
        mask = batch_window_membership(
            product_index.points,
            custs,
            q,
            policy,
            self_positions=(
                np.arange(custs.shape[0], dtype=np.int64)
                if self_exclude
                else None
            ),
            block_size=block_size,
            counters=counters,
            dims=dims,
        )
        return np.flatnonzero(mask).astype(np.int64)
    members = [
        j
        for j in range(custs.shape[0])
        if window_is_empty(
            product_index,
            custs[j],
            q,
            policy,
            exclude=(j,) if self_exclude else (),
            weights=weights,
        )
    ]
    return np.asarray(members, dtype=np.int64)


def reverse_skyline_bbrs(
    product_index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    self_exclude: bool = False,
    batch_kernels: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
    counters: KernelCounters | None = None,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of ``RSL(query)`` via global-skyline pruning + verification.

    The pruning is conservative under both dominance policies (see
    :mod:`repro.skyline.global_skyline`), so the output always matches
    :func:`reverse_skyline_naive`; only far fewer window queries run.
    """
    q = as_point(query, dim=product_index.dim)
    custs = as_points(customers, dim=product_index.dim)
    if self_exclude:
        _check_self_exclude(custs, product_index)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        product_index.dim,
    )
    candidates = global_skyline_candidates(
        product_index.points, custs, q, self_exclude=self_exclude,
        weights=weights,
    )
    if batch_kernels:
        cand = np.asarray(candidates, dtype=np.int64)
        if cand.size == 0:
            return cand
        mask = batch_window_membership(
            product_index.points,
            custs[cand],
            q,
            policy,
            self_positions=cand if self_exclude else None,
            block_size=block_size,
            counters=counters,
            dims=dims,
        )
        return cand[mask]
    members = [
        int(j)
        for j in candidates
        if window_is_empty(
            product_index,
            custs[j],
            q,
            policy,
            exclude=(int(j),) if self_exclude else (),
            weights=weights,
        )
    ]
    return np.asarray(members, dtype=np.int64)
