"""Skyline computation.

Two complementary algorithms behind one entry point:

* a 2-D sort-and-scan pass (O(n log n)), the workhorse for the paper's
  two-attribute evaluation;
* a sort-filter block-nested-loop for any dimensionality (Börzsönyi et al.'s
  BNL with the SFS presorting refinement: after sorting by coordinate sum,
  no later point can dominate an earlier one, so a single filtered pass
  suffices).

Both return positions of the *weak-dominance* skyline: points for which no
other point is ``<=`` everywhere and ``<`` somewhere.  Duplicate points do
not dominate each other and are all retained.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import as_points
from repro.prefs.model import support_dims

__all__ = ["skyline_indices", "skyline_points"]

_BLOCK = 256  # Vectorised dominance checks are batched in blocks.


def skyline_indices(
    points: np.ndarray, weights: "np.ndarray | None" = None
) -> np.ndarray:
    """Positions of the skyline rows of ``points`` (minimising), sorted.

    With ``weights``, dominance runs over the weights' support columns
    only (see :mod:`repro.prefs`); full-support vectors take the exact
    historical path.
    """
    arr = as_points(points)
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        arr.shape[1],
    )
    if dims is not None:
        arr = arr[:, dims]
    if arr.shape[1] == 2:
        return _skyline_2d(arr)
    return _skyline_sfs(arr)


def skyline_points(
    points: np.ndarray, weights: "np.ndarray | None" = None
) -> np.ndarray:
    """The skyline rows themselves."""
    arr = as_points(points)
    return arr[skyline_indices(arr, weights)]


def _skyline_2d(arr: np.ndarray) -> np.ndarray:
    """Sort by (x asc, y asc) and keep points beating the running y-minimum.

    A scanned point is dominated iff some earlier point (in sort order) has
    strictly smaller y; exact duplicates of a kept point are themselves kept
    (nothing dominates them).  Fully vectorised: the running minimum is a
    prefix ``minimum.accumulate`` and duplicate runs inherit the decision of
    their run head.
    """
    n = arr.shape[0]
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    xs = arr[order, 0]
    ys = arr[order, 1]
    prev_min = np.concatenate(([np.inf], np.minimum.accumulate(ys)[:-1]))
    head_keep = ys < prev_min
    if n > 1:
        same_as_prev = np.concatenate(
            ([False], (xs[1:] == xs[:-1]) & (ys[1:] == ys[:-1]))
        )
        idx = np.arange(n)
        run_head = np.maximum.accumulate(np.where(same_as_prev, -1, idx))
        keep = head_keep[run_head]
    else:
        keep = head_keep
    return np.sort(order[keep])


def _skyline_sfs(arr: np.ndarray) -> np.ndarray:
    """Sort-filter skyline for any dimension.

    Sorting by coordinate sum guarantees that a dominating point precedes
    every point it dominates (weak dominance strictly lowers the sum), so a
    single pass comparing each point against the kept set is complete.
    """
    n = arr.shape[0]
    sums = arr.sum(axis=1)
    order = np.lexsort((np.arange(n), sums))
    sorted_pts = arr[order]
    kept_rows: list[int] = []
    kept_buf = np.empty((0, arr.shape[1]))
    for i in range(n):
        p = sorted_pts[i]
        if kept_rows:
            if len(kept_rows) != kept_buf.shape[0]:
                kept_buf = sorted_pts[kept_rows]
            dominated = np.any(
                np.all(kept_buf <= p, axis=1) & np.any(kept_buf < p, axis=1)
            )
            if dominated:
                continue
        kept_rows.append(i)
        if len(kept_rows) % _BLOCK == 0:
            kept_buf = sorted_pts[kept_rows]
    return np.sort(order[np.asarray(kept_rows, dtype=np.int64)])
