"""Branch-and-Bound Skyline (BBS) on the R*-tree (Papadias et al. [7]).

BBS pops index entries from a priority queue ordered by L1 mindist (in the
relevant space) and keeps a point iff it is not dominated by an already
accepted skyline point; nodes whose minimum corner is dominated are pruned
wholesale.  It is I/O-optimal on the R-tree and is the algorithm the paper
cites for dynamic-skyline computation.

``bbs_dynamic_skyline`` runs the same search in the query-centred space: a
node's transformed minimum corner is the per-dimension distance from the
origin to the node MBR (0 when the MBR straddles the origin in that
dimension), which lower-bounds every point in the subtree.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point
from repro.geometry.transform import to_query_space
from repro.index.rtree import RTree, RTreeNode
from repro.prefs.model import support_dims
from repro.skyline.dominance import is_dominated_by_any

__all__ = ["bbs_skyline", "bbs_dynamic_skyline"]


def _node_min_corner(node: RTreeNode, origin: np.ndarray | None) -> np.ndarray:
    """Component-wise lower bound of the node in the search space."""
    if origin is None:
        return node.lo.copy()
    below = np.maximum(origin - node.hi, 0.0)
    above = np.maximum(node.lo - origin, 0.0)
    return np.maximum(below, above)


def _bbs(
    tree: RTree,
    origin: np.ndarray | None,
    exclude: frozenset[int],
    dims: "np.ndarray | None" = None,
) -> np.ndarray:
    counter = itertools.count()
    root = tree.root
    heap: list[tuple[float, int, int, object]] = []
    width = tree.dim if dims is None else int(dims.size)

    def search_value(full: np.ndarray) -> np.ndarray:
        # Projection to the preference support: dominance, the priority
        # key and node pruning all run in the support subspace (the
        # min-corner bound holds per dimension, hence per subset).
        return full if dims is None else full[dims]

    start = search_value(_node_min_corner(root, origin))
    heapq.heappush(heap, (float(start.sum()), next(counter), 0, root))
    skyline_positions: list[int] = []
    skyline_coords = np.empty((0, width))

    while heap:
        _key, _tie, kind, payload = heapq.heappop(heap)
        if kind == 1:
            pos = payload  # type: ignore[assignment]
            coords = tree.points[pos]
            value = search_value(
                coords if origin is None else to_query_space(coords, origin)
            )
            if is_dominated_by_any(skyline_coords, value, DominancePolicy.WEAK):
                continue
            skyline_positions.append(pos)
            skyline_coords = np.vstack([skyline_coords, value])
            continue
        node: RTreeNode = payload  # type: ignore[assignment]
        tree.stats.node_accesses += 1
        corner = search_value(_node_min_corner(node, origin))
        if is_dominated_by_any(skyline_coords, corner, DominancePolicy.WEAK):
            continue
        if node.is_leaf:
            for pos in node.entries:
                if pos in exclude:
                    continue
                coords = tree.points[pos]
                value = search_value(
                    coords
                    if origin is None
                    else to_query_space(coords, origin)
                )
                tree.stats.point_comparisons += 1
                heapq.heappush(
                    heap, (float(value.sum()), next(counter), 1, pos)
                )
        else:
            for child in node.children:
                child_corner = search_value(_node_min_corner(child, origin))
                heapq.heappush(
                    heap,
                    (float(child_corner.sum()), next(counter), 0, child),
                )
    return np.array(sorted(skyline_positions), dtype=np.int64)


def _support(weights, dim: int) -> "np.ndarray | None":
    return support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        dim,
    )


def bbs_skyline(
    tree: RTree,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of the (static) skyline of the indexed points."""
    if tree.size == 0:
        return np.empty(0, dtype=np.int64)
    return _bbs(
        tree, None, frozenset(int(i) for i in exclude),
        _support(weights, tree.dim),
    )


def bbs_dynamic_skyline(
    tree: RTree,
    origin: Sequence[float],
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of ``DSL(origin)`` computed with BBS on the R-tree.

    Node pruning is correct because the transformed minimum corner is
    dominated only if every point of the subtree is: each subtree point's
    transformed coordinates are ``>=`` the corner component-wise, and weak
    dominance is preserved under such inflation (and under projection to
    the preference support).
    """
    if tree.size == 0:
        return np.empty(0, dtype=np.int64)
    o = as_point(origin, dim=tree.dim)
    return _bbs(
        tree, o, frozenset(int(i) for i in exclude),
        _support(weights, tree.dim),
    )
