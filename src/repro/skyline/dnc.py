"""Divide-and-conquer skyline (the D&C algorithm of Börzsönyi et al.).

Split the input at the median of the first dimension, solve both halves
recursively, and merge: the low half's skyline survives untouched (no
high-half point can dominate across the split), while high-half skyline
points must additionally beat the low half's skyline.

Ties at the median would break the one-directional-dominance argument,
so runs of median-valued points fall back to the base filter.  Output is
identical to :func:`repro.skyline.algorithms.skyline_indices`
(property-tested), in O(n log n) for 2-D and the classic recursive bound
in general.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import as_points
from repro.prefs.model import support_dims

__all__ = ["dnc_skyline_indices"]

_BASE_SIZE = 32


def dnc_skyline_indices(
    points: np.ndarray, weights: "np.ndarray | None" = None
) -> np.ndarray:
    """Positions of the weak-dominance skyline via divide and conquer.

    With ``weights``, the recursion runs over the weights' support
    columns only (projection semantics, :mod:`repro.prefs`)."""
    arr = as_points(points)
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        arr.shape[1],
    )
    if dims is not None:
        arr = arr[:, dims]
    positions = _solve(arr, np.arange(n, dtype=np.int64))
    return np.sort(positions)


def _solve(arr: np.ndarray, positions: np.ndarray) -> np.ndarray:
    if positions.size <= _BASE_SIZE:
        return _base_case(arr, positions)
    values = arr[positions, 0]
    median = np.median(values)
    low = positions[values < median]
    high = positions[values >= median]
    if low.size == 0 or high.size == 0:
        # Degenerate split (many ties at the median): the cross-partition
        # dominance argument does not apply, fall back to the base filter.
        return _base_case(arr, positions)
    low_sky = _solve(arr, low)
    high_sky = _solve(arr, high)
    # No high point can dominate a low point (its first coordinate is
    # >= median > every low first coordinate), so only the high skyline
    # needs merging against the low skyline.
    survivors = _filter_against(arr, high_sky, low_sky)
    return np.concatenate([low_sky, survivors])


def _filter_against(
    arr: np.ndarray, candidates: np.ndarray, blockers: np.ndarray
) -> np.ndarray:
    """Candidates not weakly dominated by any blocker."""
    if candidates.size == 0 or blockers.size == 0:
        return candidates
    blocker_pts = arr[blockers]
    keep = []
    for position in candidates:
        p = arr[position]
        dominated = np.any(
            np.all(blocker_pts <= p, axis=1) & np.any(blocker_pts < p, axis=1)
        )
        if not dominated:
            keep.append(position)
    return np.asarray(keep, dtype=np.int64)


def _base_case(arr: np.ndarray, positions: np.ndarray) -> np.ndarray:
    pts = arr[positions]
    keep = []
    for i in range(positions.size):
        dominated = np.any(
            np.all(pts <= pts[i], axis=1)
            & np.any(pts < pts[i], axis=1)
        )
        if not dominated:
            keep.append(positions[i])
    return np.asarray(keep, dtype=np.int64)
