"""Block-Nested-Loops skyline (Börzsönyi, Kossmann & Stocker [8]).

The original external-memory skyline algorithm: stream the input against
a bounded in-memory window of incomparable points; points that do not fit
spill to an overflow list and are processed in another pass.  Timestamps
decide when a window point is safe to output — a window entry is
confirmed only once every record that could still beat it has been
compared against it.

This implementation keeps everything in memory (the passes, window bound
and spill behaviour are what matters here, not disk I/O) and uses a
conservative confirmation rule: at the end of a pass, window entries
inserted *before the first spill of that pass* have provably been
compared against every live record and are output; later entries re-enter
the next pass together with the spilled records.  Each pass confirms or
eliminates at least one record, so the algorithm terminates, and the
result equals :func:`repro.skyline.algorithms.skyline_indices` exactly
(property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_points
from repro.prefs.model import support_dims
from repro.skyline.dominance import dominates

__all__ = ["bnl_skyline_indices"]


def bnl_skyline_indices(
    points: np.ndarray,
    window_size: int = 64,
    policy: DominancePolicy = DominancePolicy.WEAK,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of the weak-dominance skyline via multi-pass BNL.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix, minimising every dimension.
    window_size:
        Capacity of the in-memory window; smaller values force more
        passes (useful for exercising the overflow machinery in tests).
    policy:
        Boundary convention of the pairwise test — routed through the
        shared :func:`repro.skyline.dominance.dominates` kernel so BNL
        can never drift from the other algorithms' semantics.
    weights:
        Optional per-dimension preference weights; comparisons run over
        their support only (see :mod:`repro.prefs`).
    """
    arr = as_points(points)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        arr.shape[1],
    )
    if dims is not None:
        arr = arr[:, dims]
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if window_size < 1:
        raise ValueError("window_size must be at least 1")

    result: list[int] = []
    stream = list(range(n))
    while stream:
        # Window entries as (insertion_order, row); insertion_order is the
        # index within this pass at which the entry joined the window.
        window: list[tuple[int, int]] = []
        overflow: list[int] = []
        first_spill_order: int | None = None

        for order, row in enumerate(stream):
            p = arr[row]
            dominated = False
            survivors: list[tuple[int, int]] = []
            for entry in window:
                w = arr[entry[1]]
                if not dominated and dominates(w, p, policy):
                    dominated = True
                    survivors.append(entry)
                elif dominates(p, w, policy):
                    continue  # Window point defeated: eliminated for good.
                else:
                    survivors.append(entry)
            window = survivors
            if dominated:
                continue
            if len(window) < window_size:
                window.append((order, row))
            else:
                if first_spill_order is None:
                    first_spill_order = order
                overflow.append(row)

        if first_spill_order is None:
            # Complete pass with no spill: the whole window is skyline.
            result.extend(row for _order, row in window)
            break
        # Entries inserted before the first spill were in the window when
        # every spilled record was compared, and survived the full pass:
        # they are skyline.  Later entries have not met the earlier spills
        # and must go around again.
        for order, row in window:
            if order < first_spill_order:
                result.append(row)
            else:
                overflow.append(row)
        stream = overflow
    return np.array(sorted(result), dtype=np.int64)
