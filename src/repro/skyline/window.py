"""The Dellis-Seeger window query.

``window_query(c, q)`` retrieves the products that dynamically dominate the
query ``q`` w.r.t. the customer ``c``; the window is the box centred at
``c`` with per-dimension extent ``|c - q|`` (Section II).  An empty result
means ``c`` belongs to ``RSL(q)``; a non-empty result *is* the paper's
first-aspect explanation ``Λ``.

The dominance policy picks the boundary semantics: under ``WEAK`` a product
inside the closed window counts unless it ties ``q``'s distance in every
dimension; under ``STRICT`` only products in the open interior count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point
from repro.geometry.transform import to_query_space, window_box
from repro.index.base import SpatialIndex

__all__ = ["window_query_indices", "lambda_set", "window_is_empty"]


def window_query_indices(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Positions of products that dynamically dominate ``query`` w.r.t.
    ``center`` under ``policy``.

    ``exclude`` removes index positions from the answer (self-exclusion in
    the monochromatic setting).
    """
    c = as_point(center, dim=index.dim)
    q = as_point(query, dim=index.dim)
    box = window_box(c, q)
    hits = index.range_indices(box)
    if exclude is not None:
        excluded = np.atleast_1d(np.asarray(exclude, dtype=np.int64))
        if excluded.size == 1:
            # The common monochromatic case: one self-exclusion position.
            hits = hits[hits != excluded[0]]
        elif excluded.size:
            hits = hits[~np.isin(hits, excluded)]
    if hits.size == 0:
        return hits
    radii = np.abs(c - q)
    dists = to_query_space(index.points[hits], c)
    if policy is DominancePolicy.STRICT:
        keep = np.all(dists < radii, axis=1)
    else:
        keep = np.all(dists <= radii, axis=1) & np.any(dists < radii, axis=1)
    return hits[keep]


def lambda_set(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """The paper's ``Λ``: products whose deletion would admit ``why_not``
    into ``RSL(query)`` (Lemma 1).  Alias of :func:`window_query_indices`
    with the why-not point as the window centre."""
    return window_query_indices(index, why_not, query, policy, exclude)


def window_is_empty(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
) -> bool:
    """True when no product dynamically dominates ``query`` w.r.t.
    ``center`` — i.e. ``center`` is in the reverse skyline of ``query``."""
    return window_query_indices(index, center, query, policy, exclude).size == 0
