"""The Dellis-Seeger window query.

``window_query(c, q)`` retrieves the products that dynamically dominate the
query ``q`` w.r.t. the customer ``c``; the window is the box centred at
``c`` with per-dimension extent ``|c - q|`` (Section II).  An empty result
means ``c`` belongs to ``RSL(q)``; a non-empty result *is* the paper's
first-aspect explanation ``Λ``.

The dominance policy picks the boundary semantics: under ``WEAK`` a product
inside the closed window counts unless it ties ``q``'s distance in every
dimension; under ``STRICT`` only products in the open interior count.

With a partial-support ``weights`` vector (see :mod:`repro.prefs`) the
window constrains only the support dimensions — the dropped dimensions
span the whole universe, so the index's box filter no longer applies and
the test runs as one exact vectorised scan over the support columns.
Full-support weights take the historical index-accelerated path
unchanged (scale invariance makes the verdicts identical).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.point import as_point
from repro.geometry.transform import to_query_space, window_box
from repro.index.base import SpatialIndex
from repro.prefs.model import support_dims

__all__ = ["window_query_indices", "lambda_set", "window_is_empty"]


def _keep_mask(
    dists: np.ndarray, radii: np.ndarray, policy: DominancePolicy
) -> np.ndarray:
    if policy is DominancePolicy.STRICT:
        return np.all(dists < radii, axis=1)
    return np.all(dists <= radii, axis=1) & np.any(dists < radii, axis=1)


def window_query_indices(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions of products that dynamically dominate ``query`` w.r.t.
    ``center`` under ``policy``.

    ``exclude`` removes index positions from the answer (self-exclusion in
    the monochromatic setting).  ``weights`` restricts the window test to
    the support dimensions (projection semantics, :mod:`repro.prefs`).
    """
    c = as_point(center, dim=index.dim)
    q = as_point(query, dim=index.dim)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        index.dim,
    )
    if dims is not None:
        # Dropped dimensions are unconstrained, so the window box covers
        # the whole data extent there — a spatial filter would keep
        # everything anyway.  One exact scan over the support columns.
        radii = np.abs(c - q)[dims]
        dists = np.abs(index.points[:, dims] - c[dims])
        keep = _keep_mask(dists, radii, policy)
        if exclude is not None:
            excluded = np.atleast_1d(np.asarray(exclude, dtype=np.int64))
            if excluded.size:
                keep[excluded] = False
        return np.flatnonzero(keep).astype(np.int64, copy=False)
    box = window_box(c, q)
    hits = index.range_indices(box)
    if exclude is not None:
        excluded = np.atleast_1d(np.asarray(exclude, dtype=np.int64))
        if excluded.size == 1:
            # The common monochromatic case: one self-exclusion position.
            hits = hits[hits != excluded[0]]
        elif excluded.size:
            hits = hits[~np.isin(hits, excluded)]
    if hits.size == 0:
        return hits
    radii = np.abs(c - q)
    dists = to_query_space(index.points[hits], c)
    return hits[_keep_mask(dists, radii, policy)]


def lambda_set(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """The paper's ``Λ``: products whose deletion would admit ``why_not``
    into ``RSL(query)`` (Lemma 1).  Alias of :func:`window_query_indices`
    with the why-not point as the window centre."""
    return window_query_indices(index, why_not, query, policy, exclude, weights)


def window_is_empty(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.WEAK,
    exclude: Sequence[int] = (),
    weights: "np.ndarray | None" = None,
) -> bool:
    """True when no product dynamically dominates ``query`` w.r.t.
    ``center`` — i.e. ``center`` is in the reverse skyline of ``query``."""
    return (
        window_query_indices(
            index, center, query, policy, exclude, weights
        ).size
        == 0
    )
