"""Skyline machinery: dominance kernels, skylines, dynamic skylines,
window queries, and reverse skylines (naive + BBRS).

Everything the why-not algorithms of :mod:`repro.core` stand on.
"""

from repro.skyline.algorithms import skyline_indices, skyline_points
from repro.skyline.bbs import bbs_dynamic_skyline, bbs_skyline
from repro.skyline.dominance import (
    dominated_mask,
    dominates,
    dynamically_dominates,
)
from repro.skyline.dynamic import dynamic_skyline_indices, dynamic_skyline_points
from repro.skyline.global_skyline import global_skyline_candidates
from repro.skyline.reverse import (
    is_reverse_skyline_member,
    reverse_skyline_bbrs,
    reverse_skyline_naive,
)
from repro.skyline.window import lambda_set, window_query_indices

__all__ = [
    "dominates",
    "dominated_mask",
    "dynamically_dominates",
    "skyline_indices",
    "skyline_points",
    "dynamic_skyline_indices",
    "dynamic_skyline_points",
    "bbs_skyline",
    "bbs_dynamic_skyline",
    "window_query_indices",
    "lambda_set",
    "is_reverse_skyline_member",
    "reverse_skyline_naive",
    "reverse_skyline_bbrs",
    "global_skyline_candidates",
]
