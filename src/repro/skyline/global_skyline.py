"""Global-skyline candidate pruning for BBRS (Dellis & Seeger).

A customer ``c`` can only be excluded from ``RSL(q)`` by a product inside
its window — and a product ``p`` lying in the *same orthant* of ``q`` as
``c`` whose transformed coordinates ``|q - p|`` are strictly smaller than
``|q - c|`` in every dimension (and non-zero) is inside the open window of
``(c, q)`` regardless of where exactly ``c`` sits.  Customers with such a
blocker can therefore be pruned without running their window query; the
survivors — the per-orthant "global skyline" — are verified individually.

The strict/non-zero form of the test makes the pruning conservative under
both dominance policies, so BBRS output always equals the naive oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import as_point, as_points
from repro.geometry.transform import orthants_of, to_query_space
from repro.prefs.model import support_dims
from repro.skyline.algorithms import skyline_indices

__all__ = ["global_skyline_candidates"]


def global_skyline_candidates(
    products: np.ndarray,
    customers: np.ndarray,
    query: Sequence[float],
    self_exclude: bool = False,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """Positions (into ``customers``) that survive the BBRS pruning.

    Parameters
    ----------
    products, customers:
        ``(n, d)`` matrices; in the monochromatic setting pass the same
        array twice and set ``self_exclude``.
    query:
        The reverse-skyline query point ``q``.
    self_exclude:
        When true, a product at the same position index as the customer is
        not allowed to prune it (the customer is not its own competitor).
    weights:
        Optional preference weights; the whole pruning argument runs in
        the support subspace (projection semantics), where it is exactly
        as conservative as the full-dimensional original.
    """
    q = as_point(query)
    prods = as_points(products, dim=q.size)
    custs = as_points(customers, dim=q.size)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        q.size,
    )
    if dims is not None:
        q = q[dims]
        prods = prods[:, dims]
        custs = custs[:, dims]
    n_cust = custs.shape[0]
    if n_cust == 0:
        return np.empty(0, dtype=np.int64)
    if prods.shape[0] == 0:
        return np.arange(n_cust, dtype=np.int64)

    prod_orth = orthants_of(prods, q)
    cust_orth = orthants_of(custs, q)
    t_prods = to_query_space(prods, q)
    t_custs = to_query_space(custs, q)

    survivors: list[np.ndarray] = []
    for orthant in np.unique(cust_orth):
        cust_pos = np.flatnonzero(cust_orth == orthant)
        prod_pos = np.flatnonzero(prod_orth == orthant)
        if prod_pos.size == 0:
            survivors.append(cust_pos)
            continue
        blockers = t_prods[prod_pos]
        # Only products strictly off every axis hyperplane of q can prune
        # under the strict window test.
        interior = np.all(blockers > 0, axis=1)
        blockers = blockers[interior]
        if blockers.shape[0] == 0:
            survivors.append(cust_pos)
            continue
        # Reduce the blockers to their weak-dominance minima first: a point
        # strictly dominated by any blocker is strictly dominated by some
        # minimal blocker too (m <= b < c implies m < c component-wise).
        minimal = blockers[skyline_indices(blockers)]
        # In the monochromatic setting a customer can never be pruned by
        # itself: its own transformed coordinates tie in every dimension and
        # the test below is strict, so ``self_exclude`` needs no extra
        # filtering here (it documents intended usage at call sites).
        kept: list[np.ndarray] = []
        chunk = 2048
        for start in range(0, cust_pos.size, chunk):
            block = cust_pos[start:start + chunk]
            c_t = t_custs[block]  # (b, d)
            pruned = np.any(
                np.all(minimal[None, :, :] < c_t[:, None, :], axis=2), axis=1
            )
            kept.append(block[~pruned])
        survivors.append(
            np.concatenate(kept) if kept else np.empty(0, dtype=np.int64)
        )
    if not survivors:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(survivors))
