"""Algorithm 2 — Modify the Query Point (MQP).

Move the query product ``q`` toward the why-not customer ``c_t`` until it
enters the customer's dynamic skyline:

1. ``Λ ← window_query(c_t, q)``;
2. ``F ← Λ ∩ DSL(c_t)``: members not dynamically dominated w.r.t. ``c_t``
   by another member (computable without the full ``DSL(c_t)``, steps 3-5);
3. the refined query must reach the dynamic-skyline staircase of ``c_t``:
   its distance vector ``|c_t - q*|`` has to drop to a frontier's distance
   in at least one dimension.  The sorted merge of the frontier distance
   vectors (Eqns. 5-6) yields the non-dominated candidate locations.

Unlike Algorithm 1, the candidates here align the query with frontier
*coordinates* (mirrored to the query's side of the customer when a
frontier lies on the opposite side).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.core._staircase import staircase_distance_candidates
from repro.core._verify import verify_membership
from repro.core.answer import Candidate, ModificationResult
from repro.core.cost import MinMaxNormalizer
from repro.geometry.point import as_point
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.prefs.model import support_dims
from repro.skyline.algorithms import skyline_indices
from repro.skyline.window import lambda_set

__all__ = ["modify_query_point", "mqp_candidate_points"]


def mqp_candidate_points(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    config: WhyNotConfig,
    exclude: Sequence[int] = (),
    pref_weights: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw Algorithm-2 computation.

    Returns ``(candidates, lambda_positions, frontier_positions)``; the
    candidate matrix is empty when ``c_t`` is already a member.

    ``pref_weights`` are the preference weights of :mod:`repro.prefs`;
    the refined query keeps its original coordinate in every dropped
    dimension.
    """
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    pw = (
        None
        if pref_weights is None
        else np.asarray(pref_weights, dtype=np.float64)
    )
    dims = support_dims(pw, index.dim)
    lam = lambda_set(index, c_t, q, config.policy, exclude, weights=pw)
    if lam.size == 0:
        return np.empty((0, index.dim)), lam, lam

    # F = Λ ∩ DSL(c_t): minimal distance vectors from c_t within Λ.
    lam_points = index.points[lam]
    from_ct = to_query_space(lam_points, c_t)
    frontier_local = skyline_indices(from_ct, weights=pw)
    frontier = lam[frontier_local]

    thresholds = from_ct[frontier_local]
    if config.margin > 0.0:
        thresholds = thresholds * (1.0 - config.margin)
    cap = np.abs(q - c_t)
    vectors = staircase_distance_candidates(
        thresholds, cap, config.sort_dim, dims=dims
    )

    # q* sits on q's side of c_t at distance w; where q ties c_t the
    # coordinate collapses onto both.
    direction = np.sign(q - c_t)
    candidates = c_t + direction * vectors
    return candidates, lam, frontier


def modify_query_point(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    config: WhyNotConfig | None = None,
    weights: Sequence[float] | None = None,
    normalizer: MinMaxNormalizer | None = None,
    exclude: Sequence[int] = (),
    pref_weights: "np.ndarray | None" = None,
) -> ModificationResult:
    """Full MQP: refined query locations with costs and verification.

    Costs reported here are the plain movement ``alpha . |q - q*|`` of
    Eqn. (9); the lost-customer penalty of Section VI.A is a property of a
    whole experiment (it needs ``RSL(q)`` and ``SR(q)``) and lives in
    :meth:`repro.core.engine.WhyNotEngine.mqp_total_cost`.

    ``weights`` are the Eqn.-9 cost weights; ``pref_weights`` the
    preference weights shaping dominance (:mod:`repro.prefs`).
    """
    config = config or WhyNotConfig()
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    points, lam, frontier = mqp_candidate_points(
        index, c_t, q, config, exclude, pref_weights=pref_weights
    )
    result = ModificationResult(
        method="MQP",
        why_not=c_t,
        query=q,
        lambda_positions=lam,
        frontier_positions=frontier,
    )
    if lam.size == 0:
        result.candidates.append(Candidate(q, cost=0.0, verified=True))
        return result

    w = np.asarray(
        weights if weights is not None else np.full(index.dim, 1.0 / index.dim),
        dtype=np.float64,
    )
    for point in points:
        if normalizer is not None:
            cost = normalizer.cost(q, point, w)
        else:
            cost = float(np.sum(w * np.abs(q - point)))
        verified: bool | None = None
        if config.verify:
            # q* must enter DSL(c_t): the window of (c_t, q*) must be empty.
            verified = verify_membership(
                index, c_t, point, config.policy, exclude,
                weights=pref_weights,
            )
        result.candidates.append(Candidate(point, cost=cost, verified=verified))
    result.candidates.sort(key=lambda c: c.cost)
    return result
