"""The cost model of Section VI.

Answer quality is the weighted L1 movement after min-max normalisation
(Eqns. 9/11), with equal per-dimension weights summing to one by default.
MQP additionally pays for every existing reverse-skyline point it loses
(the formula below Table II): the distance from the refined query to the
safe region plus the cheapest repair of each lost customer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import as_point, as_points

__all__ = ["MinMaxNormalizer", "movement_cost"]


class MinMaxNormalizer:
    """Min-max normalisation over fixed per-dimension bounds.

    Bounds normally come from the dataset universe so that every cost in an
    experiment is measured on the same [0, 1]^d scale, as in Section VI.A.
    Zero-width dimensions normalise to 0 (any movement along them is
    impossible anyway).
    """

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        self.lo = as_point(lo)
        self.hi = as_point(hi, dim=self.lo.size)
        if np.any(self.hi < self.lo):
            raise InvalidParameterError("normaliser bounds must satisfy lo <= hi")
        self._range = self.hi - self.lo

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MinMaxNormalizer":
        arr = as_points(points)
        if arr.shape[0] == 0:
            raise InvalidParameterError("cannot derive bounds from no points")
        return cls(arr.min(axis=0), arr.max(axis=0))

    @property
    def dim(self) -> int:
        return self.lo.size

    def normalize(self, points: np.ndarray) -> np.ndarray:
        """Map points into [0, 1]^d (values outside the bounds extrapolate)."""
        arr = np.asarray(points, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (arr - self.lo) / self._range
        return np.where(self._range == 0, 0.0, out)

    def denormalize(self, points: np.ndarray) -> np.ndarray:
        arr = np.asarray(points, dtype=np.float64)
        return arr * self._range + self.lo

    def cost(
        self,
        a: Sequence[float],
        b: Sequence[float],
        weights: Sequence[float],
    ) -> float:
        """Normalised weighted L1 movement ``sum_i w_i |norm(a)_i - norm(b)_i|``.

        This is one term of Eqn. (9); with ``b = a*`` and the beta weights it
        is exactly Eqn. (11).
        """
        na = self.normalize(as_point(a, dim=self.dim))
        nb = self.normalize(as_point(b, dim=self.dim))
        w = np.asarray(weights, dtype=np.float64)
        if w.size != self.dim:
            raise InvalidParameterError(
                f"weights must have length {self.dim}, got {w.size}"
            )
        return float(np.sum(w * np.abs(na - nb)))


def movement_cost(
    a: Sequence[float],
    b: Sequence[float],
    weights: Sequence[float],
    normalizer: MinMaxNormalizer | None = None,
) -> float:
    """Weighted L1 movement, normalised when a normaliser is given."""
    if normalizer is not None:
        return normalizer.cost(a, b, weights)
    pa = as_point(a)
    pb = as_point(b, dim=pa.size)
    w = np.asarray(weights, dtype=np.float64)
    if w.size != pa.size:
        raise InvalidParameterError(
            f"weights must have length {pa.size}, got {w.size}"
        )
    return float(np.sum(w * np.abs(pa - pb)))
