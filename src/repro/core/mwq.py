"""Algorithm 4 — Modify Query and Why-not Point (MWQ).

The combined method honouring the safe region:

* **Case C1** (Table I): the why-not point's anti-dominance region
  overlaps ``SR(q)``.  Moving ``q`` to the overlap admits ``c_t`` while
  keeping every existing customer; movement inside the safe region costs
  nothing (Eqn. 10), so the answer cost is zero.  The candidate locations
  are the nearest points of the overlap rectangles to ``q``.

* **Case C2**: no overlap.  ``q`` moves as far toward ``c_t`` as the safe
  region permits — to one of its non-dominated corner points (transformed
  w.r.t. ``c_t``) — and the remaining gap is closed by moving ``c_t`` via
  Algorithm 1 against each such corner.  Answers are ranked by the
  Eqn.-11 score of the why-not movement.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.core._verify import verify_membership
from repro.core.answer import Candidate, MWQCase, MWQResult
from repro.core.cost import MinMaxNormalizer
from repro.core.mwp import modify_why_not_point
from repro.core.safe_region import SafeRegion, anti_dominance_region
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.geometry.region import BoxRegion
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.skyline.algorithms import skyline_indices
from repro.skyline.window import lambda_set

__all__ = ["modify_query_and_why_not_point"]


def modify_query_and_why_not_point(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    safe_region: SafeRegion,
    bounds: Box,
    config: WhyNotConfig | None = None,
    weights: Sequence[float] | None = None,
    normalizer: MinMaxNormalizer | None = None,
    exclude: Sequence[int] = (),
    ddr_why_not: BoxRegion | None = None,
    pref_weights: "np.ndarray | None" = None,
) -> MWQResult:
    """Run Algorithm 4.

    Parameters
    ----------
    index:
        Spatial index over the product set ``P``.
    why_not, query:
        The customer ``c_t`` and the original query ``q``.
    safe_region:
        ``SR(q)`` from Algorithm 3 (exact) or the approximate store
        (Section VI.B); the algorithm is oblivious to which.
    bounds:
        The data universe (for the anti-dominance region of ``c_t``).
    weights:
        Beta weight vector of Eqn. (11).
    ddr_why_not:
        Pre-computed anti-dominance region of ``c_t`` (recomputed when
        absent).  Must have been built under the same ``pref_weights``.
    exclude:
        Product positions excluded from windows / skylines (monochromatic
        self-exclusion of ``c_t``).
    pref_weights:
        Preference weights (:mod:`repro.prefs`) shaping every dominance
        test; the ``safe_region`` must have been built under the same
        weights (the engine guarantees that).
    """
    config = config or WhyNotConfig()
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    pw = (
        None
        if pref_weights is None
        else np.asarray(pref_weights, dtype=np.float64)
    )
    w = np.asarray(
        weights if weights is not None else np.full(index.dim, 1.0 / index.dim),
        dtype=np.float64,
    )

    lam = lambda_set(index, c_t, q, config.policy, exclude, weights=pw)
    if lam.size == 0:
        return MWQResult(
            case=MWQCase.ALREADY_MEMBER,
            why_not=c_t,
            query=q,
            query_candidates=[Candidate(q, cost=0.0, verified=True)],
        )

    if ddr_why_not is None:
        ddr_why_not = anti_dominance_region(
            index, c_t, bounds, sort_dim=config.sort_dim, exclude=exclude,
            weights=pw,
        )
    overlap = safe_region.region.intersect(ddr_why_not)

    if not overlap.is_empty():
        return _case_overlap(index, c_t, q, overlap, config, exclude, pw)
    return _case_disjoint(
        index, c_t, q, safe_region, config, w, normalizer, exclude, pw
    )


def _case_overlap(
    index: SpatialIndex,
    c_t: np.ndarray,
    q: np.ndarray,
    overlap: BoxRegion,
    config: WhyNotConfig,
    exclude: Sequence[int],
    pref_weights: np.ndarray | None = None,
) -> MWQResult:
    """Case C1: pick the nearest point of each overlap rectangle to ``q``
    (steps 1-6 of Algorithm 4); cost is zero by Eqn. (10)."""
    seen: set[bytes] = set()
    candidates: list[Candidate] = []
    for box in overlap:
        point = box.nearest_point_to(q)
        key = point.tobytes()
        if key in seen:
            continue
        seen.add(key)
        verified: bool | None = None
        if config.verify:
            verified = verify_membership(
                index, c_t, point, config.policy, exclude,
                weights=pref_weights,
            )
        candidates.append(Candidate(point, cost=0.0, verified=verified))
    candidates.sort(key=lambda cand: float(np.sum(np.abs(cand.point - q))))
    return MWQResult(
        case=MWQCase.OVERLAP,
        why_not=c_t,
        query=q,
        query_candidates=candidates,
    )


def _case_disjoint(
    index: SpatialIndex,
    c_t: np.ndarray,
    q: np.ndarray,
    safe_region: SafeRegion,
    config: WhyNotConfig,
    weights: np.ndarray,
    normalizer: MinMaxNormalizer | None,
    exclude: Sequence[int],
    pref_weights: np.ndarray | None = None,
) -> MWQResult:
    """Case C2: move ``q`` to the safe-region corners nearest ``c_t`` and
    close the gap with Algorithm 1 (steps 7-20 of Algorithm 4)."""
    corners = safe_region.region.corner_points()
    # The original query always belongs to its safe region; adding it to
    # the candidate set guarantees MWQ never answers worse than MWP even
    # when no box corner improves on q (e.g. a degenerate region).
    corners = (
        np.vstack([corners, q]) if corners.shape[0] else q.reshape(1, -1)
    )
    # Keep only corners non-dominated in the space transformed to c_t:
    # those are the extremal moves of q toward the why-not point.
    transformed = to_query_space(corners, c_t)
    minimal = skyline_indices(transformed, weights=pref_weights)
    corners = corners[minimal]

    pairs: list[tuple[Candidate, Candidate]] = []
    for corner in corners:
        mwp = modify_why_not_point(
            index,
            c_t,
            corner,
            config=config,
            weights=weights,
            normalizer=normalizer,
            exclude=exclude,
            pref_weights=pref_weights,
        )
        query_candidate = Candidate(corner, cost=0.0, verified=None)
        for candidate in mwp.candidates:
            pairs.append((query_candidate, candidate))
    pairs.sort(key=lambda p: (np.isnan(p[1].cost), p[1].cost))
    return MWQResult(
        case=MWQCase.DISJOINT,
        why_not=c_t,
        query=q,
        pairs=pairs,
    )
