"""Algorithm 1 — Modify the Why-Not Point (MWP).

Move the why-not customer ``c_t`` toward the query ``q`` just far enough
that ``q`` enters the dynamic skyline of the moved point ``c_t*``:

1. ``Λ ← window_query(c_t, q)`` — the products blocking membership;
2. keep the frontier ``F``: members of ``Λ`` not dynamically dominated
   w.r.t. ``q`` by another member (the products closest to ``q``);
3. for each frontier the midpoint between it and ``q`` (Eqn. 1) bounds the
   needed movement; the sorted merge of the midpoints (Eqns. 2-3) yields
   the pairwise non-dominated candidate locations.

The construction is carried out in distance space (see
:mod:`repro.core._staircase`), which generalises the paper's lower-left
figures to arbitrary relative positions of ``c_t`` and ``q``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy, WhyNotConfig
from repro.core._staircase import staircase_distance_candidates
from repro.core._verify import verify_membership
from repro.core.answer import Candidate, ModificationResult
from repro.core.cost import MinMaxNormalizer
from repro.geometry.point import as_point
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.prefs.model import support_dims
from repro.skyline.algorithms import skyline_indices
from repro.skyline.window import lambda_set

__all__ = ["modify_why_not_point", "mwp_candidate_points"]


def mwp_candidate_points(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    config: WhyNotConfig,
    exclude: Sequence[int] = (),
    pref_weights: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw Algorithm-1 computation.

    Returns ``(candidates, lambda_positions, frontier_positions)`` where
    ``candidates`` is a ``(k, d)`` matrix of proposed ``c_t*`` locations
    (empty when the point is already a member).

    ``pref_weights`` are the *preference* weights (:mod:`repro.prefs`) —
    distinct from the Eqn.-11 cost weights: they shape which products
    block membership and where the staircase lies, while the candidates
    never move in dropped dimensions (movement there buys nothing).
    """
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    pw = (
        None
        if pref_weights is None
        else np.asarray(pref_weights, dtype=np.float64)
    )
    dims = support_dims(pw, index.dim)
    lam = lambda_set(index, c_t, q, config.policy, exclude, weights=pw)
    if lam.size == 0:
        return np.empty((0, index.dim)), lam, lam

    # Frontier F: members of Λ whose distance vector from q is minimal —
    # non-dominated w.r.t. the dynamic dominance ≻_q (step 3-5 of Alg. 1).
    lam_points = index.points[lam]
    from_q = to_query_space(lam_points, q)
    frontier_local = skyline_indices(from_q, weights=pw)
    frontier = lam[frontier_local]

    # Midpoint thresholds (Eqn. 1 in distance space): c_t* may approach q
    # no closer than half the frontier's distance, per dimension.
    midpoints = from_q[frontier_local] / 2.0
    if config.margin > 0.0:
        midpoints = midpoints * (1.0 - config.margin)
    cap = np.abs(q - c_t)
    vectors = staircase_distance_candidates(
        midpoints, cap, config.sort_dim, dims=dims
    )

    # Back to coordinates: c_t* sits on c_t's side of q at distance v.
    direction = np.sign(c_t - q)
    candidates = q + direction * vectors
    return candidates, lam, frontier


def modify_why_not_point(
    index: SpatialIndex,
    why_not: Sequence[float],
    query: Sequence[float],
    config: WhyNotConfig | None = None,
    weights: Sequence[float] | None = None,
    normalizer: MinMaxNormalizer | None = None,
    exclude: Sequence[int] = (),
    pref_weights: "np.ndarray | None" = None,
) -> ModificationResult:
    """Full MWP: candidates with movement costs and verification flags.

    Parameters
    ----------
    index:
        Spatial index over the product set ``P``.
    why_not, query:
        The customer ``c_t`` and query product ``q``.
    config:
        Policy / sort dimension / margin / verification settings.
    weights:
        The beta weight vector of Eqn. (11); equal weights by default.
        The engine composes these with the preference weights
        (``PreferenceModel.cost_weights``) before calling here.
    normalizer:
        Min-max normaliser for cost reporting; raw weighted L1 when absent.
    exclude:
        Product positions excluded from window queries (monochromatic
        self-exclusion).
    pref_weights:
        Preference weights shaping the dominance tests
        (:mod:`repro.prefs`); ``None`` is the unweighted paper setting.
    """
    config = config or WhyNotConfig()
    c_t = as_point(why_not, dim=index.dim)
    q = as_point(query, dim=index.dim)
    points, lam, frontier = mwp_candidate_points(
        index, c_t, q, config, exclude, pref_weights=pref_weights
    )
    result = ModificationResult(
        method="MWP",
        why_not=c_t,
        query=q,
        lambda_positions=lam,
        frontier_positions=frontier,
    )
    if lam.size == 0:
        result.candidates.append(Candidate(c_t, cost=0.0, verified=True))
        return result

    w = np.asarray(
        weights if weights is not None else np.full(index.dim, 1.0 / index.dim),
        dtype=np.float64,
    )
    for point in points:
        if normalizer is not None:
            cost = normalizer.cost(c_t, point, w)
        else:
            cost = float(np.sum(w * np.abs(c_t - point)))
        verified: bool | None = None
        if config.verify:
            verified = verify_membership(
                index, point, q, config.policy, exclude,
                weights=pref_weights,
            )
        result.candidates.append(Candidate(point, cost=cost, verified=verified))
    result.candidates.sort(key=lambda c: c.cost)
    return result
