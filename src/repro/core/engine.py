"""The :class:`WhyNotEngine` facade.

One object owning the product index, customer matrix, cost normaliser and
caches, exposing the full pipeline of the paper:

>>> engine = WhyNotEngine(products)            # monochromatic, like Fig. 1
>>> engine.reverse_skyline(q)                  # RSL(q) via BBRS
>>> engine.explain(c_t, q)                     # aspect 1: the Λ set
>>> engine.modify_why_not_point(c_t, q)        # Algorithm 1 (MWP)
>>> engine.modify_query_point(c_t, q)          # Algorithm 2 (MQP)
>>> engine.safe_region(q)                      # Algorithm 3 (exact SR)
>>> engine.modify_both(c_t, q)                 # Algorithm 4 (MWQ)
>>> engine.modify_both(c_t, q, approximate=True, k=10)   # Approx-MWQ

Customers may be addressed by row position (which enables monochromatic
self-exclusion) or by raw coordinates.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Sequence

import numpy as np

from repro.config import CostWeights, DominancePolicy, WhyNotConfig
from repro.core.answer import Explanation, ModificationResult, MWQResult
from repro.core.approx import ApproximateDSLStore
from repro.core.cost import MinMaxNormalizer
from repro.core.dsl_cache import DSLCache
from repro.core.explain import explain_why_not
from repro.core.mqp import modify_query_point
from repro.core.mwp import modify_why_not_point
from repro.core.mwq import modify_query_and_why_not_point
from repro.core.safe_region import (
    SafeRegion,
    SafeRegionStats,
    compute_safe_region,
)
from repro.core._verify import verify_membership
from repro.core.invalidation import MutationInvalidator
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry import region_array as _ra
from repro.geometry.box import Box
from repro.geometry.point import as_point, as_points
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex
from repro.kernels.membership import (
    KernelCounters,
    batch_verify_membership,
    batch_window_membership,
)
from repro.obs import Observability
from repro.skyline.reverse import reverse_skyline_bbrs
from repro.store.base import CustomerStore, Mutation, ProductStore, VersionedStore
from repro.store.session import WhyNotSession

__all__ = ["WhyNotEngine"]


class WhyNotEngine:
    """End-to-end why-not answering over one product / customer universe.

    Parameters
    ----------
    products:
        ``(n, d)`` product matrix ``P``.
    customers:
        ``(m, d)`` customer matrix ``C``; ``None`` selects the
        monochromatic convention of the paper's experiments (the same
        points serve as products and customers, with self-exclusion).
    backend:
        ``"rtree"`` (the paper's access method), ``"scan"`` (vectorised
        oracle, fastest for bulk sweeps), ``"grid"`` (uniform grid), or
        ``"kdtree"`` (median-split k-d tree).
    config:
        Dominance policy / sort dimension / margin / verification.
    weights:
        Alpha/beta cost weights (equal, summing to 1, by default).
    bounds:
        Data universe for normalisation and region clipping; derived from
        the data when absent.
    """

    def __init__(
        self,
        products: np.ndarray,
        customers: np.ndarray | None = None,
        backend: str = "rtree",
        config: WhyNotConfig | None = None,
        weights: CostWeights | None = None,
        bounds: Box | None = None,
    ) -> None:
        prods = as_points(products)
        if prods.shape[0] == 0:
            raise EmptyDatasetError("the product set must not be empty")
        self.monochromatic = customers is None
        # Versioned dataset layer: the engine owns its matrices through
        # copy-on-write stores.  The monochromatic convention shares one
        # store for both roles, so ``self.customers is self.products``
        # keeps holding and one mutation drives both sides coherently.
        self._product_store = ProductStore(prods)
        self._customer_store: VersionedStore = (
            self._product_store
            if customers is None
            else CustomerStore(as_points(customers, dim=prods.shape[1]))
        )
        prods = self._product_store.matrix
        custs = self._customer_store.matrix
        self._backend = backend
        self.config = config or WhyNotConfig()
        self._weights = weights or CostWeights()
        self.alpha, self.beta = self._weights.resolved(prods.shape[1])
        if backend == "rtree":
            self.index: SpatialIndex = RTree(prods)
        elif backend == "scan":
            self.index = ScanIndex(prods)
        elif backend == "grid":
            self.index = GridIndex(prods)
        elif backend == "kdtree":
            self.index = KDTree(prods)
        else:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; use 'rtree', 'scan', 'grid' "
                "or 'kdtree'"
            )
        if bounds is None:
            stacked = np.vstack([prods, custs])
            bounds = Box(stacked.min(axis=0), stacked.max(axis=0))
        self.bounds = bounds
        self.normalizer = MinMaxNormalizer(bounds.lo, bounds.hi)
        self._rsl_cache: dict[bytes, np.ndarray] = {}
        self._sr_cache: dict[bytes, SafeRegion] = {}
        self._approx_sr_cache: dict[tuple[bytes, int], SafeRegion] = {}
        self._approx_stores: dict[int, ApproximateDSLStore] = {}
        # Engine-level DSL/anti-dominance cache: per-customer dynamic
        # skylines computed once, shared by safe_region / modify_both /
        # batch answering / approx store / relaxation analysis.
        self.dsl_cache: DSLCache | None = (
            DSLCache(
                self.index,
                self.customers,
                config=self.config,
                self_exclude=self.monochromatic,
            )
            if self.config.dsl_cache
            else None
        )
        self.last_safe_region_stats: SafeRegionStats | None = None
        # Observability: one tracer + metrics registry per engine.  The
        # tracer is inert unless config.trace; the registry always exists
        # so the stats views' live counters are exportable either way.
        self.obs = Observability(enabled=self.config.trace)
        self.obs.attach_stats("index", self.index.stats)
        if self.dsl_cache is not None:
            self.obs.attach_stats("dsl_cache", self.dsl_cache.stats)
        # Engine-lifetime safe-region totals (per-build numbers stay on
        # SafeRegion.stats / last_safe_region_stats).
        self.safe_region_totals = SafeRegionStats()
        self.obs.attach_stats("safe_region", self.safe_region_totals)
        # Kernel counters are only threaded through the hot loops when
        # tracing: the disabled path must stay counter-free.
        self._kernel_counters: KernelCounters | None = None
        if self.config.trace:
            self._kernel_counters = KernelCounters()
            for name, counter in self._kernel_counters.counters().items():
                self.obs.metrics.attach(f"kernels.{name}", counter)
        # Path-independent work counter: one increment per membership
        # predicate evaluated, identical under batch_kernels True/False.
        self._membership_tests = self.obs.counter(
            "engine.membership_tests",
            "membership predicates evaluated (path-independent)",
        )
        # Mutation accounting: every committed store mutation, plus the
        # per-entry balance of the scoped invalidation pass
        # (scoped_considered == evicted_scoped + retained_scoped, the
        # invariant the CI smoke job asserts).
        self._mutations = self.obs.counter(
            "engine.mutations", "committed dataset mutations"
        )
        self._scoped_considered = self.obs.counter(
            "cache.scoped_considered",
            "cache entries inspected by scoped invalidation",
        )
        self._scoped_evicted = self.obs.counter(
            "cache.evicted_scoped",
            "cache entries evicted because the mutation could reach them",
        )
        self._scoped_retained = self.obs.counter(
            "cache.retained_scoped",
            "cache entries kept warm across a mutation",
        )
        self._scoped_repaired = self.obs.counter(
            "cache.repaired_scoped",
            "retained entries whose content was rewritten in place",
        )
        self._evicted_full = self.obs.counter(
            "cache.evicted_full",
            "cache entries dropped by full invalidation",
        )
        self._epoch_gauge = self.obs.gauge(
            "engine.dataset_epoch",
            "combined store epoch the caches are valid for",
        )
        self._epoch_gauge.set(self.dataset_epoch)

    # ------------------------------------------------------------------
    # Versioned dataset surface
    # ------------------------------------------------------------------
    @property
    def products(self) -> np.ndarray:
        """The current ``(n, d)`` product matrix (non-writeable; mutate
        through :meth:`insert_products` / :meth:`delete_products` /
        :meth:`update_products`)."""
        return self._product_store.matrix

    @property
    def customers(self) -> np.ndarray:
        """The current ``(m, d)`` customer matrix — the *same object* as
        :attr:`products` in the monochromatic convention."""
        return self._customer_store.matrix

    @property
    def product_store(self) -> ProductStore:
        return self._product_store

    @property
    def customer_store(self) -> VersionedStore:
        return self._customer_store

    @property
    def dataset_epoch(self) -> int:
        """Monotone counter of committed mutations across both stores;
        every derived cache is valid for exactly one value of it."""
        if self._customer_store is self._product_store:
            return self._product_store.epoch
        return self._product_store.epoch + self._customer_store.epoch

    def session(self) -> WhyNotSession:
        """A read facade pinned to the current epoch: reads through it
        raise :class:`~repro.exceptions.StaleSessionError` after any
        mutation instead of silently mixing generations."""
        return WhyNotSession(self)

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.products.shape[1]

    def _resolve_customer(
        self, why_not: "int | Sequence[float]"
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Map a customer position or raw point to ``(point, exclusions)``.

        Positions get monochromatic self-exclusion; raw coordinates do not
        (the caller is asking about a hypothetical customer).
        """
        if isinstance(why_not, (int, np.integer)):
            position = int(why_not)
            if not 0 <= position < self.customers.shape[0]:
                raise InvalidParameterError(
                    f"customer position {position} out of range"
                )
            point = self.customers[position]
            exclude = (position,) if self.monochromatic else ()
            return point, exclude
        return as_point(why_not, dim=self.dim), ()

    def _geometry_bounds(self, query: np.ndarray) -> Box:
        """Universe box guaranteed to contain the query point."""
        if self.bounds.contains_point(query):
            return self.bounds
        return Box(
            np.minimum(self.bounds.lo, query), np.maximum(self.bounds.hi, query)
        )

    # ------------------------------------------------------------------
    # Reverse skyline
    # ------------------------------------------------------------------
    def reverse_skyline(self, query: Sequence[float]) -> np.ndarray:
        """``RSL(query)`` as positions into the customer matrix (BBRS)."""
        q = as_point(query, dim=self.dim)
        key = q.tobytes()
        cached = self._rsl_cache.get(key)
        if cached is None:
            with self.obs.span("engine.reverse_skyline") as span:
                cached = reverse_skyline_bbrs(
                    self.index,
                    self.customers,
                    q,
                    policy=self.config.policy,
                    self_exclude=self.monochromatic,
                    batch_kernels=self.config.batch_kernels,
                    block_size=self.config.kernel_block_size,
                    counters=self._kernel_counters,
                )
                span.set(members=int(cached.size))
            self._rsl_cache[key] = cached
        return cached

    def is_member(
        self, why_not: "int | Sequence[float]", query: Sequence[float]
    ) -> bool:
        """Membership of one customer in ``RSL(query)``."""
        point, exclude = self._resolve_customer(why_not)
        q = as_point(query, dim=self.dim)
        self._membership_tests.inc()
        return verify_membership(
            self.index, point, q, self.config.policy, exclude, rtol=0.0
        )

    def membership_mask(
        self,
        why_nots: Sequence["int | Sequence[float]"],
        query: Sequence[float],
    ) -> np.ndarray:
        """Boolean :meth:`is_member` vector for many customers at once.

        With ``config.batch_kernels`` the whole sweep is one blocked
        kernel pass (no per-customer index query); otherwise it loops the
        per-customer oracle.  Either way the result is bit-identical to
        calling :meth:`is_member` per entry.
        """
        count = len(why_nots)
        points = np.empty((count, self.dim), dtype=np.float64)
        self_positions = np.full(count, -1, dtype=np.int64)
        for i, why_not in enumerate(why_nots):
            point, exclude = self._resolve_customer(why_not)
            points[i] = point
            if exclude:
                self_positions[i] = exclude[0]
        # One predicate per customer regardless of execution path — the
        # counter-invariance contract of the batch kernels.
        self._membership_tests.inc(count)
        with self.obs.span(
            "engine.membership_mask",
            customers=count,
            batch=self.config.batch_kernels,
        ):
            if self.config.batch_kernels:
                return batch_window_membership(
                    self.products,
                    points,
                    query,
                    self.config.policy,
                    self_positions=self_positions,
                    block_size=self.config.kernel_block_size,
                    counters=self._kernel_counters,
                )
            q = as_point(query, dim=self.dim)
            return np.fromiter(
                (
                    verify_membership(
                        self.index,
                        points[i],
                        q,
                        self.config.policy,
                        (int(self_positions[i]),) if self_positions[i] >= 0 else (),
                        rtol=0.0,
                    )
                    for i in range(count)
                ),
                dtype=bool,
                count=count,
            )

    # ------------------------------------------------------------------
    # The four why-not methods
    # ------------------------------------------------------------------
    def explain(
        self, why_not: "int | Sequence[float]", query: Sequence[float]
    ) -> Explanation:
        """Aspect 1: the ``Λ`` set of products blocking membership."""
        point, exclude = self._resolve_customer(why_not)
        with self.obs.span("engine.explain") as span:
            result = explain_why_not(
                self.index, point, query, self.config.policy, exclude
            )
            span.set(culprits=len(result.culprit_positions))
        return result

    def modify_why_not_point(
        self, why_not: "int | Sequence[float]", query: Sequence[float]
    ) -> ModificationResult:
        """Algorithm 1 (MWP) with normalised costs."""
        point, exclude = self._resolve_customer(why_not)
        with self.obs.span("engine.mwp"):
            return modify_why_not_point(
                self.index,
                point,
                query,
                config=self.config,
                weights=self.beta,
                normalizer=self.normalizer,
                exclude=exclude,
            )

    def modify_query_point(
        self, why_not: "int | Sequence[float]", query: Sequence[float]
    ) -> ModificationResult:
        """Algorithm 2 (MQP) with normalised movement costs."""
        point, exclude = self._resolve_customer(why_not)
        with self.obs.span("engine.mqp"):
            return modify_query_point(
                self.index,
                point,
                query,
                config=self.config,
                weights=self.alpha,
                normalizer=self.normalizer,
                exclude=exclude,
            )

    def safe_region(
        self,
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
    ) -> SafeRegion:
        """Algorithm 3 (exact) or the Section-VI.B approximation."""
        q = as_point(query, dim=self.dim)
        key = q.tobytes()
        if approximate:
            cached = self._approx_sr_cache.get((key, k))
            if cached is None:
                with self.obs.span(
                    "engine.safe_region", approximate=True, k=k
                ), self._observe_regions():
                    store = self.approx_store(k)
                    cached = store.safe_region(
                        q, self.reverse_skyline(q), self._geometry_bounds(q)
                    )
                self._approx_sr_cache[(key, k)] = cached
            return cached
        cached = self._sr_cache.get(key)
        if cached is None:
            with self.obs.span("engine.safe_region") as span, self._observe_regions():
                cached = compute_safe_region(
                    self.index,
                    self.customers,
                    q,
                    self.reverse_skyline(q),
                    self._geometry_bounds(q),
                    config=self.config,
                    self_exclude=self.monochromatic,
                    dsl_cache=self.dsl_cache,
                )
                span.set(
                    members=cached.stats.members,
                    boxes=len(cached.region),
                    early_exit=cached.stats.early_exit,
                )
            self.last_safe_region_stats = cached.stats
            self._absorb_safe_region_stats(cached.stats)
            self._sr_cache[key] = cached
        return cached

    def _observe_regions(self):
        """Region-kernel counting scope — a null context when not tracing
        (the kernels' module-level sink stays untouched)."""
        if self.obs.enabled:
            return _ra.observe_region_ops(self.obs.metrics)
        return nullcontext()

    def _absorb_safe_region_stats(self, stats: SafeRegionStats) -> None:
        """Fold one build's counters into the engine-lifetime totals the
        registry exports under ``safe_region.*``."""
        totals = self.safe_region_totals
        totals.members += stats.members
        totals.intersections += stats.intersections
        totals.boxes_before_simplify += stats.boxes_before_simplify
        totals.boxes_after_simplify += stats.boxes_after_simplify
        totals.peak_boxes = max(totals.peak_boxes, stats.peak_boxes)
        totals.budget_truncations += stats.budget_truncations
        totals.cache_hits += stats.cache_hits
        totals.cache_misses += stats.cache_misses
        totals.member_seconds += stats.member_seconds
        totals.build_seconds += stats.build_seconds
        if stats.early_exit:
            totals.early_exit = True

    def modify_both(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
    ) -> MWQResult:
        """Algorithm 4 (MWQ), optionally on the approximate safe region."""
        point, exclude = self._resolve_customer(why_not)
        q = as_point(query, dim=self.dim)
        with self.obs.span("engine.mwq", approximate=approximate):
            region = self.safe_region(q, approximate=approximate, k=k)
            bounds = self._geometry_bounds(q)
            # Position-addressed customers share the cached staircase region
            # (the cache's self-exclusion convention matches _resolve_customer's).
            ddr = None
            if self.dsl_cache is not None and isinstance(why_not, (int, np.integer)):
                ddr = self.dsl_cache.region(int(why_not), bounds)
            return modify_query_and_why_not_point(
                self.index,
                point,
                q,
                safe_region=region,
                bounds=bounds,
                config=self.config,
                weights=self.beta,
                normalizer=self.normalizer,
                exclude=exclude,
                ddr_why_not=ddr,
            )

    def approx_store(self, k: int = 10) -> ApproximateDSLStore:
        """The (cached) pre-computed sampled-DSL store for parameter ``k``.

        Stores are keyed by ``(k, dataset_epoch)``: a store holds sampled
        skylines of one dataset generation, so a mutation either retires
        it (full invalidation) or repairs and re-keys it in place (scoped
        path) — a stale-epoch store is never served.
        """
        key = (k, self.dataset_epoch)
        store = self._approx_stores.get(key)
        if store is None:
            store = ApproximateDSLStore(
                self.index,
                self.customers,
                k=k,
                config=self.config,
                self_exclude=self.monochromatic,
                dsl_cache=self.dsl_cache,
            )
            self._approx_stores[key] = store
        return store

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert_products(self, points) -> np.ndarray:
        """Append product rows; returns their new positions.

        The index absorbs the rows incrementally where the backend
        supports it, and with ``config.scoped_invalidation`` only the
        cache entries the new products can reach (window locality) are
        evicted or repaired — everything else stays warm.  In the
        monochromatic convention the rows join the customer side too.
        """
        mutation = self._product_store.insert(points)
        return self._after_mutation(mutation, product=True, out=mutation.positions)

    def delete_products(self, positions) -> np.ndarray:
        """Remove product rows and compact; returns the old-to-new
        position mapping (``-1`` for deleted rows), the same contract
        :meth:`without_products` has always used."""
        target = np.unique(np.asarray(list(positions), dtype=np.int64))
        n = self._product_store.size
        if target.size == n and target.size and 0 <= target[0] and target[-1] < n:
            raise EmptyDatasetError("cannot delete every product")
        mutation = self._product_store.delete(target)
        return self._after_mutation(mutation, product=True, out=mutation.mapping)

    def update_products(self, positions, points) -> np.ndarray:
        """Replace the coordinates of existing product rows; returns the
        (ascending) updated positions."""
        mutation = self._product_store.update(positions, points)
        return self._after_mutation(mutation, product=True, out=mutation.positions)

    def insert_customers(self, points) -> np.ndarray:
        """Append customer rows (bichromatic engines only); returns their
        new positions."""
        self._require_bichromatic()
        mutation = self._customer_store.insert(points)
        return self._after_mutation(mutation, product=False, out=mutation.positions)

    def delete_customers(self, positions) -> np.ndarray:
        """Remove customer rows and compact (bichromatic engines only);
        returns the old-to-new position mapping."""
        self._require_bichromatic()
        mutation = self._customer_store.delete(positions)
        return self._after_mutation(mutation, product=False, out=mutation.mapping)

    def update_customers(self, positions, points) -> np.ndarray:
        """Move existing customer rows (bichromatic engines only);
        returns the (ascending) updated positions."""
        self._require_bichromatic()
        mutation = self._customer_store.update(positions, points)
        return self._after_mutation(mutation, product=False, out=mutation.positions)

    def _require_bichromatic(self) -> None:
        if self.monochromatic:
            raise InvalidParameterError(
                "monochromatic engines share one store for both roles; "
                "use the product mutators"
            )

    def _after_mutation(
        self, mutation: Mutation, product: bool, out: np.ndarray
    ) -> np.ndarray:
        """Post-commit maintenance: index upkeep, cache scoping, obs."""
        if mutation.is_noop:
            return out
        store = "product" if product else "customer"
        with self.obs.span(
            "engine.mutation", kind=mutation.kind, store=store
        ) as span:
            if product:
                if mutation.kind == "insert":
                    self.index.insert(mutation.new_points)
                elif mutation.kind == "delete":
                    self.index.remove(mutation.positions)
                else:
                    self.index.update(mutation.positions, mutation.new_points)
            scoped = self.config.scoped_invalidation and (
                not product or self.dsl_cache is not None
            )
            if scoped:
                invalidator = MutationInvalidator(self)
                outcome = (
                    invalidator.product_mutation(mutation)
                    if product
                    else invalidator.customer_mutation(mutation)
                )
                self._scoped_considered.inc(outcome.considered)
                self._scoped_evicted.inc(outcome.evicted)
                self._scoped_retained.inc(outcome.retained)
                self._scoped_repaired.inc(outcome.repaired)
                span.set(
                    scoped=True,
                    evicted=outcome.evicted,
                    retained=outcome.retained,
                    repaired=outcome.repaired,
                )
            else:
                self.invalidate_caches()
                if self.dsl_cache is not None:
                    self.dsl_cache.rebind(self.customers)
                span.set(scoped=False)
        self._mutations.inc()
        self._epoch_gauge.set(self.dataset_epoch)
        return out

    def invalidate_caches(self) -> None:
        """Drop every derived cache (RSL, safe regions, approx stores,
        DSL cache) — the unscoped fallback after a mutation, counted
        under ``cache.evicted_full``.  :meth:`without_products` instead
        builds a fresh engine whose caches start empty."""
        total = (
            len(self._rsl_cache)
            + len(self._sr_cache)
            + len(self._approx_sr_cache)
            + sum(len(store) for store in self._approx_stores.values())
        )
        if self.dsl_cache is not None:
            total += self.dsl_cache.entry_count()
        self._rsl_cache.clear()
        self._sr_cache.clear()
        self._approx_sr_cache.clear()
        self._approx_stores.clear()
        self.last_safe_region_stats = None
        if self.dsl_cache is not None:
            self.dsl_cache.invalidate()
        self._evicted_full.inc(total)

    def without_products(
        self, positions: Sequence[int]
    ) -> "tuple[WhyNotEngine, np.ndarray]":
        """A what-if engine with the given products deleted.

        Directly supports the paper's first aspect: deleting the ``Λ``
        culprits admits the why-not point (Lemma 1); this builds the
        counterfactual market so the claim can be *checked*, e.g.::

            culprits = engine.explain(c_t, q).culprit_positions
            reduced, mapping = engine.without_products(culprits)
            assert reduced.is_member(mapping[c_t], q)

        Returns the new engine plus a position-mapping array: old product
        position -> new position (``-1`` for deleted rows).  In the
        monochromatic setting the customer matrix shrinks identically.
        """
        drop = {int(p) for p in positions}
        for position in drop:
            if not 0 <= position < self.products.shape[0]:
                raise InvalidParameterError(
                    f"product position {position} out of range"
                )
        if len(drop) == self.products.shape[0]:
            raise EmptyDatasetError("cannot delete every product")
        # A throwaway store runs the compacting delete: the keep-set and
        # mapping come out of its vectorised mask arithmetic, with the
        # exact mapping contract this method has always returned.
        scratch = ProductStore(self.products)
        mutation = scratch.delete(sorted(drop))
        # The reduced engine starts with empty caches (including the DSL
        # cache): deleting products can change every customer's dynamic
        # skyline, so no parent entry is reusable.
        reduced = WhyNotEngine(
            scratch.matrix,
            customers=None if self.monochromatic else self.customers,
            backend=self._backend,
            config=self.config,
            weights=self._weights,
            bounds=self.bounds,
        )
        return reduced, mutation.mapping

    def lost_customers(
        self, query: Sequence[float], refined_query: Sequence[float]
    ) -> np.ndarray:
        """Existing reverse-skyline members that would be lost by moving
        ``query`` to ``refined_query``.

        Quantifies the side effect of leaving the safe region (the paper's
        Section V.B remark on truncating/expanding it): positions into the
        customer matrix, empty when the move is safe.
        """
        q = as_point(query, dim=self.dim)
        q_star = as_point(refined_query, dim=self.dim)
        members = self.reverse_skyline(q)
        retained = self._retained_mask(members, q_star)
        return members[~retained].astype(np.int64, copy=False)

    def _retained_mask(
        self, members: np.ndarray, refined_query: np.ndarray
    ) -> np.ndarray:
        """Which reverse-skyline ``members`` remain members under the
        refined query (tolerance-aware, one kernel pass when enabled)."""
        members = np.asarray(members, dtype=np.int64)
        if members.size == 0:
            return np.empty(0, dtype=bool)
        self._membership_tests.inc(int(members.size))
        if self.config.batch_kernels:
            return batch_verify_membership(
                self.products,
                self.customers[members],
                refined_query,
                self.config.policy,
                self_positions=members if self.monochromatic else None,
                block_size=self.config.kernel_block_size,
                counters=self._kernel_counters,
            )
        retained = np.empty(members.size, dtype=bool)
        for i, position in enumerate(members):
            point, exclude = self._resolve_customer(int(position))
            retained[i] = verify_membership(
                self.index, point, refined_query, self.config.policy, exclude
            )
        return retained

    # ------------------------------------------------------------------
    # Experiment cost model (Section VI.A)
    # ------------------------------------------------------------------
    def why_not_movement_cost(
        self, original: Sequence[float], moved: Sequence[float]
    ) -> float:
        """Eqn. (11): normalised beta-weighted movement of the why-not point."""
        return self.normalizer.cost(original, moved, self.beta)

    def query_movement_cost(
        self, original: Sequence[float], moved: Sequence[float]
    ) -> float:
        """Normalised alpha-weighted movement of the query point."""
        return self.normalizer.cost(original, moved, self.alpha)

    def mqp_total_cost(
        self, query: Sequence[float], refined_query: Sequence[float]
    ) -> float:
        """The experiment cost of an MQP answer (Section VI.A):

        ``alpha . |q' - q*| + sum over lost customers of beta . |c_l - c_l*|``

        where ``q'`` is the closest safe-region point to ``q*`` and each
        lost customer's repair ``c_l*`` is its cheapest Algorithm-1 move
        w.r.t. the refined query.
        """
        q = as_point(query, dim=self.dim)
        q_star = as_point(refined_query, dim=self.dim)
        region = self.safe_region(q)
        anchor = region.region.nearest_point_to(q_star)
        if anchor is None:
            anchor = q
        total = self.normalizer.cost(anchor, q_star, self.alpha)
        members = self.reverse_skyline(q)
        retained = self._retained_mask(members, q_star)
        for position in members[~retained]:
            point, exclude = self._resolve_customer(int(position))
            repair = modify_why_not_point(
                self.index,
                point,
                q_star,
                config=self.config,
                weights=self.beta,
                normalizer=self.normalizer,
                exclude=exclude,
            ).best()
            if repair is not None:
                total += repair.cost
        return total
