"""The :class:`WhyNotEngine` facade.

One object owning the product index, customer matrix, cost normaliser and
caches, exposing the full pipeline of the paper:

>>> engine = WhyNotEngine(products)            # monochromatic, like Fig. 1
>>> engine.reverse_skyline(q)                  # RSL(q) via BBRS
>>> engine.explain(c_t, q)                     # aspect 1: the Λ set
>>> engine.modify_why_not_point(c_t, q)        # Algorithm 1 (MWP)
>>> engine.modify_query_point(c_t, q)          # Algorithm 2 (MQP)
>>> engine.safe_region(q)                      # Algorithm 3 (exact SR)
>>> engine.modify_both(c_t, q)                 # Algorithm 4 (MWQ)
>>> engine.modify_both(c_t, q, approximate=True, k=10)   # Approx-MWQ

Customers may be addressed by row position (which enables monochromatic
self-exclusion) or by raw coordinates.

Since the planner/executor decomposition the engine is a *facade*: each
surface method builds a coordinate-free logical plan, the
:class:`~repro.plan.planner.Planner` selects physical operators (cost-
based under ``config.planner="auto"``, the historical dispatch under
``"fixed"``), and the executor runs the tree.  All kernel / safe-region
/ staircase dispatch lives in :mod:`repro.plan.operators`; the engine
keeps only the state those operators share (stores, index, result
caches, observability).  ``engine.explain_plan(surface, ...)`` returns
the executed plan tree with estimated vs. actual costs.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.config import CostWeights, WhyNotConfig
from repro.core.answer import Explanation, ModificationResult, MWQResult
from repro.core.cost import MinMaxNormalizer
from repro.core.dsl_cache import DSLCache
from repro.core.engine_obs import install_observability
from repro.core.gate import ReadWriteGate
from repro.core.mutators import EngineMutationMixin
from repro.core.safe_region import SafeRegion, SafeRegionStats
from repro.exceptions import (
    EmptyDatasetError,
    InvalidParameterError,
    StaleSessionError,
)
from repro.geometry.box import Box
from repro.geometry.point import as_point, as_points
from repro.index import make_index
from repro.plan.cache import PlanCache, config_fingerprint
from repro.plan.cost import DatasetStats
from repro.plan.executor import ExecutionContext, execute_plan
from repro.plan.logical import LogicalPlan, RetainedMaskQuery
from repro.plan.operators import ensure_approx_store
from repro.plan.planner import Planner
from repro.plan.prepared import PreparedPlan
from repro.plan.requests import build_request
from repro.prefs.model import PreferenceModel
from repro.prune.summaries import PruneSummaries
from repro.store.base import CustomerStore, ProductStore, VersionedStore
from repro.store.lease import LeaseRegistry
from repro.store.session import WhyNotSession

__all__ = ["WhyNotEngine"]


class WhyNotEngine(EngineMutationMixin):
    """End-to-end why-not answering over one product / customer universe.

    Parameters
    ----------
    products:
        ``(n, d)`` product matrix ``P``.
    customers:
        ``(m, d)`` customer matrix ``C``; ``None`` selects the
        monochromatic convention of the paper's experiments (the same
        points serve as products and customers, with self-exclusion).
    backend:
        ``"rtree"`` (the paper's access method), ``"scan"`` (vectorised
        oracle, fastest for bulk sweeps), ``"grid"`` (uniform grid), or
        ``"kdtree"`` (median-split k-d tree).
    config:
        Dominance policy / sort dimension / margin / verification /
        planner mode.
    weights:
        Alpha/beta cost weights (equal, summing to 1, by default).
    bounds:
        Data universe for normalisation and region clipping; derived from
        the data when absent.
    """

    def __init__(
        self,
        products: np.ndarray,
        customers: np.ndarray | None = None,
        backend: str = "rtree",
        config: WhyNotConfig | None = None,
        weights: CostWeights | None = None,
        bounds: Box | None = None,
    ) -> None:
        prods = as_points(products)
        if prods.shape[0] == 0:
            raise EmptyDatasetError("the product set must not be empty")
        self.monochromatic = customers is None
        # Versioned dataset layer: the engine owns its matrices through
        # copy-on-write stores.  The monochromatic convention shares one
        # store for both roles, so ``self.customers is self.products``
        # keeps holding and one mutation drives both sides coherently.
        self._product_store = ProductStore(prods)
        self._customer_store: VersionedStore = (
            self._product_store
            if customers is None
            else CustomerStore(as_points(customers, dim=prods.shape[1]))
        )
        prods = self._product_store.matrix
        custs = self._customer_store.matrix
        self._backend = backend
        self.config = config or WhyNotConfig()
        # The engine-default preference model (repro.prefs): validated
        # once here; every surface may override it per request via the
        # ``weights=`` kwarg, resolved through :meth:`resolve_prefs`.
        self.prefs = PreferenceModel.resolve(
            self.config.prefs_weights, self.config.policy, prods.shape[1]
        )
        self._weights = weights or CostWeights()
        self.alpha, self.beta = self._weights.resolved(prods.shape[1])
        self.index = make_index(backend, prods)
        # Filter-refinement summaries (repro.prune): epoch-versioned
        # per-tile AABBs kept coherent by store subscribers.  Built
        # whenever pruning is not disabled — the classifier tiles and
        # the cost model's selectivity probe both read them.
        self.prune_summaries: PruneSummaries | None = (
            PruneSummaries(
                self._product_store,
                self._customer_store,
                tile_size=self.prune_tile_size,
            )
            if self.config.prune != "off"
            else None
        )
        if bounds is None:
            stacked = np.vstack([prods, custs])
            bounds = Box(stacked.min(axis=0), stacked.max(axis=0))
        self.bounds = bounds
        self.normalizer = MinMaxNormalizer(bounds.lo, bounds.hi)
        self._rsl_cache: dict[bytes, np.ndarray] = {}
        self._sr_cache: dict[bytes, SafeRegion] = {}
        self._approx_sr_cache: dict[tuple[bytes, int], SafeRegion] = {}
        self._approx_stores: dict[tuple, object] = {}
        # Sharded execution: one ShardExecutor per dataset epoch, built
        # lazily by the sharded operators (repro.plan.operators.
        # ensure_shard_executor) and torn down on every store commit.
        self._shard_executors: dict[int, object] = {}
        # Engine-level DSL/anti-dominance cache: per-customer dynamic
        # skylines computed once, shared by safe_region / modify_both /
        # batch answering / approx store / relaxation analysis.
        # The cache's entries are unweighted DSL structures; they equal
        # the weighted ones for every *full-support* preference (scale
        # invariance of dominance), so the cache is only built when the
        # engine default has full support.  Partial-support per-request
        # preferences bypass it inside ``compute_safe_region``.
        self.dsl_cache: DSLCache | None = (
            DSLCache(
                self.index,
                self.customers,
                config=self.config,
                self_exclude=self.monochromatic,
            )
            if self.config.dsl_cache and self.prefs.full_support
            else None
        )
        self.last_safe_region_stats: SafeRegionStats | None = None
        install_observability(self)
        # Planner/executor wiring: plans are cached per (shape, epoch,
        # config fingerprint) and dropped whenever a store commits.
        self._planner = Planner(self.config)
        self._plan_cache = PlanCache(obs=self.obs)
        self._config_fp = config_fingerprint(self.config)
        # Short *stable* digest of the fingerprint for journal records
        # (hash() is salted per process; JSONL must compare across runs).
        self._config_fp_digest = hashlib.sha1(
            repr(self._config_fp).encode()
        ).hexdigest()[:12]
        self.last_plan = None
        self._product_store.subscribe(self._on_store_commit)
        if self._customer_store is not self._product_store:
            self._customer_store.subscribe(self._on_store_commit)
        # Single-writer / multi-reader contract: the gate serializes
        # each mutation against concurrent plan executions; the lease
        # registry extends the pin to whole multi-plan requests (the
        # serve layer's writer drains leases between batches).
        self.gate = ReadWriteGate()
        self.leases = LeaseRegistry(lambda: self.dataset_epoch)
        self._closed = False

    # ------------------------------------------------------------------
    # Versioned dataset surface
    # ------------------------------------------------------------------
    @property
    def products(self) -> np.ndarray:
        """The current ``(n, d)`` product matrix (non-writeable; mutate
        through :meth:`insert_products` / :meth:`delete_products` /
        :meth:`update_products`)."""
        return self._product_store.matrix

    @property
    def customers(self) -> np.ndarray:
        """The current ``(m, d)`` customer matrix — the *same object* as
        :attr:`products` in the monochromatic convention."""
        return self._customer_store.matrix

    @property
    def product_store(self) -> ProductStore:
        return self._product_store

    @property
    def customer_store(self) -> VersionedStore:
        return self._customer_store

    @property
    def backend(self) -> str:
        """The spatial-index backend name this engine was built with."""
        return self._backend

    @property
    def dataset_epoch(self) -> int:
        """Monotone counter of committed mutations across both stores;
        every derived cache is valid for exactly one value of it."""
        if self._customer_store is self._product_store:
            return self._product_store.epoch
        return self._product_store.epoch + self._customer_store.epoch

    def session(self) -> WhyNotSession:
        """A read facade pinned to the current epoch: reads through it
        raise :class:`~repro.exceptions.StaleSessionError` after any
        mutation instead of silently mixing generations."""
        return WhyNotSession(self)

    # ------------------------------------------------------------------
    # Concurrency + lifecycle contract
    # ------------------------------------------------------------------
    def enable_thread_safety(self) -> None:
        """Prepare this engine for concurrent epoch-pinned readers.

        Locks every metric on the engine registry (counter increments
        are read-modify-writes that lose updates under threads; see
        :meth:`repro.obs.MetricsRegistry.make_threadsafe`).  The
        structural invariants — readers never observing a half-applied
        mutation — come from :attr:`gate` and :attr:`leases` and hold
        regardless; this call only makes the *accounting* exact.
        Idempotent; the serve layer calls it at startup.
        """
        self.obs.metrics.make_threadsafe()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release pooled resources now instead of at garbage collection.

        Tears down the shard executors (worker pools + shared-memory
        segments) and flushes the observability state so a final export
        is coherent (the epoch gauge reflects the last committed
        generation).  Idempotent.  The engine object itself remains
        usable for reads afterwards — lazily-built executors would
        simply be recreated — but the contract callers should rely on
        is: after ``close()`` no engine-owned OS resources are live.
        ``with WhyNotEngine(...) as engine:`` closes on exit; the serve
        layer's shutdown path calls this.
        """
        if self._closed:
            return
        self._closed = True
        with self.gate.write():
            self.close_shard_executors()
            self._epoch_gauge.set(self.dataset_epoch)

    def __enter__(self) -> "WhyNotEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.products.shape[1]

    @property
    def kernel_block_size(self) -> int:
        """The *resolved* kernel block width: the configured value, or
        the working-set heuristic when ``kernel_block_size=None``.
        Every kernel call site reads this, never the raw config field."""
        from repro.kernels.membership import resolve_block_size

        return resolve_block_size(self.config.kernel_block_size, self.dim)

    @property
    def prune_tile_size(self) -> int:
        """The resolved classifier tile width: the configured value, or
        the resolved kernel block size so one classification tile maps
        to exactly one kernel tile."""
        if self.config.prune_tile_size is not None:
            return int(self.config.prune_tile_size)
        return self.kernel_block_size

    def resolve_prefs(
        self, weights: "Sequence[float] | np.ndarray | PreferenceModel | None" = None
    ) -> PreferenceModel:
        """The :class:`~repro.prefs.model.PreferenceModel` of one request.

        ``None`` selects the engine default; a raw weight sequence is
        validated (length, non-negativity, finiteness) against this
        dataset's dimensionality; a prebuilt model is length-checked and
        adopted as-is.  Raises
        :class:`~repro.exceptions.InvalidParameterError` on malformed
        weights — the serve layer maps that to a structured 400.
        """
        if weights is None:
            self._prefs_default_requests.inc()
            return self.prefs
        self._prefs_weighted_requests.inc()
        if isinstance(weights, PreferenceModel):
            weights.resolved(self.dim)  # length check
            return weights
        return PreferenceModel.resolve(weights, self.config.policy, self.dim)

    def _resolve_customer(
        self, why_not: "int | Sequence[float]"
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Map a customer position or raw point to ``(point, exclusions)``.

        Positions get monochromatic self-exclusion; raw coordinates do not
        (the caller is asking about a hypothetical customer).
        """
        if isinstance(why_not, (int, np.integer)):
            position = int(why_not)
            if not 0 <= position < self.customers.shape[0]:
                raise InvalidParameterError(
                    f"customer position {position} out of range"
                )
            point = self.customers[position]
            exclude = (position,) if self.monochromatic else ()
            return point, exclude
        return as_point(why_not, dim=self.dim), ()

    def _geometry_bounds(self, query: np.ndarray) -> Box:
        """Universe box guaranteed to contain the query point."""
        if self.bounds.contains_point(query):
            return self.bounds
        return Box(
            np.minimum(self.bounds.lo, query), np.maximum(self.bounds.hi, query)
        )

    # ------------------------------------------------------------------
    # Planning + execution (the dispatch core of the facade)
    # ------------------------------------------------------------------
    @property
    def planner(self) -> Planner:
        return self._planner

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    def dataset_stats(self) -> DatasetStats:
        """The statistics snapshot the cost model plans against."""
        return DatasetStats.of(self)

    def _on_store_commit(self, mutation) -> None:
        # Plans were costed against the pre-mutation stats; drop them
        # all (the cache key's epoch would miss anyway — this keeps the
        # cache small and the eviction counter honest).
        self._plan_cache.clear()
        # Shard executors hold shared-memory copies of the pre-mutation
        # matrices; close them eagerly (unlinking the segments) rather
        # than waiting for the next sharded call.
        for executor in self._shard_executors.values():
            executor.close()
        self._shard_executors.clear()

    def close_shard_executors(self) -> None:
        """Release the sharded execution resources (worker pool and
        shared-memory segments) now instead of at garbage collection.
        Safe to call at any time: the next sharded operator dispatch
        simply rebuilds an executor for the current epoch."""
        for executor in self._shard_executors.values():
            executor.close()
        self._shard_executors.clear()

    def _request(
        self, surface: str, *args, **kwargs
    ) -> tuple[LogicalPlan, dict]:
        """``(logical plan, execution-context kwargs)`` for one surface
        request; see :func:`repro.plan.requests.build_request`."""
        return build_request(self, surface, *args, **kwargs)

    def _prepare(self, logical: LogicalPlan, ctx_kwargs: dict) -> PreparedPlan:
        prefs = ctx_kwargs.get("prefs") or self.prefs
        key = (
            logical.cache_key(),
            self.dataset_epoch,
            self._config_fp,
            prefs.fingerprint(),
        )
        node = self._plan_cache.get(key)
        cached = node is not None
        if node is None:
            node = self._planner.plan(logical, DatasetStats.of(self))
            self._plan_cache.put(key, node)
        self.last_plan = node
        return PreparedPlan(self, logical, node, ctx_kwargs, plan_cached=cached)

    def _run_plan(
        self,
        node,
        ctx_kwargs: dict,
        pinned_epoch: "int | None" = None,
        stale_message: str | None = None,
    ):
        with self.gate.read():
            # The epoch check runs *inside* the read gate, so a plan
            # pinned to a generation can never race a commit: either the
            # mutation finished first (stale raises here) or this
            # execution finishes before the writer gets the gate.
            if pinned_epoch is not None:
                current = self.dataset_epoch
                if current != pinned_epoch:
                    raise StaleSessionError(
                        stale_message
                        or (
                            f"plan prepared at dataset epoch {pinned_epoch}, "
                            f"but the engine is now at epoch {current}; "
                            "call replan() to plan against the mutated market"
                        ),
                        pinned_epoch=pinned_epoch,
                        current_epoch=current,
                    )
            journal = self.obs.journal
            if journal is None:
                return execute_plan(
                    node, ExecutionContext(engine=self, **ctx_kwargs)
                )
            # Journaled path: bracket the execution with tracked-counter
            # snapshots so the record carries this request's deltas only.
            before = journal.counter_snapshot()
            result = execute_plan(
                node, ExecutionContext(engine=self, **ctx_kwargs)
            )
            journal.record(
                surface=node.logical.surface,
                operator=node.operator.name,
                epoch=self.dataset_epoch,
                config_fingerprint=self._config_fp_digest,
                estimated_seconds=node.estimate.seconds,
                actual_seconds=node.actual_seconds or 0.0,
                counters=journal.counter_delta(before),
            )
            return result

    def _execute(self, logical: LogicalPlan, ctx_kwargs: dict):
        prepared = self._prepare(logical, ctx_kwargs)
        # Direct surface calls answer from the current generation by
        # definition — no epoch pin (sessions and prepared plans add it).
        return self._run_plan(prepared.node, ctx_kwargs)

    def prepare(self, surface: str, *args, **kwargs) -> PreparedPlan:
        """Plan a surface request without executing it.  The returned
        :class:`~repro.plan.prepared.PreparedPlan` is pinned to the
        current dataset epoch; executing it after a mutation raises
        :class:`~repro.exceptions.StaleSessionError`."""
        return self._prepare(*self._request(surface, *args, **kwargs))

    def explain_plan(self, surface: str, *args, **kwargs):
        """EXPLAIN ANALYZE for one surface call: execute it and return a
        :class:`~repro.plan.explain.PlanReport` holding the chosen plan
        tree with estimated and actual costs plus the surface result."""
        prepared = self.prepare(surface, *args, **kwargs)
        result = prepared.execute()
        return prepared.report(result)

    # ------------------------------------------------------------------
    # Query journal + cost-drift sentinel
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """The per-query :class:`~repro.obs.journal.QueryJournal`
        (``None`` unless ``WhyNotConfig(journal=True)``)."""
        return self.obs.journal

    def drift_report(
        self,
        *,
        ewma_alpha: float = 0.3,
        band: Sequence[float] | None = None,
        min_samples: int = 3,
        publish: bool = True,
    ):
        """Aggregate the journal into a per-operator
        :class:`~repro.obs.drift.DriftReport` (EWMA of actual/estimated
        seconds, flags outside ``band``, recalibration proposals).

        ``publish=True`` also sets one ``plan.drift.<operator>`` gauge
        per operator on the engine registry, so the sentinel's view is
        scrapeable through ``to_prometheus``.
        """
        from repro.obs.drift import DEFAULT_DRIFT_BAND, aggregate_drift

        journal = self.obs.journal
        if journal is None:
            raise InvalidParameterError(
                "drift_report needs the query journal; build the engine "
                "with WhyNotConfig(journal=True)"
            )
        report = aggregate_drift(
            journal.records(),
            ewma_alpha=ewma_alpha,
            band=band if band is not None else DEFAULT_DRIFT_BAND,
            min_samples=min_samples,
        )
        if publish:
            report.publish(self.obs.metrics)
        return report

    # ------------------------------------------------------------------
    # Reverse skyline
    # ------------------------------------------------------------------
    def reverse_skyline(
        self,
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        """``RSL(query)`` as positions into the customer matrix (BBRS).

        ``weights`` are optional per-request preference weights
        (:mod:`repro.prefs`); ``None`` uses the engine default.
        """
        return self._execute(
            *self._request("reverse_skyline", query, weights=weights)
        )

    def is_member(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> bool:
        """Membership of one customer in ``RSL(query)``."""
        return bool(self.membership_mask([why_not], query, weights=weights)[0])

    def membership_mask(
        self,
        why_nots: Sequence["int | Sequence[float]"],
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        """Boolean :meth:`is_member` vector for many customers at once.

        The planner picks between one blocked kernel pass and the
        per-customer oracle loop; the result is bit-identical either way.
        """
        return self._execute(
            *self._request("membership", why_nots, query, weights=weights)
        )

    # ------------------------------------------------------------------
    # The four why-not methods
    # ------------------------------------------------------------------
    def explain(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> Explanation:
        """Aspect 1: the ``Λ`` set of products blocking membership."""
        return self._execute(
            *self._request("explain", why_not, query, weights=weights)
        )

    def modify_why_not_point(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> ModificationResult:
        """Algorithm 1 (MWP) with normalised costs."""
        return self._execute(
            *self._request("mwp", why_not, query, weights=weights)
        )

    def modify_query_point(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> ModificationResult:
        """Algorithm 2 (MQP) with normalised movement costs."""
        return self._execute(
            *self._request("mqp", why_not, query, weights=weights)
        )

    def safe_region(
        self,
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        weights: "Sequence[float] | None" = None,
    ) -> SafeRegion:
        """Algorithm 3 (exact) or the Section-VI.B approximation."""
        return self._execute(
            *self._request(
                "safe_region", query, approximate=approximate, k=k,
                weights=weights,
            )
        )

    def modify_both(
        self,
        why_not: "int | Sequence[float]",
        query: Sequence[float],
        approximate: bool = False,
        k: int = 10,
        weights: "Sequence[float] | None" = None,
    ) -> MWQResult:
        """Algorithm 4 (MWQ), optionally on the approximate safe region."""
        return self._execute(
            *self._request(
                "mwq", why_not, query, approximate=approximate, k=k,
                weights=weights,
            )
        )

    def approx_store(self, k: int = 10):
        """The (cached) pre-computed sampled-DSL store for parameter
        ``k``, keyed by ``(k, dataset_epoch)`` so a stale-epoch store is
        never served."""
        return ensure_approx_store(self, k)

    # Mutations: insert/delete/update for both stores, invalidate_caches
    # and without_products live in :class:`EngineMutationMixin`; their
    # post-commit maintenance lives in :mod:`repro.core.invalidation`.

    # ------------------------------------------------------------------
    # Lost customers + the experiment cost model (Section VI.A)
    # ------------------------------------------------------------------
    def lost_customers(
        self,
        query: Sequence[float],
        refined_query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        """Existing reverse-skyline members that would be lost by moving
        ``query`` to ``refined_query`` (positions into the customer
        matrix, empty when the move is safe — Section V.B)."""
        q = as_point(query, dim=self.dim)
        q_star = as_point(refined_query, dim=self.dim)
        members = self.reverse_skyline(q, weights=weights)
        retained = self._retained_mask(members, q_star, weights=weights)
        return members[~retained].astype(np.int64, copy=False)

    def _retained_mask(
        self,
        members: np.ndarray,
        refined_query: np.ndarray,
        weights: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        """Which reverse-skyline ``members`` remain members under the
        refined query (tolerance-aware, one kernel pass when planned)."""
        members = np.asarray(members, dtype=np.int64)
        return self._execute(
            RetainedMaskQuery(),
            {
                "refined_query": refined_query,
                "members": members,
                "prefs": self.resolve_prefs(weights),
            },
        )

    def why_not_movement_cost(
        self,
        original: Sequence[float],
        moved: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> float:
        """Eqn. (11): normalised beta-weighted movement of the why-not
        point, scaled by the preference magnitudes when given."""
        beta = self.resolve_prefs(weights).cost_weights(self.beta)
        return self.normalizer.cost(original, moved, beta)

    def query_movement_cost(
        self,
        original: Sequence[float],
        moved: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> float:
        """Normalised alpha-weighted movement of the query point."""
        alpha = self.resolve_prefs(weights).cost_weights(self.alpha)
        return self.normalizer.cost(original, moved, alpha)

    def mqp_total_cost(
        self,
        query: Sequence[float],
        refined_query: Sequence[float],
        weights: "Sequence[float] | None" = None,
    ) -> float:
        """The experiment cost of an MQP answer (Section VI.A):

        ``alpha . |q' - q*| + sum over lost customers of beta . |c_l - c_l*|``

        where ``q'`` is the closest safe-region point to ``q*`` and each
        lost customer's repair ``c_l*`` is its cheapest Algorithm-1 move
        w.r.t. the refined query.
        """
        q = as_point(query, dim=self.dim)
        q_star = as_point(refined_query, dim=self.dim)
        prefs = self.resolve_prefs(weights)
        region = self.safe_region(q, weights=weights)
        anchor = region.region.nearest_point_to(q_star)
        if anchor is None:
            anchor = q
        total = self.normalizer.cost(anchor, q_star, prefs.cost_weights(self.alpha))
        members = self.reverse_skyline(q, weights=weights)
        retained = self._retained_mask(members, q_star, weights=weights)
        for position in members[~retained]:
            repair = self.modify_why_not_point(
                int(position), q_star, weights=weights
            ).best()
            if repair is not None:
                total += repair.cost
        return total
