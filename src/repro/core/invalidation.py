"""Locality-scoped cache maintenance for engine mutations.

A mutation of the product (or customer) matrix does not touch most of
what the engine has cached — and the paper's own window-locality argument
says exactly which entries it *can* touch:

* **Reverse skylines** (``RSL(q)``): customer ``c``'s membership w.r.t.
  ``q`` depends only on the products inside ``c``'s window around ``q``
  (the dominance region of Definition 4).  A product change at ``x``
  can therefore flip ``c`` only when ``|c - x| <= |c - q|`` holds in
  every dimension — the *closed* window test, conservative for both the
  WEAK and STRICT boundary policies.  Inserting products can only
  *remove* members; deleting can only *add* them; an update is both at
  once.  Each cached entry is **repaired** in place: only the customers
  the mutation can reach are re-tested (with the same membership
  predicate BBRS uses), everyone else keeps their verdict.

* **Dynamic skylines** (the per-customer threshold matrices of the
  :class:`~repro.core.dsl_cache.DSLCache`): deleting ``x`` changes
  ``DSL(c)`` only if ``x`` was *in* it — i.e. ``|c - x|`` matches a
  cached threshold row exactly.  Inserting ``x`` leaves ``DSL(c)``
  intact whenever some cached row strictly dominates ``|c - x|`` in
  every dimension: the newcomer is then strictly dominated (so it does
  not enter the skyline) and, by transitivity of weak dominance, every
  point it dominates was already dominated (so nothing leaves either).

* **Safe regions**: ``SR(q)`` is the intersection of the members'
  anti-dominance regions (Lemma 2), so it survives a mutation iff the
  membership of ``RSL(q)`` is unchanged *and* no member's dynamic
  skyline was affected.  Surviving regions only need their member
  positions renumbered after a compacting delete.

Every re-test runs the exact membership predicate, so the repaired
caches are bit-identical to a freshly built engine — property-tested in
``tests/properties/test_incremental_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core._verify import verify_membership
from repro.kernels.membership import batch_window_membership

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine
    from repro.store.base import Mutation

__all__ = [
    "InvalidationOutcome",
    "MutationInvalidator",
    "apply_mutation",
    "in_closed_window",
    "invalidate_all",
    "thresholds_affected_by_delete",
    "thresholds_affected_by_insert",
]


def apply_mutation(
    engine: "WhyNotEngine", mutation: "Mutation", product: bool, out: np.ndarray
) -> np.ndarray:
    """Post-commit maintenance of one store mutation: index upkeep,
    cache scoping (or the full-invalidate fallback), obs accounting.

    Called by every engine mutator; the plan cache is cleared separately
    through the store's post-commit subscribers, so it is already empty
    by the time this runs.
    """
    if mutation.is_noop:
        return out
    store = "product" if product else "customer"
    with engine.obs.span(
        "engine.mutation", kind=mutation.kind, store=store
    ) as span:
        if product:
            if mutation.kind == "insert":
                engine.index.insert(mutation.new_points)
            elif mutation.kind == "delete":
                engine.index.remove(mutation.positions)
            else:
                engine.index.update(mutation.positions, mutation.new_points)
        # Scoped invalidation reasons about full-dimensional windows and
        # repairs entries with unweighted membership sweeps; under a
        # partial-support engine default the projected geometry differs,
        # so the conservative full flush is the only sound choice.
        scoped = (
            engine.config.scoped_invalidation
            and engine.prefs.full_support
            and (not product or engine.dsl_cache is not None)
        )
        if scoped:
            invalidator = MutationInvalidator(engine)
            outcome = (
                invalidator.product_mutation(mutation)
                if product
                else invalidator.customer_mutation(mutation)
            )
            engine._scoped_considered.inc(outcome.considered)
            engine._scoped_evicted.inc(outcome.evicted)
            engine._scoped_retained.inc(outcome.retained)
            engine._scoped_repaired.inc(outcome.repaired)
            span.set(
                scoped=True,
                evicted=outcome.evicted,
                retained=outcome.retained,
                repaired=outcome.repaired,
            )
        else:
            invalidate_all(engine)
            if engine.dsl_cache is not None:
                engine.dsl_cache.rebind(engine.customers)
            span.set(scoped=False)
    engine._mutations.inc()
    engine._epoch_gauge.set(engine.dataset_epoch)
    return out


def invalidate_all(engine: "WhyNotEngine") -> None:
    """Drop every derived result cache (RSL, safe regions, approx
    stores, DSL cache) — the unscoped fallback after a mutation, counted
    under ``cache.evicted_full``."""
    total = (
        len(engine._rsl_cache)
        + len(engine._sr_cache)
        + len(engine._approx_sr_cache)
        + sum(len(store) for store in engine._approx_stores.values())
    )
    if engine.dsl_cache is not None:
        total += engine.dsl_cache.entry_count()
    engine._rsl_cache.clear()
    engine._sr_cache.clear()
    engine._approx_sr_cache.clear()
    engine._approx_stores.clear()
    engine.last_safe_region_stats = None
    if engine.dsl_cache is not None:
        engine.dsl_cache.invalidate()
    engine._evicted_full.inc(total)


@dataclass
class InvalidationOutcome:
    """Entry accounting of one scoped invalidation pass.

    ``considered`` counts every cached entry inspected (across the RSL,
    safe-region, DSL and approximate-store layers); each one is either
    ``evicted`` or ``retained``, so ``considered == evicted + retained``
    always holds — the balance the CI smoke job asserts.  ``repaired``
    counts the subset of retained entries whose *content* was rewritten
    in place (reverse-skyline entries with members added or removed).
    """

    considered: int = 0
    evicted: int = 0
    retained: int = 0
    repaired: int = 0


def in_closed_window(
    customers: np.ndarray, points: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """``(m,)`` bool: does any of ``points`` fall in each customer's
    *closed* window around ``query`` (``|c - x| <= |c - q|`` in every
    dimension)?

    The closed test is conservative for both dominance policies: a
    product strictly outside the window cannot affect the membership
    verdict under either boundary convention, so a False here proves
    the customer unreachable by the mutation.
    """
    if customers.shape[0] == 0 or points.shape[0] == 0:
        return np.zeros(customers.shape[0], dtype=bool)
    radius = np.abs(customers - query)  # (m, d)
    dist = np.abs(customers[:, None, :] - points[None, :, :])  # (m, k, d)
    return np.any(np.all(dist <= radius[:, None, :], axis=2), axis=1)


def thresholds_affected_by_delete(
    thresholds: np.ndarray, removed: np.ndarray
) -> bool:
    """Can deleting products at query-space distances ``removed`` change
    the dynamic skyline behind ``thresholds``?

    Only points *in* the skyline matter: a deleted non-member was
    (weakly) dominated by some member, which by transitivity dominates
    everything the deleted point dominated.  Membership is detected as
    an exact row match — ``thresholds`` are the members' query-space
    coordinates, so a member's row is bit-equal by construction.
    """
    if removed.shape[0] == 0:
        return False
    if thresholds.shape[0] == 0:
        return False
    match = np.all(
        thresholds[:, None, :] == removed[None, :, :], axis=2
    )
    return bool(np.any(match))


def thresholds_affected_by_insert(
    thresholds: np.ndarray, added: np.ndarray
) -> bool:
    """Can inserting products at query-space distances ``added`` change
    the dynamic skyline behind ``thresholds``?

    Safe (returns False) only when every added row is *strictly*
    dominated by some cached threshold row: the newcomer then cannot
    enter the skyline under either boundary policy, and cannot evict
    anyone.  An empty skyline is always affected.
    """
    if added.shape[0] == 0:
        return False
    if thresholds.shape[0] == 0:
        return True
    dominated = np.any(
        np.all(thresholds[:, None, :] < added[None, :, :], axis=2), axis=0
    )
    return not bool(np.all(dominated))


class MutationInvalidator:
    """One-shot scoped-invalidation pass over a mutated engine.

    Instantiated by :class:`~repro.core.engine.WhyNotEngine` *after* the
    store and index have committed a mutation; reads the engine's private
    caches directly (it is a friend of the engine, split out to keep the
    locality reasoning in one reviewable place).
    """

    def __init__(self, engine: "WhyNotEngine") -> None:
        self.engine = engine
        self.outcome = InvalidationOutcome()
        # Do customer rows renumber under this mutation?  Only compacting
        # deletes of the customer side: a shared-store (monochromatic)
        # product delete, or a bichromatic customer delete.  A bichromatic
        # *product* delete renumbers product rows — customer positions,
        # which is what every cache is keyed by, stay put.
        self._renumbers = False

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def product_mutation(self, mutation: "Mutation") -> InvalidationOutcome:
        """Scope the caches after a product-store commit.

        In the monochromatic convention the shared store means this is
        simultaneously a customer mutation, so member positions may be
        renumbered (delete), gain candidates (insert) or move (update).
        """
        eng = self.engine
        self._renumbers = eng.monochromatic and mutation.kind == "delete"
        affected = self._affected_dsl_positions(mutation)
        changed_keys, evicted_keys = self._repair_rsl_product(mutation)
        self._sweep_safe_regions(mutation, affected, changed_keys, evicted_keys)
        self._sweep_dsl_cache(mutation, affected)
        self._sweep_approx_stores(mutation, affected)
        self._rebind(mutation)
        return self.outcome

    def customer_mutation(self, mutation: "Mutation") -> InvalidationOutcome:
        """Scope the caches after a customer-store commit (bichromatic
        engines only — the product set, hence every membership predicate
        and every dynamic skyline of an *unchanged* customer, is intact)."""
        self._renumbers = mutation.kind == "delete"
        affected = (
            set(int(p) for p in mutation.positions)
            if mutation.kind == "update"
            else set()
        )
        changed_keys, evicted_keys = self._repair_rsl_customer(mutation)
        self._sweep_safe_regions(mutation, affected, changed_keys, evicted_keys)
        self._sweep_dsl_cache(mutation, affected)
        self._sweep_approx_stores(mutation, affected)
        self._rebind(mutation)
        return self.outcome

    # ------------------------------------------------------------------
    # Reverse-skyline repair
    # ------------------------------------------------------------------
    def _membership(self, positions: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Exact membership of (post-mutation) customer ``positions`` in
        ``RSL(query)`` — the same predicate :meth:`WhyNotEngine.
        membership_mask` evaluates, so repaired entries match BBRS."""
        eng = self.engine
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=bool)
        points = eng.customers[positions]
        self_positions = (
            positions
            if eng.monochromatic
            else np.full(positions.size, -1, dtype=np.int64)
        )
        eng._membership_tests.inc(int(positions.size))
        if eng.config.batch_kernels:
            return batch_window_membership(
                eng.products,
                points,
                query,
                eng.config.policy,
                self_positions=self_positions,
                block_size=eng.kernel_block_size,
                counters=eng._kernel_counters,
            )
        return np.fromiter(
            (
                verify_membership(
                    eng.index,
                    points[i],
                    query,
                    eng.config.policy,
                    (int(self_positions[i]),) if self_positions[i] >= 0 else (),
                    rtol=0.0,
                )
                for i in range(positions.size)
            ),
            dtype=bool,
            count=positions.size,
        )

    def _repair_one_product(
        self, mutation: "Mutation", members: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """The post-mutation ``RSL(query)`` derived from its cached value."""
        eng = self.engine
        mono = eng.monochromatic
        kind = mutation.kind
        if kind == "insert":
            # New products only *block*: a member survives unless some
            # inserted point entered its window; nobody new joins —
            # except, monochromatically, the inserted rows themselves.
            suspects = in_closed_window(
                eng.customers[members], mutation.new_points, query
            )
            kept = members[~suspects]
            retest = members[suspects]
            survivors = retest[self._membership(retest, query)]
            parts = [kept, survivors]
            if mono:
                joiners = mutation.positions[
                    self._membership(mutation.positions, query)
                ]
                parts.append(joiners)
            return np.sort(np.concatenate(parts)).astype(np.int64, copy=False)
        if kind == "delete":
            # Removing products only *admits*: surviving members stay
            # members (renumbered, monochromatically), and the only
            # possible joiners are non-members that had a deleted point
            # in their window.
            remapped = mutation.mapping[members] if mono else members
            remapped = remapped[remapped >= 0]
            m_new = eng.customers.shape[0]
            non_member = np.ones(m_new, dtype=bool)
            non_member[remapped] = False
            candidates = np.flatnonzero(non_member)
            candidates = candidates[
                in_closed_window(
                    eng.customers[candidates], mutation.old_points, query
                )
            ]
            joiners = candidates[self._membership(candidates, query)]
            return np.sort(np.concatenate([remapped, joiners])).astype(
                np.int64, copy=False
            )
        # update: removed rows may admit, added rows may block, and
        # (monochromatically) the moved customers' own verdicts must be
        # recomputed outright — their coordinates changed.
        updated = mutation.positions
        if mono:
            steady = members[~np.isin(members, updated)]
        else:
            steady = members
        suspects = in_closed_window(
            eng.customers[steady], mutation.new_points, query
        )
        kept = steady[~suspects]
        retest = steady[suspects]
        survivors = retest[self._membership(retest, query)]
        m_new = eng.customers.shape[0]
        steady_non_member = np.ones(m_new, dtype=bool)
        steady_non_member[steady] = False
        if mono:
            steady_non_member[updated] = False
        candidates = np.flatnonzero(steady_non_member)
        candidates = candidates[
            in_closed_window(
                eng.customers[candidates], mutation.old_points, query
            )
        ]
        joiners = candidates[self._membership(candidates, query)]
        parts = [kept, survivors, joiners]
        if mono:
            parts.append(updated[self._membership(updated, query)])
        return np.sort(np.concatenate(parts)).astype(np.int64, copy=False)

    def _repair_one_customer(
        self, mutation: "Mutation", members: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """Post-mutation ``RSL(query)`` for a customer-store commit: the
        product set is untouched, so unchanged customers keep their
        verdicts verbatim."""
        kind = mutation.kind
        if kind == "insert":
            joiners = mutation.positions[
                self._membership(mutation.positions, query)
            ]
            return np.sort(np.concatenate([members, joiners])).astype(
                np.int64, copy=False
            )
        if kind == "delete":
            remapped = mutation.mapping[members]
            return np.sort(remapped[remapped >= 0]).astype(np.int64, copy=False)
        updated = mutation.positions
        steady = members[~np.isin(members, updated)]
        now_member = updated[self._membership(updated, query)]
        return np.sort(np.concatenate([steady, now_member])).astype(
            np.int64, copy=False
        )

    def _repair_rsl(
        self, mutation: "Mutation", repair
    ) -> tuple[set, set]:
        """Rewrite every cached reverse skyline via ``repair``; returns
        ``(changed_keys, evicted_keys)`` for the safe-region sweep."""
        eng = self.engine
        outcome = self.outcome
        changed: set = set()
        evicted: set = set()
        for key, members in list(eng._rsl_cache.items()):
            outcome.considered += 1
            query = np.frombuffer(key, dtype=np.float64)
            repaired = repair(mutation, members, query)
            outcome.retained += 1
            if not np.array_equal(repaired, members):
                eng._rsl_cache[key] = repaired
                outcome.repaired += 1
                changed.add(key)
        return changed, evicted

    def _repair_rsl_product(self, mutation: "Mutation") -> tuple[set, set]:
        return self._repair_rsl(mutation, self._repair_one_product)

    def _repair_rsl_customer(self, mutation: "Mutation") -> tuple[set, set]:
        return self._repair_rsl(mutation, self._repair_one_customer)

    # ------------------------------------------------------------------
    # Dynamic-skyline affectedness
    # ------------------------------------------------------------------
    def _affected_dsl_positions(self, mutation: "Mutation") -> set:
        """Old-numbering customer positions whose *cached* threshold
        matrices the product mutation can change.

        Uncached customers have nothing to evict, and every cached safe
        region's members have cached thresholds (its construction put
        them there), so testing only cached positions loses nothing.
        """
        eng = self.engine
        dsl = eng.dsl_cache
        if dsl is None:
            return set()
        mono = eng.monochromatic
        kind = mutation.kind
        updated = (
            set(int(p) for p in mutation.positions)
            if kind == "update"
            else set()
        )
        affected: set = set()
        for position in dsl.cached_positions():
            if mono and kind == "update" and position in updated:
                # The customer itself moved: its threshold matrix is
                # measured from the old coordinates, unconditionally gone.
                affected.add(position)
                continue
            if mono and kind == "delete":
                new_position = int(mutation.mapping[position])
                if new_position < 0:
                    continue  # entry dropped by the remap, not "affected"
                customer = eng.customers[new_position]
            else:
                customer = eng.customers[position]
            thresholds = dsl.cached_thresholds(position)
            hit = False
            if kind in ("delete", "update") and mutation.old_points.size:
                hit = thresholds_affected_by_delete(
                    thresholds, np.abs(customer - mutation.old_points)
                )
            if not hit and kind in ("insert", "update") and mutation.new_points.size:
                hit = thresholds_affected_by_insert(
                    thresholds, np.abs(customer - mutation.new_points)
                )
            if hit:
                affected.add(position)
        return affected

    # ------------------------------------------------------------------
    # Cache sweeps
    # ------------------------------------------------------------------
    def _sweep_safe_regions(
        self,
        mutation: "Mutation",
        affected: set,
        changed_keys: set,
        evicted_keys: set,
    ) -> None:
        """Evict or renumber the exact and approximate safe-region caches.

        A region survives iff its query's membership is unchanged and no
        member's dynamic skyline (exact sweep) / sampled skyline
        (approximate sweep — same affectedness test, the sample is a
        function of the thresholds) was touched.
        """
        eng = self.engine
        outcome = self.outcome
        mapping = mutation.mapping

        def sweep(cache: dict, key_of) -> None:
            for key, region in list(cache.items()):
                outcome.considered += 1
                qkey = key_of(key)
                members = region.rsl_positions
                stale = (
                    qkey in changed_keys
                    or qkey in evicted_keys
                    or any(int(p) in affected for p in members)
                )
                if not stale and self._renumbers:
                    stale = not region.remap_positions(mapping)
                if stale:
                    del cache[key]
                    outcome.evicted += 1
                else:
                    outcome.retained += 1

        sweep(eng._sr_cache, lambda key: key)
        sweep(eng._approx_sr_cache, lambda key: key[0])

    def _sweep_dsl_cache(self, mutation: "Mutation", affected: set) -> None:
        eng = self.engine
        dsl = eng.dsl_cache
        if dsl is None:
            return
        outcome = self.outcome
        before = dsl.entry_count()
        evicted = dsl.evict(affected) if affected else 0
        if self._renumbers:
            evicted += dsl.remap(mutation.mapping)
        outcome.considered += before
        outcome.evicted += evicted
        outcome.retained += before - evicted

    def _sweep_approx_stores(self, mutation: "Mutation", affected: set) -> None:
        """Evict/renumber the sampled-DSL stores, then re-key them by the
        post-mutation dataset epoch (they are valid *for* it now)."""
        eng = self.engine
        outcome = self.outcome
        epoch = eng.dataset_epoch
        rekeyed: dict = {}
        for (k, _epoch), store in eng._approx_stores.items():
            before = len(store)
            evicted = store.evict(affected) if affected else 0
            if self._renumbers:
                evicted += store.remap(mutation.mapping)
            outcome.considered += before
            outcome.evicted += evicted
            outcome.retained += before - evicted
            rekeyed[(k, epoch)] = store
        eng._approx_stores = rekeyed

    def _rebind(self, mutation: "Mutation") -> None:
        """Point every surviving cache layer at the post-mutation
        matrices (copy-on-write means the arrays are new objects)."""
        eng = self.engine
        if eng.dsl_cache is not None:
            eng.dsl_cache.rebind(eng.customers)
        for store in eng._approx_stores.values():
            store.rebind(eng.customers)
