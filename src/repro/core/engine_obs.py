"""Observability wiring of one :class:`~repro.core.engine.WhyNotEngine`.

Split out of the engine facade: everything here is registration — the
tracer/metrics bundle, the attached stats views, and the named counters
the rest of the codebase (operators, scoped invalidation, exporters,
the CI smoke) reads back off the engine by attribute.  The attribute
names are load-bearing: :mod:`repro.core.invalidation` and the plan
operators access ``engine._membership_tests``, ``engine._kernel_counters``
and friends directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.safe_region import SafeRegionStats
from repro.kernels.membership import KernelCounters
from repro.obs import Observability, QueryJournal
from repro.prune.counters import PruneCounters
from repro.shard.stats import ShardStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine

__all__ = ["install_observability"]

#: Root-span retention of a traced engine: enough history for any
#: realistic export or test, bounded so a long-lived traced server
#: cannot grow without limit (evictions count in
#: ``tracer.spans_dropped``).
TRACER_MAX_ROOTS = 4096


def install_observability(engine: "WhyNotEngine") -> None:
    """Create ``engine.obs`` and every engine-owned counter/gauge."""
    engine.obs = Observability(
        enabled=engine.config.trace, max_roots=TRACER_MAX_ROOTS
    )
    # Per-query journal: one JournalRecord per executed plan, recorded
    # by WhyNotEngine._run_plan.  Installed only when asked for — the
    # journal-off path must not pay the per-request counter snapshots.
    if engine.config.journal:
        engine.obs.journal = QueryJournal(
            capacity=engine.config.journal_capacity,
            metrics=engine.obs.metrics,
        )
    engine.obs.attach_stats("index", engine.index.stats)
    if engine.dsl_cache is not None:
        engine.obs.attach_stats("dsl_cache", engine.dsl_cache.stats)
    # Engine-lifetime safe-region totals (per-build numbers stay on
    # SafeRegion.stats / last_safe_region_stats).
    engine.safe_region_totals = SafeRegionStats()
    engine.obs.attach_stats("safe_region", engine.safe_region_totals)
    # Sharded-execution counters (shard.dispatched / shard.merged / ...),
    # shared by every ShardExecutor the engine builds across epochs.
    engine.shard_stats = ShardStats()
    engine.obs.attach_stats("shard", engine.shard_stats)
    # Kernel counters are only threaded through the hot loops when
    # tracing: the disabled path must stay counter-free.
    engine._kernel_counters = None
    if engine.config.trace:
        engine._kernel_counters = KernelCounters()
        for name, counter in engine._kernel_counters.counters().items():
            engine.obs.metrics.attach(f"kernels.{name}", counter)
    # Pruning counters (prune.*): same discipline, and additionally
    # gated on pruning being enabled at all.  The pair-balance invariant
    # (pairs_skipped + pairs_blocked + pairs_refined == pairs_total) is
    # asserted over these by the tests and the `prune` CLI experiment.
    engine._prune_counters = None
    if engine.config.trace and engine.config.prune != "off":
        engine._prune_counters = PruneCounters()
        for name, counter in engine._prune_counters.counters().items():
            engine.obs.metrics.attach(f"prune.{name}", counter)
    # Path-independent work counter: one increment per membership
    # predicate evaluated, identical under batch_kernels True/False.
    engine._membership_tests = engine.obs.counter(
        "engine.membership_tests",
        "membership predicates evaluated (path-independent)",
    )
    # Mutation accounting: every committed store mutation, plus the
    # per-entry balance of the scoped invalidation pass
    # (scoped_considered == evicted_scoped + retained_scoped, the
    # invariant the CI smoke job asserts).
    engine._mutations = engine.obs.counter(
        "engine.mutations", "committed dataset mutations"
    )
    engine._scoped_considered = engine.obs.counter(
        "cache.scoped_considered",
        "cache entries inspected by scoped invalidation",
    )
    engine._scoped_evicted = engine.obs.counter(
        "cache.evicted_scoped",
        "cache entries evicted because the mutation could reach them",
    )
    engine._scoped_retained = engine.obs.counter(
        "cache.retained_scoped",
        "cache entries kept warm across a mutation",
    )
    engine._scoped_repaired = engine.obs.counter(
        "cache.repaired_scoped",
        "retained entries whose content was rewritten in place",
    )
    engine._evicted_full = engine.obs.counter(
        "cache.evicted_full",
        "cache entries dropped by full invalidation",
    )
    # Preference-model traffic (prefs.*): how many surface requests ran
    # under the engine-default preference vs. a per-request override, and
    # how many result-cache consultations were bypassed because the
    # request's preference fingerprint differed from the default's.
    engine._prefs_default_requests = engine.obs.counter(
        "prefs.default_requests",
        "surface requests under the engine-default preference model",
    )
    engine._prefs_weighted_requests = engine.obs.counter(
        "prefs.weighted_requests",
        "surface requests carrying per-request preference weights",
    )
    engine._prefs_cache_bypass = engine.obs.counter(
        "prefs.cache_bypass",
        "result-cache consultations skipped on preference-fingerprint mismatch",
    )
    engine._epoch_gauge = engine.obs.gauge(
        "engine.dataset_epoch",
        "combined store epoch the caches are valid for",
    )
    engine._epoch_gauge.set(engine.dataset_epoch)
