"""Approximate safe regions from pre-computed sampled dynamic skylines
(Section VI.B.1).

Computing ``DSL(c)`` per reverse-skyline point dominates MWQ's runtime
(Fig. 15), so the paper pre-computes, offline and per customer, an
*approximated* DSL: the skyline points sorted along one dimension, keeping
every ``(|DSL|/k)``-th element plus always the first and the last.  The
anti-dominance region rebuilt from the sample uses one box per sampled
point — *without* the pairwise staircase merge — plus the two boundary
slabs, and therefore under-approximates the true region (the shaded miss
of Fig. 16).  An under-approximation keeps Lemma 2 intact: a safe region
built from it never loses a customer; it can only make MWQ's answer more
conservative (Tables V-VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.geometry.region import BoxRegion
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.kernels.parallel import parallel_map_chunks
from repro.prefs.model import support_dims
from repro.skyline.dynamic import dynamic_skyline_indices

from repro.core.safe_region import SafeRegion, _reach

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dsl_cache import DSLCache

__all__ = [
    "ApproximateDSLStore",
    "approximate_anti_dominance_region",
    "sample_dsl_thresholds",
]


def sample_dsl_thresholds(
    thresholds: np.ndarray, k: int, sort_dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``thresholds`` (the full DSL distance matrix) as the paper
    prescribes and return ``(sampled, per_dim_minima)``.

    Every ``ceil(m/k)``-th point of the sort order is kept, and the first
    and last points are always included so the boundary slabs stay exact.
    ``per_dim_minima`` are the exact column minima of the *full* matrix;
    in 2-D they coincide with the stored first/last points and they keep
    the slab construction safe in higher dimensions.
    """
    if k <= 0:
        raise InvalidParameterError("approximation parameter k must be positive")
    m = thresholds.shape[0]
    if m == 0:
        return thresholds, np.empty(0)
    order = np.argsort(thresholds[:, sort_dim], kind="stable")
    step = max(1, m // k)
    picks = set(range(0, m, step))
    picks.add(0)
    picks.add(m - 1)
    sampled = thresholds[order[sorted(picks)]]
    return sampled, thresholds.min(axis=0)


def approximate_anti_dominance_region(
    origin: np.ndarray,
    sampled_thresholds: np.ndarray,
    per_dim_minima: np.ndarray,
    bounds: Box,
    dims: np.ndarray | None = None,
) -> BoxRegion:
    """Anti-dominance region from a sampled DSL: one box per sampled
    point (no staircase merge) plus one slab per dimension at the exact
    column minimum.  Every box provably lies inside the true region.

    With ``dims`` (a preference support from :mod:`repro.prefs`) the
    per-point boxes span the full data extent on the dropped dimensions
    — dominance places no constraint there — and the boundary slabs are
    emitted only for support dimensions: a slab below the minimum of a
    dropped dimension's thresholds buys nothing and would overclaim.
    """
    dim = origin.size
    if sampled_thresholds.shape[0] == 0:
        return BoxRegion([Box(bounds.lo.copy(), bounds.hi.copy())], dim=dim)
    reach = _reach(origin, bounds)
    entries: list[np.ndarray] = []
    if dims is None:
        entries.extend(sampled_thresholds)
        for d in range(dim):
            slab = reach.copy()
            slab[d] = per_dim_minima[d]
            entries.append(slab)
    else:
        sel = np.asarray(dims, dtype=np.int64)
        for row in sampled_thresholds:
            extent = reach.copy()
            extent[sel] = row[sel]
            entries.append(extent)
        for d in sel:
            slab = reach.copy()
            slab[d] = per_dim_minima[d]
            entries.append(slab)
    boxes: list[Box] = []
    for extent in entries:
        box = Box.from_center(origin, extent).clip_to(bounds)
        if box is not None:
            boxes.append(box)
    return BoxRegion(boxes, dim=dim).simplify()


@dataclass
class _StoredDSL:
    sampled: np.ndarray
    minima: np.ndarray


class ApproximateDSLStore:
    """Per-customer cache of sampled dynamic skylines.

    The paper computes these offline for every customer; this store is
    lazy by default (entries materialise on first use) with
    :meth:`precompute` available to model the offline pass.
    """

    def __init__(
        self,
        index: SpatialIndex,
        customers: np.ndarray,
        k: int = 10,
        config: WhyNotConfig | None = None,
        self_exclude: bool = False,
        dsl_cache: "DSLCache | None" = None,
        weights: np.ndarray | None = None,
    ) -> None:
        if k <= 0:
            raise InvalidParameterError("approximation parameter k must be positive")
        self.index = index
        self.customers = np.asarray(customers, dtype=np.float64)
        self.k = k
        self.config = config or WhyNotConfig()
        self.self_exclude = self_exclude
        # Preference weights (repro.prefs): full-support weights leave the
        # dynamic skylines — and everything sampled from them — identical
        # to the unweighted store; partial support projects dominance onto
        # the support dimensions and must bypass the (full-dimensional)
        # shared DSL cache.
        self.weights = (
            None if weights is None else np.asarray(weights, dtype=np.float64)
        )
        self._dims = support_dims(self.weights, index.dim)
        if self._dims is not None:
            dsl_cache = None
        # Optional engine-level DSL cache: the full threshold matrix each
        # sample is drawn from is then computed at most once per customer
        # across the exact and approximate pipelines.
        self.dsl_cache = dsl_cache
        self._cache: dict[int, _StoredDSL] = {}

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Scoped maintenance (driven by the engine's mutation path)
    # ------------------------------------------------------------------
    def evict(self, positions: Sequence[int]) -> int:
        """Drop the sampled DSLs of ``positions``; returns the count."""
        evicted = 0
        for position in {int(p) for p in positions}:
            if self._cache.pop(position, None) is not None:
                evicted += 1
        return evicted

    def remap(self, mapping: np.ndarray) -> int:
        """Renumber entries after a compacting delete; returns how many
        were dropped because their customer row was deleted."""
        mapping = np.asarray(mapping, dtype=np.int64)
        dropped = 0
        cache: dict[int, _StoredDSL] = {}
        for position, stored in self._cache.items():
            new_position = int(mapping[position]) if position < mapping.size else -1
            if new_position >= 0:
                cache[new_position] = stored
            else:
                dropped += 1
        self._cache = cache
        return dropped

    def rebind(self, customers: np.ndarray) -> None:
        """Point the store at the post-mutation customer matrix."""
        self.customers = np.asarray(customers, dtype=np.float64)

    def precompute(
        self,
        positions: Sequence[int] | None = None,
        n_jobs: int | None = None,
    ) -> None:
        """Materialise entries for ``positions`` (all customers when None).

        This is the paper's offline pass, embarrassingly parallel over
        customers.  ``n_jobs`` (``config.n_jobs`` when None, ``-1`` for
        one thread per CPU) computes missing entries in parallel chunks;
        workers build the sampled DSLs side-effect free and the cache is
        populated afterwards, so concurrent readers never observe a
        half-written entry.
        """
        targets = [
            int(position)
            for position in (
                range(self.customers.shape[0]) if positions is None else positions
            )
            if int(position) not in self._cache
        ]
        if n_jobs is None:
            n_jobs = self.config.n_jobs
        computed = parallel_map_chunks(self._compute, targets, n_jobs=n_jobs)
        for position, stored in zip(targets, computed):
            self._cache[position] = stored

    def _compute(self, position: int) -> _StoredDSL:
        """Build the sampled DSL of customer ``position`` (no store I/O;
        the shared DSL cache, when present, supplies the full matrix)."""
        if self.dsl_cache is not None:
            thresholds = self.dsl_cache.thresholds(position)
        else:
            customer = self.customers[position]
            exclude = (position,) if self.self_exclude else ()
            dsl = dynamic_skyline_indices(
                self.index.points, customer, exclude, weights=self.weights
            )
            thresholds = (
                to_query_space(self.index.points[dsl], customer)
                if dsl.size
                else np.empty((0, self.index.dim))
            )
        sampled, minima = sample_dsl_thresholds(
            thresholds, self.k, self.config.sort_dim
        )
        return _StoredDSL(sampled=sampled, minima=minima)

    def entry(self, position: int) -> _StoredDSL:
        """The sampled DSL of customer ``position`` (computed on demand)."""
        cached = self._cache.get(position)
        if cached is not None:
            return cached
        stored = self._compute(position)
        self._cache[position] = stored
        return stored

    def region(self, position: int, bounds: Box) -> BoxRegion:
        """Approximate anti-dominance region of customer ``position``."""
        stored = self.entry(position)
        return approximate_anti_dominance_region(
            self.customers[position],
            stored.sampled,
            stored.minima,
            bounds,
            dims=self._dims,
        )

    def safe_region(
        self,
        query: Sequence[float],
        rsl_positions: np.ndarray,
        bounds: Box,
    ) -> SafeRegion:
        """Approximate ``SR(query)`` from the stored samples.

        Mirrors Algorithm 3 with the sampled regions; the result is a
        subset of the exact safe region and always contains the query.
        """
        q = as_point(query, dim=self.index.dim)
        region = BoxRegion(
            [Box(bounds.lo.copy(), bounds.hi.copy())], dim=self.index.dim
        )
        for position in np.asarray(rsl_positions, dtype=np.int64):
            region = region.intersect(self.region(int(position), bounds))
            if region.is_empty():
                break
        if not region.contains_point(q):
            region = region.union(BoxRegion([Box(q, q)], dim=self.index.dim))
        return SafeRegion(
            query=q,
            region=region,
            rsl_positions=np.asarray(rsl_positions, dtype=np.int64),
            approximate=True,
        )
