"""The paper's contribution: answering why-not questions in reverse
skyline queries.

* :mod:`repro.core.explain` — aspect 1, the ``Λ`` explanation;
* :mod:`repro.core.mwp` — Algorithm 1, modify the why-not point;
* :mod:`repro.core.mqp` — Algorithm 2, modify the query point;
* :mod:`repro.core.safe_region` — Algorithm 3, the exact safe region;
* :mod:`repro.core.mwq` — Algorithm 4, modify both under the safe region;
* :mod:`repro.core.approx` — the approximate safe region (Section VI.B);
* :mod:`repro.core.engine` — the :class:`WhyNotEngine` facade.
"""

from repro.core.answer import (
    Candidate,
    Explanation,
    ModificationResult,
    MWQCase,
    MWQResult,
)
from repro.core.approx import ApproximateDSLStore, approximate_anti_dominance_region
from repro.core.batch import WhyNotAnswer, answer_why_not, answer_why_not_batch
from repro.core.cost import MinMaxNormalizer
from repro.core.dsl_cache import DSLCache, DSLCacheStats
from repro.core.engine import WhyNotEngine
from repro.core.explain import explain_why_not
from repro.core.mqp import modify_query_point
from repro.core.mwp import modify_why_not_point
from repro.core.mwq import modify_query_and_why_not_point
from repro.core.relaxation import (
    RelaxationOption,
    leave_one_out_regions,
    relaxation_analysis,
)
from repro.core.safe_region import (
    SafeRegion,
    SafeRegionStats,
    anti_dominance_region,
    compute_safe_region,
    compute_safe_region_oracle,
)

__all__ = [
    "Candidate",
    "Explanation",
    "ModificationResult",
    "MWQCase",
    "MWQResult",
    "MinMaxNormalizer",
    "WhyNotEngine",
    "explain_why_not",
    "modify_why_not_point",
    "modify_query_point",
    "modify_query_and_why_not_point",
    "SafeRegion",
    "SafeRegionStats",
    "anti_dominance_region",
    "compute_safe_region",
    "compute_safe_region_oracle",
    "DSLCache",
    "DSLCacheStats",
    "ApproximateDSLStore",
    "approximate_anti_dominance_region",
    "WhyNotAnswer",
    "answer_why_not",
    "answer_why_not_batch",
    "RelaxationOption",
    "leave_one_out_regions",
    "relaxation_analysis",
]
