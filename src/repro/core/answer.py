"""Result types returned by the why-not algorithms.

Every algorithm returns structured, self-describing objects rather than raw
arrays: a ``Candidate`` is one proposed relocation with its cost and
verification status, a ``ModificationResult`` bundles the candidates of one
method, and ``MWQResult`` adds the safe-region case analysis of Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "Candidate",
    "Explanation",
    "ModificationResult",
    "MWQCase",
    "MWQResult",
]


@dataclass(frozen=True)
class Candidate:
    """One proposed new location for a point.

    Attributes
    ----------
    point:
        Proposed coordinates (original data space).
    cost:
        Normalised weighted-L1 movement cost (Eqn. 11); ``nan`` when no
        normaliser was supplied.
    verified:
        ``True`` when the candidate was checked against the index and
        achieves its goal under the configured dominance policy, ``False``
        when checked and failing, ``None`` when verification was skipped.
    """

    point: np.ndarray
    cost: float = float("nan")
    verified: bool | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.point, dtype=np.float64)
        arr.flags.writeable = False
        object.__setattr__(self, "point", arr)

    def with_cost(self, cost: float) -> "Candidate":
        return Candidate(self.point, cost, self.verified)

    def with_verified(self, verified: bool) -> "Candidate":
        return Candidate(self.point, self.cost, verified)

    def __repr__(self) -> str:
        coords = ", ".join(f"{v:g}" for v in self.point)
        cost = "n/a" if np.isnan(self.cost) else f"{self.cost:.6f}"
        return f"Candidate(({coords}), cost={cost}, verified={self.verified})"


@dataclass(frozen=True)
class Explanation:
    """Aspect-1 answer: *why* is the point not in the reverse skyline.

    ``culprit_positions`` are index positions of the ``Λ`` set — the
    products the customer prefers over the query — and ``culprits`` their
    coordinates.  An empty ``Λ`` means the point *is* in the reverse
    skyline and there is nothing to explain.
    """

    why_not: np.ndarray
    query: np.ndarray
    culprit_positions: np.ndarray
    culprits: np.ndarray

    @property
    def is_member(self) -> bool:
        return self.culprit_positions.size == 0

    def describe(self) -> str:
        """Human-readable rendering in the paper's wording."""
        if self.is_member:
            return (
                "The point is already in the reverse skyline of the query: "
                "no competing product lies inside its window."
            )
        rows = "; ".join(
            "(" + ", ".join(f"{v:g}" for v in row) + ")" for row in self.culprits
        )
        return (
            f"The customer finds {self.culprit_positions.size} product(s) "
            f"more interesting than the query: {rows}. Deleting them would "
            "admit the customer into the reverse skyline (Lemma 1)."
        )


@dataclass
class ModificationResult:
    """Candidates proposed by one modification method (MWP or MQP)."""

    method: str
    why_not: np.ndarray
    query: np.ndarray
    candidates: list[Candidate] = field(default_factory=list)
    lambda_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    frontier_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def is_noop(self) -> bool:
        """True when the why-not point was already a member (empty ``Λ``)."""
        return self.lambda_positions.size == 0

    def best(self) -> Candidate | None:
        """Cheapest verified candidate (or cheapest overall when costs or
        verification are unavailable)."""
        pool = [c for c in self.candidates if c.verified is not False]
        if not pool:
            pool = list(self.candidates)
        if not pool:
            return None
        if all(np.isnan(c.cost) for c in pool):
            return pool[0]
        return min(pool, key=lambda c: (np.isnan(c.cost), c.cost))

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)


class MWQCase(enum.Enum):
    """The two cases of Table I."""

    OVERLAP = "C1"          # anti-dominance region of c_t intersects SR(q)
    DISJOINT = "C2"         # it does not: both points must move
    ALREADY_MEMBER = "member"  # nothing to do


@dataclass
class MWQResult:
    """Output of Algorithm 4 (modify query and why-not point).

    In case C1 only the query point moves (``query_candidates``; why-not
    candidates empty; cost 0 by Eqn. 10).  In case C2 the query point moves
    to a safe-region corner and the why-not point moves per Algorithm 1
    (``pairs`` holds matched ``(q*, c_t*)`` pairs with their Eqn.-11 score).
    """

    case: MWQCase
    why_not: np.ndarray
    query: np.ndarray
    query_candidates: list[Candidate] = field(default_factory=list)
    pairs: list[tuple[Candidate, Candidate]] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """The Eqn.-11 score of the best answer (0 in case C1)."""
        if self.case in (MWQCase.OVERLAP, MWQCase.ALREADY_MEMBER):
            return 0.0
        best = self.best_pair()
        return best[1].cost if best is not None else float("nan")

    def best_query_candidate(self) -> Candidate | None:
        if not self.query_candidates:
            return None
        return min(
            self.query_candidates,
            key=lambda c: (np.isnan(c.cost), c.cost),
        )

    def best_pair(self) -> tuple[Candidate, Candidate] | None:
        pool = [p for p in self.pairs if p[1].verified is not False]
        if not pool:
            pool = list(self.pairs)
        if not pool:
            return None
        return min(pool, key=lambda p: (np.isnan(p[1].cost), p[1].cost))
