"""Composite answers and batch why-not answering.

Two conveniences the paper motivates but leaves to the reader:

* :func:`answer_why_not` — one call returning the explanation and all
  three modification strategies with a recommendation, the shape a
  downstream application actually wants;
* :func:`answer_why_not_batch` — many why-not questions against the same
  query.  Section VI notes that the safe region "does not need to be
  recomputed to answer another why-not question for the same query
  point"; the batch path exploits exactly that reuse (the engine caches
  ``SR(q)`` per query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.answer import (
    Candidate,
    Explanation,
    ModificationResult,
    MWQCase,
    MWQResult,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WhyNotEngine

__all__ = ["WhyNotAnswer", "answer_why_not", "answer_why_not_batch"]


@dataclass
class WhyNotAnswer:
    """Everything the system knows about one why-not question."""

    why_not: "int | np.ndarray"
    query: np.ndarray
    explanation: Explanation
    mwp: ModificationResult
    mqp: ModificationResult
    mwq: MWQResult

    @property
    def already_member(self) -> bool:
        return self.explanation.is_member

    def recommendation(self) -> str:
        """A one-line verdict in the paper's terms."""
        if self.already_member:
            return "already a reverse-skyline member; nothing to do"
        if self.mwq.case is MWQCase.OVERLAP:
            best = self.mwq.best_query_candidate()
            coords = ", ".join(f"{v:g}" for v in best.point)
            return (
                f"move the query to ({coords}) — zero cost, keeps every "
                "existing reverse-skyline point (case C1)"
            )
        pair = self.mwq.best_pair()
        if pair is None:
            best = self.mwp.best()
            if best is None:
                return (
                    "no feasible modification found: neither a combined "
                    "move nor a why-not relocation admits the point"
                )
            coords = ", ".join(f"{v:g}" for v in best.point)
            return f"move the why-not point to ({coords}) (MWP fallback)"
        q_cand, c_cand = pair
        q_coords = ", ".join(f"{v:g}" for v in q_cand.point)
        c_coords = ", ".join(f"{v:g}" for v in c_cand.point)
        return (
            f"move the query to ({q_coords}) inside its safe region and "
            f"the why-not point to ({c_coords}) at cost {c_cand.cost:.6f} "
            "(case C2)"
        )

    def best_cost(self) -> float:
        """The Eqn.-11 cost of the recommended answer."""
        if self.already_member:
            return 0.0
        return self.mwq.cost


def answer_why_not(
    engine: WhyNotEngine,
    why_not: "int | Sequence[float]",
    query: Sequence[float],
    approximate: bool = False,
    k: int = 10,
    weights: "Sequence[float] | None" = None,
) -> WhyNotAnswer:
    """Run the full pipeline for one why-not question."""
    q = np.asarray(query, dtype=np.float64)
    with engine.obs.span("pipeline.answer_why_not"):
        return WhyNotAnswer(
            why_not=why_not,
            query=q,
            explanation=engine.explain(why_not, q, weights=weights),
            mwp=engine.modify_why_not_point(why_not, q, weights=weights),
            mqp=engine.modify_query_point(why_not, q, weights=weights),
            mwq=engine.modify_both(
                why_not, q, approximate=approximate, k=k, weights=weights
            ),
        )


def _member_answer(
    engine: WhyNotEngine, why_not: "int | Sequence[float]", q: np.ndarray
) -> WhyNotAnswer:
    """The answer for a customer already in ``RSL(q)``, built without
    re-running the per-question window queries.

    Replicates exactly what the full pipeline returns on an empty ``Λ``:
    a member explanation, no-op MWP/MQP results whose single candidate is
    the unmoved point at zero cost, and the ``ALREADY_MEMBER`` MWQ case.
    """
    point, _ = engine._resolve_customer(why_not)
    empty = np.empty(0, dtype=np.int64)
    return WhyNotAnswer(
        why_not=why_not,
        query=q,
        explanation=Explanation(
            why_not=point,
            query=q,
            culprit_positions=empty,
            culprits=np.empty((0, engine.dim)),
        ),
        mwp=ModificationResult(
            method="MWP",
            why_not=point,
            query=q,
            candidates=[Candidate(point, cost=0.0, verified=True)],
            lambda_positions=empty,
            frontier_positions=empty,
        ),
        mqp=ModificationResult(
            method="MQP",
            why_not=point,
            query=q,
            candidates=[Candidate(q, cost=0.0, verified=True)],
            lambda_positions=empty,
            frontier_positions=empty,
        ),
        mwq=MWQResult(
            case=MWQCase.ALREADY_MEMBER,
            why_not=point,
            query=q,
            query_candidates=[Candidate(q, cost=0.0, verified=True)],
        ),
    )


def answer_why_not_batch(
    engine: WhyNotEngine,
    why_nots: Sequence["int | Sequence[float]"],
    query: Sequence[float],
    approximate: bool = False,
    k: int = 10,
    weights: "Sequence[float] | None" = None,
) -> list[WhyNotAnswer]:
    """Answer several why-not questions for the same query.

    The first answer pays for the safe-region construction; the engine's
    per-query cache makes every subsequent answer reuse it, exactly the
    amortisation Section VI describes.  The planner chooses between the
    kernel-prefiltered strategy (membership of *all* questions resolved
    in one blocked pass up front, so customers already in ``RSL(q)``
    skip their four per-question window queries entirely) and the
    sequential per-question pipeline; answers are identical either way.
    """
    q = np.asarray(query, dtype=np.float64)
    why_nots = list(why_nots)
    with engine.obs.span(
        "pipeline.answer_why_not_batch",
        questions=len(why_nots),
        dataset_epoch=engine.dataset_epoch,
    ):
        return engine._execute(
            *engine._request(
                "batch",
                why_nots,
                q,
                approximate=approximate,
                k=k,
                weights=weights,
            )
        )
