"""Composite answers and batch why-not answering.

Two conveniences the paper motivates but leaves to the reader:

* :func:`answer_why_not` — one call returning the explanation and all
  three modification strategies with a recommendation, the shape a
  downstream application actually wants;
* :func:`answer_why_not_batch` — many why-not questions against the same
  query.  Section VI notes that the safe region "does not need to be
  recomputed to answer another why-not question for the same query
  point"; the batch path exploits exactly that reuse (the engine caches
  ``SR(q)`` per query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.answer import (
    Candidate,
    Explanation,
    ModificationResult,
    MWQCase,
    MWQResult,
)
from repro.core.engine import WhyNotEngine

__all__ = ["WhyNotAnswer", "answer_why_not", "answer_why_not_batch"]


@dataclass
class WhyNotAnswer:
    """Everything the system knows about one why-not question."""

    why_not: "int | np.ndarray"
    query: np.ndarray
    explanation: Explanation
    mwp: ModificationResult
    mqp: ModificationResult
    mwq: MWQResult

    @property
    def already_member(self) -> bool:
        return self.explanation.is_member

    def recommendation(self) -> str:
        """A one-line verdict in the paper's terms."""
        if self.already_member:
            return "already a reverse-skyline member; nothing to do"
        if self.mwq.case is MWQCase.OVERLAP:
            best = self.mwq.best_query_candidate()
            coords = ", ".join(f"{v:g}" for v in best.point)
            return (
                f"move the query to ({coords}) — zero cost, keeps every "
                "existing reverse-skyline point (case C1)"
            )
        pair = self.mwq.best_pair()
        if pair is None:
            best = self.mwp.best()
            coords = ", ".join(f"{v:g}" for v in best.point)
            return f"move the why-not point to ({coords}) (MWP fallback)"
        q_cand, c_cand = pair
        q_coords = ", ".join(f"{v:g}" for v in q_cand.point)
        c_coords = ", ".join(f"{v:g}" for v in c_cand.point)
        return (
            f"move the query to ({q_coords}) inside its safe region and "
            f"the why-not point to ({c_coords}) at cost {c_cand.cost:.6f} "
            "(case C2)"
        )

    def best_cost(self) -> float:
        """The Eqn.-11 cost of the recommended answer."""
        if self.already_member:
            return 0.0
        return self.mwq.cost


def answer_why_not(
    engine: WhyNotEngine,
    why_not: "int | Sequence[float]",
    query: Sequence[float],
    approximate: bool = False,
    k: int = 10,
) -> WhyNotAnswer:
    """Run the full pipeline for one why-not question."""
    q = np.asarray(query, dtype=np.float64)
    return WhyNotAnswer(
        why_not=why_not,
        query=q,
        explanation=engine.explain(why_not, q),
        mwp=engine.modify_why_not_point(why_not, q),
        mqp=engine.modify_query_point(why_not, q),
        mwq=engine.modify_both(why_not, q, approximate=approximate, k=k),
    )


def answer_why_not_batch(
    engine: WhyNotEngine,
    why_nots: Sequence["int | Sequence[float]"],
    query: Sequence[float],
    approximate: bool = False,
    k: int = 10,
) -> list[WhyNotAnswer]:
    """Answer several why-not questions for the same query.

    The first answer pays for the safe-region construction; the engine's
    per-query cache makes every subsequent answer reuse it, exactly the
    amortisation Section VI describes.
    """
    q = np.asarray(query, dtype=np.float64)
    engine.safe_region(q, approximate=approximate, k=k)  # Warm the cache once.
    return [
        answer_why_not(engine, why_not, q, approximate=approximate, k=k)
        for why_not in why_nots
    ]
