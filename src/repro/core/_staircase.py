"""The sorted-merge ("staircase") candidate construction shared by
Algorithms 1 and 2.

Both algorithms reduce to the same scheme once movement is expressed in
per-dimension *distance space*:

* MWP (Algorithm 1): the moved point ``c_t*`` must satisfy, for every
  frontier product ``e``, ``∃ dim d: |c_t* - q|_d <= |q - e|_d / 2`` —
  i.e. the distance vector ``v = |c_t* - q|`` must stay below the midpoint
  vector ``V_e = |q - e| / 2`` in at least one dimension.  Minimising the
  movement ``|c_t - c_t*|`` means maximising ``v`` component-wise.

* MQP (Algorithm 2): the moved query ``q*`` must satisfy, for every
  frontier ``f`` of ``Λ ∩ DSL(c_t)``, ``∃ d: |c_t - q*|_d <= |c_t - f|_d``
  — the distance vector ``w = |c_t - q*|`` must stay below ``T_f =
  |c_t - f|`` somewhere.  Minimising ``|q - q*|`` again means maximising
  ``w`` component-wise (``w`` is capped by ``|c_t - q|``).

Because the frontier vectors form an antichain, the maximal feasible
vectors in 2-D are exactly: the per-dimension maxima of adjacent pairs in
the sort order (the paper's Eqns. 2/5 read in distance space), plus the
two clipped end entries (Eqns. 3/6).  For ``d > 2`` the same construction
yields valid but possibly non-exhaustive candidates; the always-feasible
component-wise *minimum* over all frontiers is appended as a fallback so a
verified answer always exists.
"""

from __future__ import annotations

import numpy as np

__all__ = ["staircase_distance_candidates"]


def staircase_distance_candidates(
    frontier_vectors: np.ndarray,
    cap: np.ndarray,
    sort_dim: int,
    dims: np.ndarray | None = None,
) -> np.ndarray:
    """Maximal feasible distance vectors for the staircase covering problem.

    Parameters
    ----------
    frontier_vectors:
        ``(m, d)`` matrix of per-frontier threshold vectors (``V`` for MWP,
        ``T`` for MQP); assumed pairwise non-dominated (an antichain).
    cap:
        Component-wise upper bound on any feasible vector (``|q - c_t|``:
        neither point may move past the other).
    sort_dim:
        The paper's arbitrary sort dimension *i*.
    dims:
        Optional preference-support column positions (:mod:`repro.prefs`).
        The covering problem is solved in the support subspace; in the
        dropped dimensions every candidate keeps the cap value — the
        point does not move there (movement off the support buys nothing
        and costs distance).  ``sort_dim`` is remapped to its support
        position, or to the first support dimension when it was dropped.

    Returns
    -------
    ``(k, d)`` matrix of candidate distance vectors, deduplicated.  Each
    row ``v`` satisfies: for every frontier row ``V_l`` there is a
    dimension ``d`` with ``v[d] <= V_l[d]`` (verified exactly for 2-D; for
    higher dimensions the appended fallback row guarantees at least one
    feasible candidate).
    """
    vectors = np.asarray(frontier_vectors, dtype=np.float64)
    cap = np.asarray(cap, dtype=np.float64)
    if dims is not None:
        sel = np.asarray(dims, dtype=np.int64)
        where = np.flatnonzero(sel == sort_dim)
        sub_sort = int(where[0]) if where.size else 0
        sub = staircase_distance_candidates(
            vectors[:, sel], cap[sel], sub_sort
        )
        out = np.broadcast_to(cap, (sub.shape[0], cap.size)).copy()
        out[:, sel] = sub
        return np.unique(out, axis=0)
    m, dim = vectors.shape
    if not 0 <= sort_dim < dim:
        raise ValueError(f"sort_dim {sort_dim} out of range for dim {dim}")
    capped = np.minimum(vectors, cap)

    # Sort by the threshold in the sort dimension, descending: the first
    # entry is the frontier most permissive along dim i (the paper's
    # coordinate-ascending order in its canonical orientation).
    order = np.argsort(-capped[:, sort_dim], kind="stable")
    sorted_vecs = capped[order]

    candidates: list[np.ndarray] = []

    # First entry, clipped along the sort dimension (Eqn. 3 first / Eqn. 6
    # z_1): the sort-dim distance is released to the cap (the point keeps
    # its original coordinate there) and coverage of *all* frontiers comes
    # from the remaining dimensions of the first entry, which carries the
    # smallest thresholds there.
    first = sorted_vecs[0].copy()
    first[sort_dim] = cap[sort_dim]
    candidates.append(first)

    # Adjacent pair merges (Eqns. 2/5): component-wise maximum in distance
    # space; the pair's two members are covered at their tie dimensions and
    # the sort order covers everyone else in 2-D.
    for left, right in zip(sorted_vecs[:-1], sorted_vecs[1:]):
        candidates.append(np.maximum(left, right))

    # Last entry, clipped along every non-sort dimension (Eqn. 3 last /
    # Eqn. 6 z_|M|): coverage of all frontiers comes from the sort
    # dimension, where the last entry carries the smallest threshold.
    last = sorted_vecs[-1].copy()
    keep = last[sort_dim]
    last[:] = cap
    last[sort_dim] = keep
    candidates.append(last)

    if dim > 2:
        # Unconditionally feasible fallback: below every frontier in every
        # dimension.
        candidates.append(capped.min(axis=0))

    stacked = np.minimum(np.vstack(candidates), cap)
    return np.unique(stacked, axis=0)
