"""Algorithm 3 — the exact safe region of the query point.

``SR(q)`` is the intersection of the dynamic anti-dominance regions of all
existing reverse-skyline points (Lemma 2): anywhere inside it, ``q`` keeps
every current customer.  Each anti-dominance region is represented as
``|DSL(c)| + 1`` axis-aligned rectangles centred at the customer (Fig. 10):
the staircase of the customer's dynamic skyline read in distance space.

Boundary semantics: boxes are closed, which is exact under the STRICT
(open-window) exclusion policy the paper's constructions follow — a query
placed exactly on a staircase boundary is *not* excluded from the dynamic
skyline (DESIGN.md §2).

Dimensionality: the staircase decomposition is exact for 2-D data (the
paper's setting).  For ``d > 2`` this module falls back to a conservative
under-approximation (per-skyline-point boxes plus one slab per dimension),
every box of which provably lies inside the true region, so Lemma 2's
guarantee — no existing customer lost — is preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.exceptions import InvalidParameterError
from repro.geometry import region_array as _ra
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.geometry.region import BoxRegion
from repro.geometry.region_oracle import OracleBoxRegion
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.kernels.parallel import parallel_map_chunks, resolve_n_jobs
from repro.obs.stats import CounterBackedStats
from repro.prefs.model import support_dims
from repro.skyline.dynamic import dynamic_skyline_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dsl_cache imports us)
    from repro.core.dsl_cache import DSLCache

__all__ = [
    "SafeRegion",
    "SafeRegionStats",
    "anti_dominance_region",
    "staircase_boxes",
    "compute_safe_region",
    "compute_safe_region_oracle",
]


def _reach(origin: np.ndarray, bounds: Box) -> np.ndarray:
    """Per-dimension distance from ``origin`` to the farther universe edge
    (the paper's 'maximum value appearing in the dataset' shift, expressed
    as a distance so the region covers the whole slab)."""
    return np.maximum(origin - bounds.lo, bounds.hi - origin)


def staircase_boxes(
    origin: np.ndarray,
    thresholds: np.ndarray,
    bounds: Box,
    sort_dim: int,
    dims: np.ndarray | None = None,
) -> list[Box]:
    """Rectangles of an anti-dominance region from DSL distance vectors.

    ``thresholds`` is the ``(m, d)`` matrix ``|origin - s|`` over the
    dynamic skyline points ``s``; the result has ``m + 1`` boxes for 2-D
    (first-shifted, pairwise maxima, last-shifted — Fig. 10) and
    ``m + d`` boxes for higher dimensions (per-point boxes plus one slab
    per dimension, the conservative variant).

    ``dims`` restricts dominance to the preference support
    (:mod:`repro.prefs`): the staircase is built over the support columns
    (exact when exactly two survive) and every box spans the full data
    extent in the dropped dimensions, where dominance places no
    constraint.
    """
    m, dim = thresholds.shape
    if m == 0:
        clipped = Box(bounds.lo.copy(), bounds.hi.copy())
        return [clipped]
    full_reach = _reach(origin, bounds)
    if dims is None:
        sub_t, reach, sd, width = thresholds, full_reach, sort_dim, dim
    else:
        sel = np.asarray(dims, dtype=np.int64)
        sub_t = thresholds[:, sel]
        reach = full_reach[sel]
        where = np.flatnonzero(sel == sort_dim)
        sd = int(where[0]) if where.size else 0
        width = int(sel.size)
    entries: list[np.ndarray] = []
    if width == 2:
        order = np.argsort(sub_t[:, sd], kind="stable")
        sorted_t = sub_t[order]
        first = sorted_t[0].copy()
        for d in range(width):
            if d != sd:
                first[d] = reach[d]
        entries.append(first)
        for left, right in zip(sorted_t[:-1], sorted_t[1:]):
            entries.append(np.maximum(left, right))
        last = sorted_t[-1].copy()
        last[sd] = reach[sd]
        entries.append(last)
    else:
        # Conservative width > 2 construction: each DSL point's own box is
        # inside the region, and so is the slab below the per-dimension
        # minimum threshold.  (For width == 1 the slab alone is already
        # exact: the region is the interval below the smallest threshold.)
        entries.extend(sub_t)
        minima = sub_t.min(axis=0)
        for d in range(width):
            slab = reach.copy()
            slab[d] = minima[d]
            entries.append(slab)
    boxes: list[Box] = []
    for entry in entries:
        if dims is None:
            extent = entry
        else:
            extent = full_reach.copy()
            extent[np.asarray(dims, dtype=np.int64)] = entry
        box = Box.from_center(origin, extent).clip_to(bounds)
        if box is not None:
            boxes.append(box)
    return boxes


def anti_dominance_region(
    index: SpatialIndex,
    origin: Sequence[float],
    bounds: Box,
    sort_dim: int = 0,
    exclude: Sequence[int] = (),
    dsl_positions: np.ndarray | None = None,
    weights: "np.ndarray | None" = None,
) -> BoxRegion:
    """The dynamic anti-dominance region of ``origin`` as a box union.

    Computes ``DSL(origin)`` over the indexed products (unless
    ``dsl_positions`` is supplied) and decomposes the complement of its
    dominance region into rectangles.  With ``weights`` both the dynamic
    skyline and the staircase run in the preference-support subspace.
    """
    o = as_point(origin, dim=index.dim)
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    dims = support_dims(w, index.dim)
    if dsl_positions is None:
        dsl_positions = dynamic_skyline_indices(
            index.points, o, exclude, weights=w
        )
    thresholds = (
        to_query_space(index.points[dsl_positions], o)
        if dsl_positions.size
        else np.empty((0, index.dim))
    )
    boxes = staircase_boxes(o, thresholds, bounds, sort_dim, dims=dims)
    return BoxRegion(boxes, dim=index.dim).simplify()


class SafeRegionStats(CounterBackedStats):
    """Construction counters of one ``compute_safe_region`` call.

    Benchmarks (``benchmarks/bench_safe_region.py``) and EXPERIMENTS.md
    report these; they also make cache effectiveness observable in
    production (``WhyNotEngine.last_safe_region_stats``).  Like the
    other stats views it is counter-backed (``snapshot() -> dict`` /
    ``reset()``; see :mod:`repro.obs.stats`), so an engine can attach
    the live counters under ``safe_region.*`` registry names.

    Attributes
    ----------
    members:
        ``|RSL(q)|`` — number of anti-dominance regions intersected.
    intersections:
        Pairwise region intersections actually performed (< ``members``
        when the empty-region early exit fires).
    boxes_before_simplify / boxes_after_simplify:
        Total raw pairwise pieces produced, and survivors after
        containment pruning, summed over all intersections — the
        combinatorial pressure Algorithm 3's simplification absorbs.
    peak_boxes:
        Largest simplified intermediate representation.
    budget_truncations:
        Times the ``sr_box_budget`` under-approximation dropped boxes
        (0 on the exact path).
    early_exit:
        Whether the running intersection collapsed to empty before all
        members were processed.
    cache_hits / cache_misses:
        DSL-cache lookups served / missed during this construction
        (both 0 when no cache was supplied).
    member_seconds:
        Wall time spent building member anti-dominance regions.
    build_seconds:
        Total wall time of the construction.
    """

    _INT_FIELDS = (
        "members",
        "intersections",
        "boxes_before_simplify",
        "boxes_after_simplify",
        "peak_boxes",
        "budget_truncations",
        "cache_hits",
        "cache_misses",
    )
    _FLOAT_FIELDS = ("member_seconds", "build_seconds")
    _BOOL_FIELDS = ("early_exit",)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class SafeRegion:
    """The safe region of a query point with its provenance.

    Attributes
    ----------
    query:
        The query point ``q``.
    region:
        Union-of-boxes representation of ``SR(q)``.
    rsl_positions:
        Positions (into the customer matrix) of ``RSL(q)`` used to build it.
    approximate:
        True when built from sampled dynamic skylines (Section VI.B.1);
        the approximate region is a subset of the exact one.
    stats:
        Construction counters (``None`` for regions not built by
        :func:`compute_safe_region`).
    """

    query: np.ndarray
    region: BoxRegion
    rsl_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    approximate: bool = False
    stats: SafeRegionStats | None = None

    def area(self) -> float:
        """Lebesgue measure of the region (Figure 14's y-axis)."""
        return self.region.measure()

    def contains(self, point: Sequence[float]) -> bool:
        return self.region.contains_point(point)

    def is_degenerate(self) -> bool:
        """True when the region has collapsed to measure zero (typically
        the query point itself) and MWQ degenerates to MWP."""
        return self.area() == 0.0

    def remap_positions(self, mapping: np.ndarray) -> bool:
        """Renumber :attr:`rsl_positions` after a compacting delete.

        Returns False — leaving the object untouched — when a member row
        was deleted: the region was built from that member's
        anti-dominance region, so it is stale and must be rebuilt, not
        renumbered.  The geometry itself never changes here (it depends
        on customer coordinates and the product set, not on row ids).
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        remapped = mapping[self.rsl_positions]
        if np.any(remapped < 0):
            return False
        self.rsl_positions = remapped
        return True

    def restricted(self, limits: Box) -> "SafeRegion":
        """The safe region truncated to feature ``limits`` (Section V.B).

        Companies often may only vary certain feature ranges of a
        product; clipping the safe region to those limits keeps every
        guarantee (a subset of a safe region is safe).  Note the clipped
        region may no longer contain the original query point if the
        limits exclude it.
        """
        return SafeRegion(
            query=self.query,
            region=self.region.intersect_box(limits),
            rsl_positions=self.rsl_positions,
            approximate=self.approximate,
        )

    def __repr__(self) -> str:
        return (
            f"SafeRegion(|RSL|={self.rsl_positions.size}, "
            f"boxes={len(self.region)}, area={self.area():g}, "
            f"approximate={self.approximate})"
        )


def _member_chunks(positions: np.ndarray, chunk_size: int) -> list[list[int]]:
    """Contiguous position chunks; the partition depends only on
    ``chunk_size`` (never on ``n_jobs``) so parallel and sequential runs
    fold members in the same order and produce identical regions."""
    items = [int(p) for p in positions]
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def compute_safe_region(
    index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    rsl_positions: np.ndarray,
    bounds: Box,
    config: WhyNotConfig | None = None,
    self_exclude: bool = False,
    n_jobs: int | None = None,
    dsl_cache: "DSLCache | None" = None,
    stats: SafeRegionStats | None = None,
    weights: "np.ndarray | None" = None,
) -> SafeRegion:
    """Algorithm 3: intersect the anti-dominance regions of all members.

    The assembly runs on the array engine: members are processed in
    contiguous chunks of ``config.sr_chunk_size``; each chunk's regions
    are built (in parallel when ``n_jobs > 1``, from the DSL cache when
    one is supplied), sorted size-ascending so small regions shrink the
    running intersection before large ones multiply against it, and
    folded in with one broadcasted pairwise clip + containment pruning
    per member.  The empty-region early exit fires between members even
    on the parallel path — only the current chunk is ever materialised.

    Parameters
    ----------
    index:
        Spatial index over the products ``P``.
    customers:
        ``(n, d)`` customer matrix ``C``.
    query:
        The query point ``q``.
    rsl_positions:
        Positions of ``RSL(q)`` within ``customers``.
    bounds:
        The data universe (regions are clipped to it).
    self_exclude:
        Monochromatic convention: customer ``j`` is excluded from its own
        dynamic-skyline computation.
    n_jobs:
        Worker threads for the per-member anti-dominance-region
        construction (``config.n_jobs`` when None).  The chunk partition
        and fold order are independent of the worker count, so the result
        is identical to the sequential run.
    dsl_cache:
        Optional :class:`repro.core.dsl_cache.DSLCache`; member threshold
        matrices and staircase regions are read through it instead of
        being recomputed.  Its ``self_exclude``/``sort_dim`` conventions
        must match this call's (the engine guarantees that).
    stats:
        Optional :class:`SafeRegionStats` to fill in place; a fresh one
        is created (and attached to the result) otherwise.
    weights:
        Optional preference weights (:mod:`repro.prefs`).  Full-support
        weights leave dominance — and therefore the region — unchanged,
        so the DSL cache stays valid; with partial support the member
        skylines and staircases run in the support subspace and the
        (full-dimensional) DSL cache is bypassed.

    Notes
    -----
    With no reverse-skyline point the safe region is the whole universe
    (there is nobody to lose).  The query point itself always belongs to
    its safe region; if floating-point rounding of the box corners ever
    drops it, the degenerate box ``{q}`` is added back explicitly.  With
    ``config.sr_box_budget > 0`` the intermediate representation is
    truncated to the largest-volume boxes — a safe under-approximation
    (Lemma 2 holds for any subset).
    """
    config = config or WhyNotConfig()
    if n_jobs is None:
        n_jobs = config.n_jobs
    stats = stats if stats is not None else SafeRegionStats()
    t_start = time.perf_counter()
    q = as_point(query, dim=index.dim)
    if not bounds.contains_point(q):
        raise InvalidParameterError("query point lies outside the given bounds")
    positions = np.asarray(rsl_positions, dtype=np.int64)
    custs = np.asarray(customers, dtype=np.float64)
    stats.members = int(positions.size)
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    if w is not None and support_dims(w, index.dim) is not None:
        # Partial support changes the member skylines; the cache holds
        # full-dimensional thresholds and must not serve this build.
        dsl_cache = None
    cache_before = (
        dsl_cache.stats.hit_miss() if dsl_cache is not None else (0, 0)
    )

    def member_region(position: int) -> BoxRegion:
        if dsl_cache is not None:
            return dsl_cache.region(position, bounds)
        return anti_dominance_region(
            index,
            custs[position],
            bounds,
            sort_dim=config.sort_dim,
            exclude=(int(position),) if self_exclude else (),
            weights=w,
        )

    workers = resolve_n_jobs(n_jobs)
    budget = config.sr_box_budget
    run_lo, run_hi = _ra.boxes_to_arrays(
        [Box(bounds.lo.copy(), bounds.hi.copy())], index.dim
    )
    # The fold accumulates into locals and flushes to ``stats`` once
    # after the loop: the counter-backed properties cost a few hundred
    # nanoseconds per access, which adds up inside the per-member loop
    # (the warm-cache construction is sub-millisecond in total).
    member_secs = 0.0
    intersections = before_simplify = after_simplify = truncations = 0
    peak_boxes = 1
    early_exit = False
    for chunk in _member_chunks(positions, config.sr_chunk_size):
        t_members = time.perf_counter()
        if workers > 1 and len(chunk) > 1:
            regions = parallel_map_chunks(member_region, chunk, n_jobs=n_jobs)
        else:
            regions = [member_region(position) for position in chunk]
        member_secs += time.perf_counter() - t_members
        # Size-ascending fold: cheap members first keeps the pairwise
        # product small; ties keep position order for determinism.
        for i in sorted(range(len(regions)), key=lambda i: (len(regions[i]), i)):
            member = regions[i]
            piece_lo, piece_hi = _ra.pairwise_intersect(
                run_lo, run_hi, member.lo, member.hi
            )
            intersections += 1
            before_simplify += piece_lo.shape[0]
            run_lo, run_hi = _ra.simplify_arrays(piece_lo, piece_hi)
            after_simplify += run_lo.shape[0]
            if budget and run_lo.shape[0] > budget:
                # simplify_arrays returns volume-descending order: keeping
                # the head keeps the largest boxes (under-approximation).
                run_lo, run_hi = run_lo[:budget], run_hi[:budget]
                truncations += 1
            peak_boxes = max(peak_boxes, run_lo.shape[0])
            if run_lo.shape[0] == 0:
                early_exit = True
                break
        if run_lo.shape[0] == 0:
            break
    stats.member_seconds += member_secs
    stats.intersections += intersections
    stats.boxes_before_simplify += before_simplify
    stats.boxes_after_simplify += after_simplify
    stats.budget_truncations += truncations
    stats.peak_boxes = max(stats.peak_boxes, peak_boxes)
    if early_exit:
        stats.early_exit = True
    region = BoxRegion.from_arrays(run_lo, run_hi, dim=index.dim)
    if not region.contains_point(q):
        region = region.union(BoxRegion([Box(q, q)], dim=index.dim))
    if dsl_cache is not None:
        hits_after, misses_after = dsl_cache.stats.hit_miss()
        stats.cache_hits += hits_after - cache_before[0]
        stats.cache_misses += misses_after - cache_before[1]
    stats.build_seconds += time.perf_counter() - t_start
    return SafeRegion(
        query=q,
        region=region,
        rsl_positions=np.asarray(rsl_positions, dtype=np.int64),
        stats=stats,
    )


def compute_safe_region_oracle(
    index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    rsl_positions: np.ndarray,
    bounds: Box,
    config: WhyNotConfig | None = None,
    self_exclude: bool = False,
    weights: "np.ndarray | None" = None,
) -> SafeRegion:
    """Algorithm 3 on the pure-Python :class:`OracleBoxRegion` algebra.

    The reference implementation the array engine is validated and
    benchmarked against: same member order (chunked, size-ascending) and
    same staircase construction, but nested-loop intersection, O(k²)
    simplification and recursive measure.  Always exact — the box budget
    is deliberately ignored.  Used by property tests,
    ``benchmarks/bench_safe_region.py`` and the CI divergence check; not
    a production path.
    """
    config = config or WhyNotConfig()
    q = as_point(query, dim=index.dim)
    if not bounds.contains_point(q):
        raise InvalidParameterError("query point lies outside the given bounds")
    positions = np.asarray(rsl_positions, dtype=np.int64)
    custs = np.asarray(customers, dtype=np.float64)
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    dims = support_dims(w, index.dim)

    def member_region(position: int) -> OracleBoxRegion:
        o = custs[position]
        exclude = (position,) if self_exclude else ()
        dsl = dynamic_skyline_indices(index.points, o, exclude, weights=w)
        thresholds = (
            to_query_space(index.points[dsl], o)
            if dsl.size
            else np.empty((0, index.dim))
        )
        boxes = staircase_boxes(o, thresholds, bounds, config.sort_dim, dims)
        return OracleBoxRegion(boxes, dim=index.dim).simplify()

    region = OracleBoxRegion(
        [Box(bounds.lo.copy(), bounds.hi.copy())], dim=index.dim
    )
    for chunk in _member_chunks(positions, config.sr_chunk_size):
        regions = [member_region(position) for position in chunk]
        for i in sorted(range(len(regions)), key=lambda i: (len(regions[i]), i)):
            region = region.intersect(regions[i])
            if region.is_empty():
                break
        if region.is_empty():
            break
    if not region.contains_point(q):
        region = region.union(OracleBoxRegion([Box(q, q)], dim=index.dim))
    # The SafeRegion duck-types over the oracle algebra so area()/contains()
    # stay pure-Python end to end — nothing here touches the array engine.
    return SafeRegion(
        query=q,
        region=region,  # type: ignore[arg-type]
        rsl_positions=np.asarray(rsl_positions, dtype=np.int64),
    )
