"""Algorithm 3 — the exact safe region of the query point.

``SR(q)`` is the intersection of the dynamic anti-dominance regions of all
existing reverse-skyline points (Lemma 2): anywhere inside it, ``q`` keeps
every current customer.  Each anti-dominance region is represented as
``|DSL(c)| + 1`` axis-aligned rectangles centred at the customer (Fig. 10):
the staircase of the customer's dynamic skyline read in distance space.

Boundary semantics: boxes are closed, which is exact under the STRICT
(open-window) exclusion policy the paper's constructions follow — a query
placed exactly on a staircase boundary is *not* excluded from the dynamic
skyline (DESIGN.md §2).

Dimensionality: the staircase decomposition is exact for 2-D data (the
paper's setting).  For ``d > 2`` this module falls back to a conservative
under-approximation (per-skyline-point boxes plus one slab per dimension),
every box of which provably lies inside the true region, so Lemma 2's
guarantee — no existing customer lost — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import WhyNotConfig
from repro.exceptions import InvalidParameterError
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.geometry.region import BoxRegion
from repro.geometry.transform import to_query_space
from repro.index.base import SpatialIndex
from repro.kernels.parallel import parallel_map_chunks, resolve_n_jobs
from repro.skyline.dynamic import dynamic_skyline_indices

__all__ = [
    "SafeRegion",
    "anti_dominance_region",
    "staircase_boxes",
    "compute_safe_region",
]


def _reach(origin: np.ndarray, bounds: Box) -> np.ndarray:
    """Per-dimension distance from ``origin`` to the farther universe edge
    (the paper's 'maximum value appearing in the dataset' shift, expressed
    as a distance so the region covers the whole slab)."""
    return np.maximum(origin - bounds.lo, bounds.hi - origin)


def staircase_boxes(
    origin: np.ndarray,
    thresholds: np.ndarray,
    bounds: Box,
    sort_dim: int,
) -> list[Box]:
    """Rectangles of an anti-dominance region from DSL distance vectors.

    ``thresholds`` is the ``(m, d)`` matrix ``|origin - s|`` over the
    dynamic skyline points ``s``; the result has ``m + 1`` boxes for 2-D
    (first-shifted, pairwise maxima, last-shifted — Fig. 10) and
    ``m + d`` boxes for higher dimensions (per-point boxes plus one slab
    per dimension, the conservative variant).
    """
    m, dim = thresholds.shape
    if m == 0:
        clipped = Box(bounds.lo.copy(), bounds.hi.copy())
        return [clipped]
    reach = _reach(origin, bounds)
    entries: list[np.ndarray] = []
    if dim == 2:
        order = np.argsort(thresholds[:, sort_dim], kind="stable")
        sorted_t = thresholds[order]
        first = sorted_t[0].copy()
        for d in range(dim):
            if d != sort_dim:
                first[d] = reach[d]
        entries.append(first)
        for left, right in zip(sorted_t[:-1], sorted_t[1:]):
            entries.append(np.maximum(left, right))
        last = sorted_t[-1].copy()
        last[sort_dim] = reach[sort_dim]
        entries.append(last)
    else:
        # Conservative d > 2 construction: each DSL point's own box is
        # inside the region, and so is the slab below the per-dimension
        # minimum threshold.
        entries.extend(thresholds)
        minima = thresholds.min(axis=0)
        for d in range(dim):
            slab = reach.copy()
            slab[d] = minima[d]
            entries.append(slab)
    boxes: list[Box] = []
    for extent in entries:
        box = Box.from_center(origin, extent).clip_to(bounds)
        if box is not None:
            boxes.append(box)
    return boxes


def anti_dominance_region(
    index: SpatialIndex,
    origin: Sequence[float],
    bounds: Box,
    sort_dim: int = 0,
    exclude: Sequence[int] = (),
    dsl_positions: np.ndarray | None = None,
) -> BoxRegion:
    """The dynamic anti-dominance region of ``origin`` as a box union.

    Computes ``DSL(origin)`` over the indexed products (unless
    ``dsl_positions`` is supplied) and decomposes the complement of its
    dominance region into rectangles.
    """
    o = as_point(origin, dim=index.dim)
    if dsl_positions is None:
        dsl_positions = dynamic_skyline_indices(index.points, o, exclude)
    thresholds = (
        to_query_space(index.points[dsl_positions], o)
        if dsl_positions.size
        else np.empty((0, index.dim))
    )
    boxes = staircase_boxes(o, thresholds, bounds, sort_dim)
    return BoxRegion(boxes, dim=index.dim).simplify()


@dataclass
class SafeRegion:
    """The safe region of a query point with its provenance.

    Attributes
    ----------
    query:
        The query point ``q``.
    region:
        Union-of-boxes representation of ``SR(q)``.
    rsl_positions:
        Positions (into the customer matrix) of ``RSL(q)`` used to build it.
    approximate:
        True when built from sampled dynamic skylines (Section VI.B.1);
        the approximate region is a subset of the exact one.
    """

    query: np.ndarray
    region: BoxRegion
    rsl_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    approximate: bool = False

    def area(self) -> float:
        """Lebesgue measure of the region (Figure 14's y-axis)."""
        return self.region.measure()

    def contains(self, point: Sequence[float]) -> bool:
        return self.region.contains_point(point)

    def is_degenerate(self) -> bool:
        """True when the region has collapsed to measure zero (typically
        the query point itself) and MWQ degenerates to MWP."""
        return self.area() == 0.0

    def restricted(self, limits: Box) -> "SafeRegion":
        """The safe region truncated to feature ``limits`` (Section V.B).

        Companies often may only vary certain feature ranges of a
        product; clipping the safe region to those limits keeps every
        guarantee (a subset of a safe region is safe).  Note the clipped
        region may no longer contain the original query point if the
        limits exclude it.
        """
        return SafeRegion(
            query=self.query,
            region=self.region.intersect_box(limits),
            rsl_positions=self.rsl_positions,
            approximate=self.approximate,
        )

    def __repr__(self) -> str:
        return (
            f"SafeRegion(|RSL|={self.rsl_positions.size}, "
            f"boxes={len(self.region)}, area={self.area():g}, "
            f"approximate={self.approximate})"
        )


def compute_safe_region(
    index: SpatialIndex,
    customers: np.ndarray,
    query: Sequence[float],
    rsl_positions: np.ndarray,
    bounds: Box,
    config: WhyNotConfig | None = None,
    self_exclude: bool = False,
    n_jobs: int | None = None,
) -> SafeRegion:
    """Algorithm 3: intersect the anti-dominance regions of all members.

    Parameters
    ----------
    index:
        Spatial index over the products ``P``.
    customers:
        ``(n, d)`` customer matrix ``C``.
    query:
        The query point ``q``.
    rsl_positions:
        Positions of ``RSL(q)`` within ``customers``.
    bounds:
        The data universe (regions are clipped to it).
    self_exclude:
        Monochromatic convention: customer ``j`` is excluded from its own
        dynamic-skyline computation.
    n_jobs:
        Worker threads for the per-member anti-dominance-region
        construction (``config.n_jobs`` when None).  Each member's DSL +
        staircase decomposition is independent, so they compute in
        parallel; the intersection itself stays sequential in position
        order, keeping the result identical to the ``n_jobs=1`` oracle.
        The parallel path gives up the early exit on an empty
        intersection — it pays off when most regions are needed anyway.

    Notes
    -----
    With no reverse-skyline point the safe region is the whole universe
    (there is nobody to lose).  The query point itself always belongs to
    its safe region; if floating-point rounding of the box corners ever
    drops it, the degenerate box ``{q}`` is added back explicitly.
    """
    config = config or WhyNotConfig()
    if n_jobs is None:
        n_jobs = config.n_jobs
    q = as_point(query, dim=index.dim)
    if not bounds.contains_point(q):
        raise InvalidParameterError("query point lies outside the given bounds")
    positions = np.asarray(rsl_positions, dtype=np.int64)
    custs = np.asarray(customers, dtype=np.float64)

    def member_region(position: int) -> BoxRegion:
        return anti_dominance_region(
            index,
            custs[position],
            bounds,
            sort_dim=config.sort_dim,
            exclude=(int(position),) if self_exclude else (),
        )

    region = BoxRegion([Box(bounds.lo.copy(), bounds.hi.copy())], dim=index.dim)
    if resolve_n_jobs(n_jobs) > 1 and positions.size > 1:
        ddrs = parallel_map_chunks(
            member_region, [int(p) for p in positions], n_jobs=n_jobs
        )
        for ddr in ddrs:
            region = region.intersect(ddr)
            if region.is_empty():
                break
    else:
        for position in positions:
            region = region.intersect(member_region(int(position)))
            if region.is_empty():
                break
    if not region.contains_point(q):
        region = region.union(BoxRegion([Box(q, q)], dim=index.dim))
    return SafeRegion(
        query=q,
        region=region,
        rsl_positions=np.asarray(rsl_positions, dtype=np.int64),
    )
