"""A re-entrant single-writer / multi-reader gate for the engine.

The serving layer runs many epoch-pinned readers concurrently in a
thread executor while one writer task advances the store.  Plan
execution mutates engine-owned state (result caches, counters, the plan
cache), so the engine needs an explicit concurrency contract rather
than "the GIL probably saves us": any number of readers may execute
plans at once, but a mutation excludes every reader for the duration of
its commit + cache maintenance.

:class:`ReadWriteGate` is writer-preferring (arriving readers queue
behind a waiting writer, so a steady read stream cannot starve the
writer) and re-entrant per thread in both directions:

* a reader surface that executes nested plans (``mqp_total_cost`` runs
  ``safe_region`` and ``reverse_skyline`` internally) re-enters the
  read side without deadlocking;
* the writer's post-commit maintenance may run read paths (scoped
  invalidation re-answers repaired entries), so a thread holding the
  write side passes straight through ``read()``.

The gate is deliberately engine-internal plumbing: the serve layer's
request-granular coordination (a whole multi-plan request excluding the
writer) is the :class:`repro.store.lease.LeaseRegistry`'s job; this
gate only makes each individual plan execution and each mutation
atomic with respect to one another.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteGate"]


class ReadWriteGate:
    """Writer-preferring, per-thread re-entrant readers/writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer: "int | None" = None  # thread id holding the write side
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Introspection (used by tests and the serve health endpoint)
    # ------------------------------------------------------------------
    @property
    def active_readers(self) -> int:
        return self._active_readers

    @property
    def write_held(self) -> bool:
        return self._writer is not None

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    @contextmanager
    def read(self):
        """Shared access; blocks while a writer holds or awaits the gate
        (unless this thread already holds either side)."""
        ident = threading.get_ident()
        if self._writer == ident or self._read_depth() > 0:
            # Re-entrant: the thread already has access; don't touch the
            # shared counts (release order stays balanced per thread).
            self._local.read_depth = self._read_depth() + 1
            try:
                yield self
            finally:
                self._local.read_depth -= 1
            return
        with self._cond:
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        self._local.read_depth = 1
        try:
            yield self
        finally:
            self._local.read_depth = 0
            with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive access; waits for active readers to drain, blocks
        new ones meanwhile.  Re-entrant for the holding thread."""
        ident = threading.get_ident()
        if self._writer == ident:
            self._writer_depth += 1
            try:
                yield self
            finally:
                self._writer_depth -= 1
            return
        if self._read_depth() > 0:
            raise RuntimeError(
                "cannot take the write side of the gate while holding the "
                "read side (reader thread attempted a mutation)"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._active_readers:
                    self._cond.wait()
                self._writer = ident
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1
        try:
            yield self
        finally:
            with self._cond:
                self._writer = None
                self._writer_depth = 0
                self._cond.notify_all()

    def __repr__(self) -> str:
        state = (
            "write-held"
            if self._writer is not None
            else f"readers={self._active_readers}"
        )
        return f"ReadWriteGate({state}, writers_waiting={self._writers_waiting})"
