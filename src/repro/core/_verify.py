"""Tolerance-aware verification of modification answers.

Algorithms 1, 2 and 4 place their answers exactly on window boundaries,
where the strict window test is one floating-point rounding away from
flipping.  Verification therefore re-implements the window membership test
with a small relative tolerance: a product only disqualifies the answer
when it is *clearly* inside the forbidden zone.  The tolerance affects the
returned flags only — never the algorithms' outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex

__all__ = ["verify_membership", "VERIFY_RTOL"]

VERIFY_RTOL = 1e-12


def verify_membership(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.STRICT,
    exclude: Sequence[int] = (),
    rtol: float = VERIFY_RTOL,
) -> bool:
    """True when ``center`` is in ``RSL(query)`` up to rounding tolerance.

    Under ``STRICT`` a product must be closer than the query by more than
    the slack in *every* dimension to count as a blocker; under ``WEAK`` it
    must be within slack of the closed window everywhere and clearly closer
    somewhere.  The slack scales with the coordinate magnitude — the size
    of floating-point rounding in the distance arithmetic — so it forgives
    1-ulp boundary flips without swallowing deliberate margins.
    """
    c = as_point(center, dim=index.dim)
    q = as_point(query, dim=index.dim)
    radii = np.abs(c - q)
    scale = max(1.0, float(np.max(np.abs(c))), float(np.max(np.abs(q))))
    slack = rtol * scale
    hits = index.range_indices(Box(c - radii - slack, c + radii + slack))
    excluded = np.asarray(tuple(exclude), dtype=np.int64)
    if excluded.size:
        hits = hits[~np.isin(hits, excluded)]
    if hits.size == 0:
        return True
    dists = np.abs(index.points[hits] - c)
    if policy is DominancePolicy.STRICT:
        blocking = np.all(dists < radii - slack, axis=1)
    else:
        blocking = np.all(dists <= radii + slack, axis=1) & np.any(
            dists < radii - slack, axis=1
        )
    return not bool(blocking.any())
