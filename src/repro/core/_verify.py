"""Tolerance-aware verification of modification answers.

Algorithms 1, 2 and 4 place their answers exactly on window boundaries,
where the strict window test is one floating-point rounding away from
flipping.  Verification therefore re-implements the window membership test
with a small relative tolerance: a product only disqualifies the answer
when it is *clearly* inside the forbidden zone.  The tolerance affects the
returned flags only — never the algorithms' outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DominancePolicy
from repro.geometry.box import Box
from repro.geometry.point import as_point
from repro.index.base import SpatialIndex
from repro.prefs.model import support_dims

__all__ = ["verify_membership", "VERIFY_RTOL"]

VERIFY_RTOL = 1e-12


def verify_membership(
    index: SpatialIndex,
    center: Sequence[float],
    query: Sequence[float],
    policy: DominancePolicy = DominancePolicy.STRICT,
    exclude: Sequence[int] = (),
    rtol: float = VERIFY_RTOL,
    weights: "np.ndarray | None" = None,
) -> bool:
    """True when ``center`` is in ``RSL(query)`` up to rounding tolerance.

    Under ``STRICT`` a product must be closer than the query by more than
    the slack in *every* dimension to count as a blocker; under ``WEAK`` it
    must be within slack of the closed window everywhere and clearly closer
    somewhere.  The slack scales with the coordinate magnitude — the size
    of floating-point rounding in the distance arithmetic — so it forgives
    1-ulp boundary flips without swallowing deliberate margins.

    ``weights`` restricts the test to the preference support
    (:mod:`repro.prefs`); dropped dimensions make the window box
    unbounded, so the partial-support path scans the support columns
    directly instead of querying the index.
    """
    c = as_point(center, dim=index.dim)
    q = as_point(query, dim=index.dim)
    dims = support_dims(
        None if weights is None else np.asarray(weights, dtype=np.float64),
        index.dim,
    )
    if dims is not None:
        cs, qs = c[dims], q[dims]
        radii = np.abs(cs - qs)
        scale = max(1.0, float(np.max(np.abs(cs))), float(np.max(np.abs(qs))))
        slack = rtol * scale
        dists = np.abs(index.points[:, dims] - cs)
        if policy is DominancePolicy.STRICT:
            blocking = np.all(dists < radii - slack, axis=1)
        else:
            blocking = np.all(dists <= radii + slack, axis=1) & np.any(
                dists < radii - slack, axis=1
            )
        excluded = np.asarray(tuple(exclude), dtype=np.int64)
        if excluded.size:
            blocking[excluded] = False
        return not bool(blocking.any())
    radii = np.abs(c - q)
    scale = max(1.0, float(np.max(np.abs(c))), float(np.max(np.abs(q))))
    slack = rtol * scale
    hits = index.range_indices(Box(c - radii - slack, c + radii + slack))
    excluded = np.asarray(tuple(exclude), dtype=np.int64)
    if excluded.size:
        hits = hits[~np.isin(hits, excluded)]
    if hits.size == 0:
        return True
    dists = np.abs(index.points[hits] - c)
    if policy is DominancePolicy.STRICT:
        blocking = np.all(dists < radii - slack, axis=1)
    else:
        blocking = np.all(dists <= radii + slack, axis=1) & np.any(
            dists < radii - slack, axis=1
        )
    return not bool(blocking.any())
